"""Benchmark harness helpers: experiment records and table formatting.

Every benchmark prints a small report table (the "rows the paper would
report") in addition to pytest-benchmark's timing output, so the shape
of each claimed effect is visible directly in the bench log.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class ExperimentReport:
    """A printable result table for one experiment.

    Set *slug* to control the ``BENCH_<slug>.json`` file this table is
    written to; by default it derives from the experiment name's leading
    token ("E10: ..." -> ``BENCH_e10.json``).
    """

    experiment: str
    claim: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    slug: str | None = None
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        """Append one data row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Attach a free-form footnote to the table."""
        self.notes.append(text)

    def record_stats(self, label: str, stats: Any) -> None:
        """Attach a labelled engine-counter snapshot to the report.

        Accepts a :class:`~repro.engine.stats.Stats` (anything with
        ``as_dict``) or a plain mapping; the full counter dict is kept so
        the serialized ``BENCH_*.json`` carries the measured workload's
        counters alongside its timings.
        """
        counters = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        self.stats[label] = dict(counters)

    def record_engine(
        self, engine_mode: str, batch_rows: int | None = None
    ) -> None:
        """Record which execution engine produced the measured numbers.

        Stamps ``engine_mode`` (and the column-batch size, when
        vectorized) into the report's metadata so a serialized
        ``BENCH_*.json`` baseline says which engine it measured —
        comparing a vectorized run against a tuple-interpreter baseline
        without noticing is exactly the mistake this prevents.
        """
        self.meta["engine_mode"] = engine_mode
        if batch_rows is not None:
            self.meta["batch_rows"] = batch_rows

    def render(self) -> str:
        """The report as an aligned ASCII table."""
        cells = [[_fmt(value) for value in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for i, text in enumerate(row):
                widths[i] = max(widths[i], len(text))
        lines = [
            f"== {self.experiment} ==",
            f"claim: {self.claim}",
            " | ".join(
                name.ljust(widths[i]) for i, name in enumerate(self.columns)
            ),
            "-+-".join("-" * width for width in widths),
        ]
        for row in cells:
            lines.append(
                " | ".join(text.ljust(widths[i]) for i, text in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table and register it for the bench summary.

        pytest captures stdout, so the benchmark conftest replays every
        registered report in the terminal summary — the experiment
        tables always appear in the bench log — and serializes it to
        ``BENCH_<slug>.json`` via :func:`write_reports`.
        """
        rendered = self.render()
        RENDERED_REPORTS.append(rendered)
        REPORTS.append(self)
        print("\n" + rendered)

    def effective_slug(self) -> str:
        """The JSON file slug: explicit, else from the leading token."""
        if self.slug:
            return self.slug
        token = self.experiment.split()[0].lower().rstrip(":")
        cleaned = "".join(ch for ch in token if ch.isalnum() or ch in "-_")
        return cleaned or "report"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the table."""
        payload = {
            "experiment": self.experiment,
            "claim": self.claim,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
        if self.stats:
            payload["stats"] = {
                label: dict(counters)
                for label, counters in self.stats.items()
            }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload


#: Reports rendered during this process, replayed by the bench conftest.
RENDERED_REPORTS: list[str] = []

#: The report objects themselves, consumed by :func:`write_reports`.
REPORTS: list[ExperimentReport] = []


def write_reports(directory: str = ".") -> list[str]:
    """Serialize every shown report to ``BENCH_<slug>.json`` files.

    Reports sharing a slug land in the same file (a benchmark module may
    print several tables).  Every file records the process's engine
    configuration (default engine mode and column-batch size) so a
    baseline is never compared against a run from a different engine
    without the difference being visible.  Returns the written paths.
    """
    from ..engine.columnar import DEFAULT_BATCH_ROWS, default_engine_mode
    from ..observe.metrics import MetricsRegistry  # deferred: optional dep

    registry = MetricsRegistry()
    try:
        registry.record_caches()
    except Exception:
        pass  # a metrics snapshot must never block report writing
    metrics = registry.as_dict()
    engine = {
        "engine_mode": default_engine_mode(),
        "batch_rows": DEFAULT_BATCH_ROWS,
    }

    grouped: dict[str, list[dict[str, Any]]] = {}
    for report in REPORTS:
        grouped.setdefault(report.effective_slug(), []).append(report.to_dict())
    paths = []
    for slug, tables in sorted(grouped.items()):
        path = os.path.join(directory, f"BENCH_{slug}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "slug": slug,
                    "tables": tables,
                    "metrics": metrics,
                    "engine": engine,
                },
                handle,
                indent=2,
                default=str,
            )
            handle.write("\n")
        paths.append(path)
    return paths


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run *fn* once, returning (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved, guarded against zero."""
    if improved <= 0:
        return float("inf")
    return baseline / improved


def geometric_sweep(start: int, stop: int, factor: int = 2) -> list[int]:
    """Sizes ``start, start*factor, ...`` up to and including *stop*."""
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= factor
    if sizes and sizes[-1] != stop:
        sizes.append(stop)
    return sizes
