"""Benchmark harness helpers: experiment records and table formatting.

Every benchmark prints a small report table (the "rows the paper would
report") in addition to pytest-benchmark's timing output, so the shape
of each claimed effect is visible directly in the bench log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class ExperimentReport:
    """A printable result table for one experiment."""

    experiment: str
    claim: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one data row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Attach a free-form footnote to the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The report as an aligned ASCII table."""
        cells = [[_fmt(value) for value in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for i, text in enumerate(row):
                widths[i] = max(widths[i], len(text))
        lines = [
            f"== {self.experiment} ==",
            f"claim: {self.claim}",
            " | ".join(
                name.ljust(widths[i]) for i, name in enumerate(self.columns)
            ),
            "-+-".join("-" * width for width in widths),
        ]
        for row in cells:
            lines.append(
                " | ".join(text.ljust(widths[i]) for i, text in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table and register it for the bench summary.

        pytest captures stdout, so the benchmark conftest replays every
        registered report in the terminal summary — the experiment
        tables always appear in the bench log.
        """
        rendered = self.render()
        RENDERED_REPORTS.append(rendered)
        print("\n" + rendered)


#: Reports rendered during this process, replayed by the bench conftest.
RENDERED_REPORTS: list[str] = []


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run *fn* once, returning (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved, guarded against zero."""
    if improved <= 0:
        return float("inf")
    return baseline / improved


def geometric_sweep(start: int, stop: int, factor: int = 2) -> list[int]:
    """Sizes ``start, start*factor, ...`` up to and including *stop*."""
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= factor
    if sizes and sizes[-1] != stop:
        sizes.append(stop)
    return sizes
