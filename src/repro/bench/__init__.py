"""Benchmark harness utilities."""

from .harness import (
    RENDERED_REPORTS,
    ExperimentReport,
    geometric_sweep,
    speedup,
    timed,
)

__all__ = [
    "ExperimentReport",
    "RENDERED_REPORTS",
    "geometric_sweep",
    "speedup",
    "timed",
]
