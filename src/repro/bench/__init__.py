"""Benchmark harness utilities."""

from .harness import (
    RENDERED_REPORTS,
    REPORTS,
    ExperimentReport,
    geometric_sweep,
    speedup,
    timed,
    write_reports,
)

__all__ = [
    "ExperimentReport",
    "RENDERED_REPORTS",
    "REPORTS",
    "geometric_sweep",
    "speedup",
    "timed",
    "write_reports",
]
