"""Cost-based strategy selection over the rewrite space.

The rewrites in :mod:`repro.core.rewrite` *expand* the strategy space;
the paper leaves picking a winner to "the optimizer['s] ... cost model"
(§5).  :class:`StrategySelector` closes that loop for the relational
engine: it collects the original query plus every intermediate form the
rewrite pipeline produces, plans each with the physical planner, prices
the plans with :class:`~repro.engine.cost.CostModel`, and returns the
cheapest.

Example::

    selector = StrategySelector(database)
    choice = selector.choose(sql)
    result = execute_planned(choice.query, database)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache import MISSING, LRUCache, safe_fingerprint
from ..engine.cost import CostModel, PlanEstimate
from ..engine.database import Database
from ..engine.planner import Planner, PlannerOptions
from ..sql.ast import Query
from ..sql.parser import parse_query
from ..sql.printer import to_sql
from .rewrite import Optimizer
from .uniqueness import UniquenessOptions


@dataclass
class StrategyCandidate:
    """One query form under consideration."""

    label: str
    query: Query
    estimate: PlanEstimate

    def describe(self) -> str:
        """One line: label, estimate, SQL."""
        return f"[{self.label}] {self.estimate}: {to_sql(self.query)}"


@dataclass
class StrategyChoice:
    """The selector's verdict plus the full scored candidate list."""

    query: Query
    estimate: PlanEstimate
    candidates: list[StrategyCandidate] = field(default_factory=list)

    @property
    def sql(self) -> str:
        """The chosen query as SQL text."""
        return to_sql(self.query)

    def explain(self) -> str:
        """All candidates with their estimates, cheapest marked."""
        lines = []
        for candidate in self.candidates:
            marker = "->" if candidate.query is self.query else "  "
            lines.append(f"{marker} {candidate.describe()}")
        return "\n".join(lines)


#: Strategy verdicts keyed (database fingerprint, query text, options).
#: The fingerprint covers both DDL and data mutation — cost estimates
#: depend on live cardinalities, so data changes must re-select.
_strategy_cache = LRUCache("strategy", maxsize=256)


class StrategySelector:
    """Scores rewrite variants and picks the cheapest plan."""

    def __init__(
        self,
        database: Database,
        options: UniquenessOptions | None = None,
        planner_options: PlannerOptions | None = None,
    ) -> None:
        self.database = database
        self.optimizer = Optimizer.for_relational(database.catalog, options)
        self.planner = Planner(
            database.catalog, planner_options, database=database
        )
        self.cost_model = CostModel(database)
        self._options_key = (options, planner_options)

    def choose(self, query: Query | str) -> StrategyChoice:
        """Pick the cheapest among the original and every rewrite stage.

        Candidates are the original query and the query *after* each
        applied rewrite step — so a partially-rewritten form can win
        when the cost model says the final form overshoots.  Verdicts
        are cached on the database fingerprint; cached
        :class:`StrategyChoice` objects are shared, treat them as
        read-only.
        """
        if isinstance(query, str):
            query = parse_query(query)
        cache_key = None
        fingerprint = safe_fingerprint(self.database)
        if fingerprint is not None:
            cache_key = (fingerprint, to_sql(query), self._options_key)
            cached = _strategy_cache.get(cache_key)
            if cached is not MISSING:
                return cached
        outcome = self.optimizer.optimize(query)

        forms: list[tuple[str, Query]] = [("original", query)]
        for step in outcome.steps:
            forms.append((step.rule, step.after))

        candidates: list[StrategyCandidate] = []
        seen_sql: set[str] = set()
        for label, form in forms:
            sql = to_sql(form)
            if sql in seen_sql:
                continue
            seen_sql.add(sql)
            plan = self.planner.plan(form)
            estimate = self.cost_model.estimate(plan)
            candidates.append(StrategyCandidate(label, form, estimate))

        best = min(candidates, key=lambda candidate: candidate.estimate.cost)
        choice = StrategyChoice(
            query=best.query, estimate=best.estimate, candidates=candidates
        )
        if cache_key is not None:
            _strategy_cache.put(cache_key, choice)
        return choice


def evict_strategy_entries(text: str) -> int:
    """Drop cached strategy verdicts for *text*, across fingerprints."""
    return _strategy_cache.evict_where(
        lambda key: isinstance(key, tuple) and len(key) >= 2 and key[1] == text
    )
