"""Bounded exact checker for Theorem 1's uniqueness condition.

The paper proves the exact condition is equivalent to a quantified
Boolean satisfiability problem — NP-complete in general.  This module
decides it by *counterexample search over bounded active domains*: it
looks for two product tuples ``r, r'`` (drawn from small per-column
domains, narrowed by CHECK constraints) and a host-variable assignment
``h`` such that

* both tuples satisfy the table CHECK constraints,
* the two tuples of each table form a *valid instance* (per candidate
  key: if the key values agree under ≐ the tuples must be identical),
* both tuples satisfy the query predicate,
* the tuples agree on the projection attributes ``A`` under ≐, yet
* at least one table's pair of tuples differs — i.e. the query can
  produce a genuine duplicate.

Finding such a witness proves duplicate elimination *is* required; an
exhausted search proves it unnecessary **over the enumerated domains**.
For columns with finite domains (CHECK IN / BETWEEN narrowings) the
enumeration is complete up to ``domain_size``; for open domains the
search samples representative values, which suffices because the
condition is invariant under renaming values an equality predicate does
not mention.

The cost is exponential in the number of columns — exactly the blowup
Algorithm 1 avoids; benchmark E9 measures the contrast.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..catalog.schema import Catalog
from ..errors import UnsupportedQueryError
from ..sql.ast import SelectQuery
from ..sql.expressions import (
    ColumnRef,
    Comparison,
    HostVar,
    contains_subquery,
    host_vars,
)
from ..sql.parser import parse_query
from ..types.domains import Domain
from ..types.values import SqlValue, eq_equivalent, is_null  # noqa: F401
from ..engine.evaluator import Evaluator
from ..engine.schema import RelSchema, Scope
from ..analysis.attributes import Attribute
from ..analysis.binding import projection_attributes, qualify_query_predicate


@dataclass(frozen=True)
class ExactOptions:
    """Search bounds for the exact checker.

    Attributes:
        domain_size: non-null values sampled per column.
        max_assignments: abort (inconclusive) after this many candidate
            tuple-pair combinations.
    """

    domain_size: int = 2
    max_assignments: int = 2_000_000


@dataclass
class Counterexample:
    """A witness that duplicates are possible."""

    host_values: dict[str, SqlValue]
    tuples: dict[str, tuple[tuple, tuple]]  # alias -> (t, t')

    def describe(self) -> str:
        """Render the witness (host values + tuple pairs)."""
        lines = []
        if self.host_values:
            bindings = ", ".join(
                f":{name}={value!r}" for name, value in self.host_values.items()
            )
            lines.append(f"host variables: {bindings}")
        for alias, (first, second) in self.tuples.items():
            lines.append(f"{alias}: t={first!r} t'={second!r}")
        return "\n".join(lines)


@dataclass
class ExactResult:
    """Outcome of the bounded Theorem 1 check.

    ``unique`` is True (no duplicates possible over the search space),
    False (counterexample found), or None (search budget exhausted).
    """

    unique: bool | None
    counterexample: Counterexample | None = None
    combinations_checked: int = 0
    reason: str = ""


class _SearchBudgetExceeded(Exception):
    pass


def check_theorem1(
    query: SelectQuery | str,
    catalog: Catalog,
    options: ExactOptions | None = None,
) -> ExactResult:
    """Decide Theorem 1's condition by bounded counterexample search."""
    if isinstance(query, str):
        parsed = parse_query(query)
        if not isinstance(parsed, SelectQuery):
            raise UnsupportedQueryError("exact checker requires a SELECT block")
        query = parsed
    options = options or ExactOptions()

    if query.where is not None and contains_subquery(query.where):
        raise UnsupportedQueryError(
            "the exact checker does not support subqueries in WHERE"
        )
    for table_ref in query.tables:
        if not catalog.table(table_ref.name).has_key():
            return ExactResult(
                unique=False,
                reason=f"table {table_ref.name} has no candidate key",
            )

    search = _Search(query, catalog, options)
    try:
        witness = search.run()
    except _SearchBudgetExceeded:
        return ExactResult(
            unique=None,
            combinations_checked=search.combinations,
            reason="search budget exhausted",
        )
    if witness is not None:
        return ExactResult(
            unique=False,
            counterexample=witness,
            combinations_checked=search.combinations,
            reason="counterexample found: duplicates are possible",
        )
    return ExactResult(
        unique=True,
        combinations_checked=search.combinations,
        reason="no counterexample over the bounded domains",
    )


class _Search:
    """Enumerates candidate instances table by table."""

    def __init__(
        self, query: SelectQuery, catalog: Catalog, options: ExactOptions
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.options = options
        self.combinations = 0

        self.aliases = [ref.effective_name for ref in query.tables]
        self.schemas = {
            ref.effective_name: catalog.table(ref.name) for ref in query.tables
        }
        self.predicate = qualify_query_predicate(
            query, catalog, allow_correlated=False
        )
        self.projection = set(projection_attributes(query, catalog))
        self.host_names = sorted(
            {hv.name for hv in host_vars(self.predicate)}
        )
        self.extra_constants = self._predicate_constants()

    def _predicate_constants(self) -> dict[Attribute, list[SqlValue]]:
        """Literal values each column is compared with in the predicate.

        The active domains must contain these constants, otherwise a
        predicate such as ``COLOR = 'RED'`` would be unsatisfiable over
        the sampled values and the search would wrongly conclude
        uniqueness.
        """
        constants: dict[Attribute, list[SqlValue]] = {}
        if self.predicate is None:
            return constants

        def note(column: ColumnRef, value: SqlValue) -> None:
            if column.qualifier is None or is_null(value):
                return
            attribute = Attribute(column.qualifier, column.column)
            bucket = constants.setdefault(attribute, [])
            if value not in bucket:
                bucket.append(value)

        from ..sql.expressions import Between, InList, Literal

        for node in self.predicate.walk():
            if isinstance(node, Comparison):
                for col_side, lit_side in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if isinstance(col_side, ColumnRef) and isinstance(
                        lit_side, Literal
                    ):
                        note(col_side, lit_side.value)
            elif isinstance(node, Between) and isinstance(
                node.operand, ColumnRef
            ):
                for bound in (node.low, node.high):
                    if isinstance(bound, Literal):
                        note(node.operand, bound.value)
            elif isinstance(node, InList) and isinstance(
                node.operand, ColumnRef
            ):
                for item in node.items:
                    if isinstance(item, Literal):
                        note(node.operand, item.value)
        return constants

    def _sample_values(self, alias: str, column_name: str) -> list[SqlValue]:
        """Active-domain samples for one column, predicate constants
        included (when the domain admits them)."""
        schema = self.schemas[alias]
        domain = schema.column(column_name).effective_domain()
        samples = domain.sample(self.options.domain_size)
        for value in self.extra_constants.get(Attribute(alias, column_name), ()):
            if domain.contains(value) and value not in samples:
                samples.append(value)
        return samples

    # ------------------------------------------------------------------

    def run(self) -> Counterexample | None:
        """Search; returns a witness or None when exhausted."""
        for host_values in self._host_assignments():
            evaluator = Evaluator(params=host_values)
            # Candidate tuple pairs per table, pre-filtered by per-table
            # validity and by ≐-agreement on the projection attributes.
            pair_sets = [
                self._table_pairs(alias, evaluator) for alias in self.aliases
            ]
            if any(not pairs for pairs in pair_sets):
                continue
            witness = self._combine(pair_sets, evaluator, host_values)
            if witness is not None:
                return witness
        return None

    # ------------------------------------------------------------------

    def _host_assignments(self):
        if not self.host_names:
            yield {}
            return
        samples = [self._host_samples(name) for name in self.host_names]
        for combo in itertools.product(*samples):
            yield dict(zip(self.host_names, combo))

    def _host_samples(self, name: str) -> list[SqlValue]:
        """Sample values for one host variable.

        The paper defines a host variable's domain as the intersection of
        the domains of the columns it is compared with; the samples also
        include those columns' predicate constants when the intersected
        domain admits them.
        """
        domain = Domain()
        compared: list[Attribute] = []
        found = False
        if self.predicate is not None:
            for node in self.predicate.walk():
                if not isinstance(node, Comparison):
                    continue
                sides = [(node.left, node.right), (node.right, node.left)]
                for hv_side, col_side in sides:
                    if (
                        isinstance(hv_side, HostVar)
                        and hv_side.name == name
                        and isinstance(col_side, ColumnRef)
                        and col_side.qualifier is not None
                    ):
                        schema = self.schemas.get(col_side.qualifier)
                        if schema is None or not schema.has_column(
                            col_side.column
                        ):
                            continue
                        compared.append(
                            Attribute(col_side.qualifier, col_side.column)
                        )
                        column_domain = schema.column(
                            col_side.column
                        ).effective_domain()
                        domain = (
                            column_domain
                            if not found
                            else domain.intersect(column_domain)
                        )
                        found = True
        samples = domain.sample(self.options.domain_size)
        for attribute in compared:
            for value in self.extra_constants.get(attribute, ()):
                if domain.contains(value) and value not in samples:
                    samples.append(value)
        return samples

    # ------------------------------------------------------------------

    def _table_pairs(
        self, alias: str, evaluator: Evaluator
    ) -> list[tuple[tuple, tuple, bool]]:
        """Valid (t, t') pairs for one table.

        Each entry carries ``differs``: whether the pair is genuinely two
        different tuples (under ≐).  Pairs must agree on the table's
        share of the projection attributes.
        """
        schema = self.schemas[alias]
        tuples = self._table_tuples(alias, evaluator)
        projection_indices = [
            i
            for i, name in enumerate(schema.column_names)
            if Attribute(alias, name) in self.projection
        ]
        key_index_sets = [
            [schema.column_index(column) for column in key.columns]
            for key in schema.candidate_keys
        ]

        pairs: list[tuple[tuple, tuple, bool]] = []
        for a_index, first in enumerate(tuples):
            for second in tuples[a_index:]:
                differs = not all(
                    eq_equivalent(x, y) for x, y in zip(first, second)
                )
                if differs:
                    # Valid instance: every candidate key must differ.
                    keys_ok = all(
                        not all(
                            eq_equivalent(first[i], second[i]) for i in indices
                        )
                        for indices in key_index_sets
                    )
                    if not keys_ok:
                        continue
                if not all(
                    eq_equivalent(first[i], second[i])
                    for i in projection_indices
                ):
                    continue
                pairs.append((first, second, differs))
        return pairs

    def _table_tuples(self, alias: str, evaluator: Evaluator) -> list[tuple]:
        """All single tuples of one table passing its CHECK constraints."""
        schema = self.schemas[alias]
        samples = [
            self._sample_values(alias, column.name) for column in schema.columns
        ]
        rel = RelSchema.for_table(alias, schema.column_names)
        base_rel = RelSchema.for_table(schema.name, schema.column_names)
        tuples: list[tuple] = []
        for values in itertools.product(*samples):
            row = tuple(values)
            ok = True
            for check in schema.checks:
                # CHECK conditions reference the base table name or bare
                # columns; evaluate under both the alias and base frames.
                scope = Scope(base_rel, row, outer=Scope(rel, row))
                if not evaluator.predicate(
                    check.condition, scope
                ).true_interpreted():
                    ok = False
                    break
            if ok:
                tuples.append(row)
        return tuples

    # ------------------------------------------------------------------

    def _combine(
        self,
        pair_sets: list[list[tuple[tuple, tuple, bool]]],
        evaluator: Evaluator,
        host_values: dict[str, SqlValue],
    ) -> Counterexample | None:
        merged_schema = RelSchema(())
        for alias in self.aliases:
            schema = self.schemas[alias]
            merged_schema = merged_schema.concat(
                RelSchema.for_table(alias, schema.column_names)
            )

        for combo in itertools.product(*pair_sets):
            self.combinations += 1
            if self.combinations > self.options.max_assignments:
                raise _SearchBudgetExceeded
            if not any(differs for _, _, differs in combo):
                continue  # identical product tuples are not duplicates
            first_row: tuple = ()
            second_row: tuple = ()
            for first, second, _ in combo:
                first_row += first
                second_row += second
            if self.predicate is not None:
                scope_a = Scope(merged_schema, first_row)
                scope_b = Scope(merged_schema, second_row)
                if not evaluator.predicate(
                    self.predicate, scope_a
                ).false_interpreted():
                    continue
                if not evaluator.predicate(
                    self.predicate, scope_b
                ).false_interpreted():
                    continue
            return Counterexample(
                host_values=dict(host_values),
                tuples={
                    alias: (first, second)
                    for alias, (first, second, _) in zip(self.aliases, combo)
                },
            )
        return None
