"""Theorem 3 support: null-safe correlation predicates for set-operation
rewrites.

The subtlety the paper stresses (§5.3): intersection equates tuples under
≐ — NULL matches NULL — while a WHERE clause does not.  Moving the
matching into an EXISTS therefore requires, for each pair of compared
columns, the predicate::

    (R.X IS NULL AND S.X IS NULL) OR R.X = S.X

unless the columns cannot be NULL (e.g. primary-key columns), in which
case the plain equijoin suffices — the correction the paper applies to
Pirahesh et al.'s Rule 8.
"""

from __future__ import annotations

from ..catalog.schema import Catalog
from ..errors import UnsupportedQueryError
from ..sql.ast import SelectQuery, Star
from ..sql.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    Or,
    conjoin,
)
from ..analysis.binding import resolve_column, table_columns


def projection_columns(
    query: SelectQuery, catalog: Catalog
) -> list[tuple[ColumnRef, bool]]:
    """Qualified projection column refs plus their nullability.

    Raises:
        UnsupportedQueryError: for non-column select items.
    """
    columns = table_columns(query, catalog)
    table_by_alias = {
        ref.effective_name: catalog.table(ref.name) for ref in query.tables
    }
    out: list[tuple[ColumnRef, bool]] = []
    for item in query.select_list:
        if isinstance(item, Star):
            qualifiers = (
                list(columns) if item.qualifier is None else [item.qualifier]
            )
            for qualifier in qualifiers:
                schema = table_by_alias[qualifier]
                for column in schema.columns:
                    out.append(
                        (ColumnRef(qualifier, column.name), column.nullable)
                    )
        else:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise UnsupportedQueryError(
                    "set-operation rewrites require column projections"
                )
            resolved = resolve_column(expr, columns)
            assert resolved is not None and resolved.qualifier is not None
            schema = table_by_alias[resolved.qualifier]
            nullable = schema.column(resolved.column).nullable
            out.append((resolved, nullable))
    return out


def null_safe_equality(left: Expr, right: Expr, nullable: bool) -> Expr:
    """``left ≐ right`` as a WHERE-clause predicate.

    When neither side can be NULL the plain equality suffices (and the
    optimizer keeps the chance to use it as a join key).
    """
    plain = Comparison("=", left, right)
    if not nullable:
        return plain
    both_null = And((IsNull(left), IsNull(right)))
    return Or((both_null, plain))


def correlation_predicate(
    left_columns: list[tuple[ColumnRef, bool]],
    right_columns: list[tuple[ColumnRef, bool]],
) -> Expr:
    """The paper's C_{R,S} = ⌊R[A] ≐ S[A]⌋ for positionally-paired
    projection columns.  A pair needs the null test only when *either*
    side may be NULL."""
    if len(left_columns) != len(right_columns):
        raise UnsupportedQueryError(
            "set operation operands are not union-compatible"
        )
    conjuncts = [
        # NULL ≐ NULL can only arise when *both* sides may be NULL; with
        # one side NOT NULL the plain equality is exact (the paper's
        # footnote 1, generalized): a NULL on the nullable side compares
        # UNKNOWN and the pair correctly fails to match.
        null_safe_equality(
            left_ref, right_ref, left_nullable and right_nullable
        )
        for (left_ref, left_nullable), (right_ref, right_nullable) in zip(
            left_columns, right_columns
        )
    ]
    return conjoin(conjuncts)
