"""Theorem 2: when a positive existential subquery matches at most one
inner tuple per outer candidate row.

The test mirrors Algorithm 1, but the closure seed is different: instead
of starting from the projection list, an inner-table column is *bound*
when it is equated with a constant, a host variable, or a column of the
**outer** block (which is fixed for the duration of one outer row).  The
subquery can match at most one tuple when the bound set covers a
candidate key of every inner table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.schema import Catalog
from ..sql.ast import SelectQuery
from ..sql.expressions import Expr
from ..analysis.attributes import Attribute, AttributeSet
from ..analysis.binding import qualify, table_columns
from ..analysis.closure import bound_closure
from ..analysis.conditions import Equality, Type1, Type2, atom_attributes, classify_atom
from ..analysis.normal_forms import NormalFormOverflow, to_cnf_clauses
from .uniqueness import UniquenessOptions, _dnf_terms


@dataclass
class SubqueryUniqueness:
    """Outcome of the Theorem 2 test for one subquery block."""

    at_most_one: bool
    reason: str
    terms: list[AttributeSet] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.at_most_one

    def witness(self) -> dict:
        """The evidence for the audit trail: the reason plus the
        bound-attribute closure of each disjunctive term."""
        payload: dict = {"reason": self.reason}
        if self.terms:
            payload["terms"] = [
                {
                    "term": f"E{i}",
                    "bound_closure": sorted(str(a) for a in term),
                }
                for i, term in enumerate(self.terms, start=1)
            ]
        return payload


def subquery_matches_at_most_one(
    inner: SelectQuery,
    outer: SelectQuery,
    catalog: Catalog,
    options: UniquenessOptions | None = None,
) -> SubqueryUniqueness:
    """Test Theorem 2's condition for *inner* correlated under *outer*.

    Column references in the inner WHERE clause are resolved first
    against the inner FROM clause, then against the outer one; outer
    references act as per-row constants.
    """
    options = options or UniquenessOptions()

    inner_columns = table_columns(inner, catalog)
    outer_columns = table_columns(outer, catalog)

    keyless = [
        ref.name
        for ref in inner.tables
        if not catalog.table(ref.name).has_key()
    ]
    if keyless:
        return SubqueryUniqueness(
            False, f"inner table(s) without a candidate key: {', '.join(keyless)}"
        )

    predicate = inner.where
    if predicate is None:
        return SubqueryUniqueness(
            False, "no selection predicate binds the inner tables"
        )
    # Two-stage qualification: inner names win, outer names catch the
    # correlated references.
    predicate = qualify(predicate, inner_columns, allow_correlated=True)
    predicate = qualify(predicate, outer_columns, allow_correlated=True)

    try:
        clauses = to_cnf_clauses(predicate, budget=options.clause_budget)
    except NormalFormOverflow:
        return SubqueryUniqueness(False, "CNF expansion exceeds the clause budget")

    inner_aliases = set(inner_columns)
    kept: list[list[Expr]] = []
    for clause in clauses:
        if _clause_usable(clause, inner_aliases, options):
            kept.append(clause)

    terms = _dnf_terms(kept, options.clause_budget)
    if terms is None:
        return SubqueryUniqueness(False, "DNF expansion exceeds the clause budget")

    result = SubqueryUniqueness(True, "")
    for term in terms:
        bound = _bound_inner_attributes(term, inner_aliases, options)
        result.terms.append(bound)
        for ref in inner.tables:
            alias = ref.effective_name
            schema = catalog.table(ref.name)
            covered = any(
                all(Attribute(alias, column) in bound for column in key.columns)
                for key in schema.candidate_keys
            )
            if not covered:
                result.at_most_one = False
                result.reason = (
                    f"inner table {alias} has no candidate key bound by the "
                    "correlation/selection predicate"
                )
                return result
    result.reason = (
        "every disjunctive component binds a candidate key of every inner table"
    )
    return result


def _clause_usable(
    clause: list[Expr], inner_aliases: set[str], options: UniquenessOptions
) -> bool:
    """Clause filtering (Algorithm 1 lines 6–9 adapted to subqueries)."""
    classified = [
        classify_atom(atom, options.treat_is_null_as_binding) for atom in clause
    ]
    if any(equality is None for equality in classified):
        return False
    if len(clause) > 1:
        if options.disjunction_handling == "conservative":
            return False
        seen: set[Attribute] = set()
        for atom in clause:
            attributes = atom_attributes(atom)
            if attributes & seen:
                return False
            seen |= attributes
    return True


def _bound_inner_attributes(
    term: tuple[Expr, ...], inner_aliases: set[str], options: UniquenessOptions
) -> AttributeSet:
    """Closure of inner attributes bound by one conjunctive component.

    Outer-block attributes are folded into the seed: an equality between
    an inner and an outer column binds the inner one, and chains through
    inner-inner equalities propagate as usual.
    """
    equalities: list[Equality] = []
    seed: set[Attribute] = set()
    for atom in term:
        equality = classify_atom(atom, options.treat_is_null_as_binding)
        if equality is None:
            continue
        if isinstance(equality, Type1):
            if equality.attribute.relation in inner_aliases:
                seed.add(equality.attribute)
        else:
            left_inner = equality.left.relation in inner_aliases
            right_inner = equality.right.relation in inner_aliases
            if left_inner and right_inner:
                equalities.append(equality)
            elif left_inner:
                seed.add(equality.left)  # outer column = constant per row
            elif right_inner:
                seed.add(equality.right)
    bound = bound_closure(seed, equalities)
    return frozenset(a for a in bound if a.relation in inner_aliases)
