"""Algorithm 1: deciding when duplicate elimination is unnecessary.

This is the paper's practical test of a *sufficient* condition for
Theorem 1 (the exact condition is NP-complete to test; see
:mod:`repro.core.exact` for a bounded exact checker).  The steps follow
the paper's listing:

1.  Convert the selection predicate to CNF (line 5).
2.  Delete every clause containing an atom that is not a Type 1
    (``column = constant``) or Type 2 (``column = column``) equality
    (line 7), and every *disjunctive clause on v* — a multi-atom clause
    in which some column appears in more than one atom, like
    ``X = 5 OR X = 10`` (line 8).  Deleting clauses only weakens the
    condition, so the test stays sufficient.
3.  If nothing survives, the paper's listing answers NO (line 10); by
    default we instead fall through with an empty condition — the
    projection alone may still contain the keys — which is equally
    sound.  Set ``paper_strict=True`` for the verbatim behaviour.
4.  Convert the surviving clauses to DNF (line 11) and, for every
    disjunctive term, compute the transitive closure V of attributes
    bound from the projection list (lines 13–16).
5.  Answer YES iff, in every term, V contains a full candidate key of
    every FROM-clause table (line 17).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..cache import MISSING, LRUCache, safe_fingerprint
from ..catalog.schema import Catalog
from ..errors import UnsupportedQueryError
from ..observe.trace import TRACER
from ..resilience.faults import FAULTS, SITE_UNIQUENESS
from ..sql.ast import Query, SelectQuery, SetOperation, SetOpKind
from ..sql.expressions import Expr
from ..sql.parser import parse_query
from ..sql.printer import to_sql
from ..analysis.attributes import Attribute, AttributeSet
from ..analysis.binding import projection_attributes, qualify_query_predicate
from ..analysis.closure import bound_closure
from ..analysis.conditions import Equality, atom_attributes, classify_atom
from ..analysis.normal_forms import NormalFormOverflow, to_cnf_clauses


@dataclass(frozen=True)
class UniquenessOptions:
    """Knobs for Algorithm 1.

    Attributes:
        paper_strict: answer NO when no equality condition survives the
            CNF filtering, exactly as the paper's listing does (line 10).
            The default instead checks the projection alone, which is
            still sufficient and detects strictly more queries.
        treat_is_null_as_binding: count an affirmative ``v IS NULL`` as a
            Type 1 binding (sound extension; see
            :func:`repro.analysis.conditions.classify_atom`).
        disjunction_handling: ``"paper"`` keeps multi-atom CNF clauses
            whose atoms mention pairwise-distinct columns (they survive
            to the DNF stage); ``"conservative"`` deletes every
            multi-atom clause (the Ceri–Widom variant the paper contrasts
            itself with).
        clause_budget: bound on CNF/DNF blowup; exceeding it returns a
            conservative NO.
        use_check_constraints: conjoin CHECK-constraint conditions over
            NOT NULL columns to the analyzed predicate (the paper's §8
            "transformations based on true-interpreted predicates").  A
            CHECK is satisfied when true *or unknown*, so only conjuncts
            whose columns cannot be NULL are definitely true for every
            stored row — those are safe to exploit, e.g. ``CHECK (REGION
            = 'EU')`` on a NOT NULL column binds REGION like a WHERE
            equality would.
    """

    paper_strict: bool = False
    treat_is_null_as_binding: bool = False
    disjunction_handling: str = "paper"
    clause_budget: int = 512
    use_check_constraints: bool = False

    def __post_init__(self) -> None:
        if self.disjunction_handling not in ("paper", "conservative"):
            raise ValueError(
                f"unknown disjunction handling {self.disjunction_handling!r}"
            )


@dataclass
class TermReport:
    """Analysis of one DNF term (one conjunctive component E_i)."""

    equalities: list[Equality]
    bound: AttributeSet
    missing_tables: list[str]

    @property
    def satisfied(self) -> bool:
        """Whether every table's key is bound in this term."""
        return not self.missing_tables


@dataclass
class UniquenessResult:
    """The outcome of Algorithm 1 for one query block.

    ``unique`` is True when the query result provably cannot contain
    duplicate rows, i.e. a ``DISTINCT`` on this block is unnecessary.
    """

    unique: bool
    reason: str
    projection: list[Attribute] = field(default_factory=list)
    kept_clauses: list[list[Expr]] = field(default_factory=list)
    dropped_clauses: list[tuple[list[Expr], str]] = field(default_factory=list)
    terms: list[TermReport] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.unique

    def explain(self) -> str:
        """A multi-line account of the decision, in the style of the
        paper's Example 5 trace."""
        lines = [f"decision: {'YES (DISTINCT unnecessary)' if self.unique else 'NO'}"]
        lines.append(f"reason: {self.reason}")
        if self.projection:
            lines.append(
                "projection A = {"
                + ", ".join(str(a) for a in self.projection)
                + "}"
            )
        for clause, why in self.dropped_clauses:
            from ..sql.printer import to_sql

            rendered = " OR ".join(to_sql(atom) for atom in clause)
            lines.append(f"dropped clause [{rendered}]: {why}")
        for i, term in enumerate(self.terms, start=1):
            bound = ", ".join(sorted(str(a) for a in term.bound))
            status = "keys covered" if term.satisfied else (
                "keys missing for " + ", ".join(term.missing_tables)
            )
            lines.append(f"term E{i}: V = {{{bound}}} -> {status}")
        return "\n".join(lines)

    def witness(self) -> dict:
        """The decision's evidence as plain serializable data — the
        audit trail's record of *why* Algorithm 1 answered as it did:
        the projection seed, every dropped CNF clause with its reason,
        and the bound-attribute closure per disjunctive term (naming
        the tables whose keys failed to bind, when any did)."""
        from ..sql.printer import to_sql

        payload: dict = {
            "projection": sorted(str(a) for a in self.projection),
        }
        if self.dropped_clauses:
            payload["dropped_clauses"] = [
                {
                    "clause": " OR ".join(to_sql(atom) for atom in clause),
                    "why": why,
                }
                for clause, why in self.dropped_clauses
            ]
        terms = []
        for i, term in enumerate(self.terms, start=1):
            entry: dict = {
                "term": f"E{i}",
                "bound_closure": sorted(str(a) for a in term.bound),
            }
            if term.missing_tables:
                entry["keys_missing_for"] = list(term.missing_tables)
            else:
                entry["keys_covered"] = True
            terms.append(entry)
        if terms:
            payload["terms"] = terms
        return payload


#: Algorithm 1 verdicts, keyed (catalog fingerprint, query text, options).
#: DDL bumps the catalog fingerprint, so re-registering a table — even
#: under the same name with different keys — can never serve a stale
#: verdict.  Cached results are shared: treat them as read-only.
_uniqueness_cache = LRUCache("uniqueness", maxsize=512)


def test_uniqueness(
    query: SelectQuery | str,
    catalog: Catalog,
    options: UniquenessOptions | None = None,
) -> UniquenessResult:
    """Run Algorithm 1: is duplicate elimination unnecessary for *query*?

    The quantifier of *query* is ignored — the test asks whether the
    projection is duplicate-free *without* duplicate elimination.
    """
    options = options or UniquenessOptions()

    # SQL text keys directly (equal text parses equally), so a warm hit
    # skips parsing as well as the analysis; ASTs key on their rendering.
    # Fail-closed: an uncomputable fingerprint skips the cache entirely.
    text = query if isinstance(query, str) else to_sql(query)
    if not TRACER.enabled:
        return _cached_test_uniqueness(query, text, catalog, options)
    with TRACER.span("uniqueness.algorithm1", sql=text) as span:
        result = _cached_test_uniqueness(query, text, catalog, options)
        if span:
            span.attributes["unique"] = result.unique
        return result


def _cached_test_uniqueness(
    query: SelectQuery | str,
    text: str,
    catalog: Catalog,
    options: UniquenessOptions,
) -> UniquenessResult:
    """The cache-lookup wrapper around the Algorithm 1 body."""
    key = None
    fingerprint = safe_fingerprint(catalog)
    if fingerprint is not None:
        key = (fingerprint, text, options)
        cached = _uniqueness_cache.get(key)
        if cached is not MISSING:
            return cached

    if FAULTS.armed:
        FAULTS.check(SITE_UNIQUENESS)
    if isinstance(query, str):
        parsed = parse_query(query)
        if not isinstance(parsed, SelectQuery):
            raise UnsupportedQueryError(
                "test_uniqueness requires a query specification; use "
                "is_duplicate_free for query expressions"
            )
        query = parsed
    result = _test_uniqueness(query, catalog, options)
    if FAULTS.armed:
        # A corrupt fault rewrites the verdict *before* it is cached —
        # deliberately poisoning the cache so safe mode's detection,
        # quarantine, and eviction path can be exercised end to end.
        result = FAULTS.corrupt(SITE_UNIQUENESS, result)
    if key is not None:
        _uniqueness_cache.put(key, result)
    return result


def evict_uniqueness_entries(text: str) -> int:
    """Drop cached Algorithm 1 verdicts for *text*, across fingerprints.

    Safe mode's cleanup path: a poisoned verdict is keyed on the query
    text it was computed for, so evicting by text removes it no matter
    which catalog version cached it.
    """
    return _uniqueness_cache.evict_where(
        lambda key: isinstance(key, tuple) and len(key) >= 2 and key[1] == text
    )


def _test_uniqueness(
    query: SelectQuery,
    catalog: Catalog,
    options: UniquenessOptions,
) -> UniquenessResult:
    """The uncached Algorithm 1 body."""
    # Theorem 1's precondition: every table contributes a candidate key.
    keyless = [
        table_ref.name
        for table_ref in query.tables
        if not catalog.table(table_ref.name).has_key()
    ]
    if keyless:
        return UniquenessResult(
            False, f"table(s) without a candidate key: {', '.join(keyless)}"
        )

    projection = projection_attributes(query, catalog)
    predicate = qualify_query_predicate(query, catalog, allow_correlated=True)

    if options.use_check_constraints:
        constraint_parts = _usable_check_conjuncts(query, catalog)
        if constraint_parts:
            from ..sql.expressions import conjoin

            parts = ([predicate] if predicate is not None else [])
            predicate = conjoin(parts + constraint_parts)

    kept, dropped = _filter_clauses(predicate, options)

    result = UniquenessResult(
        unique=False,
        reason="",
        projection=projection,
        kept_clauses=kept,
        dropped_clauses=dropped,
    )

    if not kept and options.paper_strict:
        result.reason = (
            "no equality conditions survive filtering "
            "(paper line 10 answers NO)"
        )
        return result

    terms = _dnf_terms(kept, options.clause_budget)
    if terms is None:
        result.reason = "DNF expansion exceeds the clause budget"
        return result

    for term in terms:
        report = _analyze_term(term, projection, query, catalog, options)
        result.terms.append(report)
        if not report.satisfied:
            result.reason = (
                "a disjunctive component leaves table(s) "
                f"{', '.join(report.missing_tables)} without a bound key"
            )
            return result

    result.unique = True
    result.reason = (
        "every disjunctive component binds a candidate key of every table"
    )
    return result


# Keep pytest from collecting the library entry point as a test.
test_uniqueness.__test__ = False  # type: ignore[attr-defined]


def is_duplicate_free(
    query: Query | str,
    catalog: Catalog,
    options: UniquenessOptions | None = None,
) -> bool:
    """Whether *query*, as written, provably yields no duplicate rows.

    Handles query expressions as well as query specifications:

    * ``DISTINCT`` blocks and DISTINCT set operations never produce
      duplicates;
    * an ``INTERSECT ALL`` is duplicate-free when either operand is
      (each output count is ``min(j, k)``);
    * an ``EXCEPT ALL`` is duplicate-free when its left operand is
      (output counts never exceed ``j``);
    * a ``UNION ALL`` is never provably duplicate-free here (the two
      operands may overlap).
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, SelectQuery):
        if query.distinct:
            return True
        return test_uniqueness(query, catalog, options).unique
    assert isinstance(query, SetOperation)
    if not query.all:
        return True
    left = is_duplicate_free(query.left, catalog, options)
    if query.kind is SetOpKind.INTERSECT:
        return left or is_duplicate_free(query.right, catalog, options)
    if query.kind is SetOpKind.EXCEPT:
        return left
    return False  # UNION ALL


# ----------------------------------------------------------------------
# internal steps


def _filter_clauses(
    predicate: Expr | None, options: UniquenessOptions
) -> tuple[list[list[Expr]], list[tuple[list[Expr], str]]]:
    """CNF conversion plus the deletion steps of lines 6–9."""
    if predicate is None:
        return [], []
    try:
        clauses = to_cnf_clauses(predicate, budget=options.clause_budget)
    except NormalFormOverflow:
        return [], [([predicate], "CNF expansion exceeds the clause budget")]

    kept: list[list[Expr]] = []
    dropped: list[tuple[list[Expr], str]] = []
    for clause in clauses:
        verdict = _clause_verdict(clause, options)
        if verdict is None:
            kept.append(clause)
        else:
            dropped.append((clause, verdict))
    return kept, dropped


def _clause_verdict(clause: list[Expr], options: UniquenessOptions) -> str | None:
    """Why a CNF clause must be dropped, or None to keep it."""
    classified = [
        classify_atom(atom, options.treat_is_null_as_binding) for atom in clause
    ]
    if any(equality is None for equality in classified):
        return "contains an atom that is not a Type 1 or Type 2 equality"
    if len(clause) > 1:
        if options.disjunction_handling == "conservative":
            return "disjunctive clause (conservative mode drops all)"
        seen: set[Attribute] = set()
        for atom in clause:
            attributes = atom_attributes(atom)
            if attributes & seen:
                return (
                    "disjunctive clause on a single column "
                    "(e.g. X = 5 OR X = 10)"
                )
            seen |= attributes
    return None


def _dnf_terms(
    clauses: list[list[Expr]], budget: int
) -> list[tuple[Expr, ...]] | None:
    """Distribute the kept CNF clauses into DNF terms (line 11).

    Each term picks one atom from every clause.  Returns None when the
    expansion exceeds *budget*.
    """
    size = 1
    for clause in clauses:
        size *= len(clause)
        if size > budget:
            return None
    if not clauses:
        return [()]
    return list(itertools.product(*clauses))


def _analyze_term(
    term: tuple[Expr, ...],
    projection: list[Attribute],
    query: SelectQuery,
    catalog: Catalog,
    options: UniquenessOptions,
) -> TermReport:
    """Lines 13–17 for one conjunctive component E_i."""
    equalities = [
        equality
        for atom in term
        if (equality := classify_atom(atom, options.treat_is_null_as_binding))
        is not None
    ]
    bound = bound_closure(projection, equalities)

    missing: list[str] = []
    for table_ref in query.tables:
        alias = table_ref.effective_name
        schema = catalog.table(table_ref.name)
        covered = any(
            all(Attribute(alias, column) in bound for column in key.columns)
            for key in schema.candidate_keys
        )
        if not covered:
            missing.append(alias)
    return TermReport(equalities=equalities, bound=bound, missing_tables=missing)


def _usable_check_conjuncts(
    query: SelectQuery, catalog: Catalog
) -> list[Expr]:
    """CHECK conjuncts that are definitely TRUE for every stored row.

    Per SQL2 a CHECK passes when its condition is true **or unknown**, so
    a conjunct is exploitable only when it cannot evaluate to unknown —
    guaranteed here by requiring every referenced column to be NOT NULL.
    The conjunct is re-qualified with the FROM-clause correlation name.
    """
    from ..sql.expressions import ColumnRef, conjuncts

    usable: list[Expr] = []
    for table_ref in query.tables:
        schema = catalog.table(table_ref.name)
        alias = table_ref.effective_name
        for check in schema.checks:
            for conjunct in conjuncts(check.condition):
                refs = [
                    node
                    for node in conjunct.walk()
                    if isinstance(node, ColumnRef)
                ]
                non_nullable = True
                for ref in refs:
                    if ref.qualifier not in (None, alias, schema.name):
                        non_nullable = False
                        break
                    if not schema.has_column(ref.column):
                        non_nullable = False
                        break
                    if schema.column(ref.column).nullable:
                        non_nullable = False
                        break
                if not non_nullable or not refs:
                    continue
                mapping: dict[Expr, Expr] = {
                    ref: ColumnRef(alias, ref.column)
                    for ref in refs
                    if ref.qualifier != alias
                }
                usable.append(
                    conjunct.replace(mapping) if mapping else conjunct
                )
    return usable
