"""The paper's core contribution: uniqueness analysis and rewrites."""

from .exact import Counterexample, ExactOptions, ExactResult, check_theorem1
from .rewrite import (
    OptimizeResult,
    Optimizer,
    navigational_rules,
    optimize,
    relational_rules,
)
from .strategy import StrategyCandidate, StrategyChoice, StrategySelector
from .theorem2 import SubqueryUniqueness, subquery_matches_at_most_one
from .theorem3 import correlation_predicate, null_safe_equality, projection_columns
from .uniqueness import (
    TermReport,
    UniquenessOptions,
    UniquenessResult,
    is_duplicate_free,
    test_uniqueness,
)

__all__ = [
    "Counterexample",
    "ExactOptions",
    "ExactResult",
    "OptimizeResult",
    "Optimizer",
    "StrategyCandidate",
    "StrategyChoice",
    "StrategySelector",
    "SubqueryUniqueness",
    "TermReport",
    "UniquenessOptions",
    "UniquenessResult",
    "check_theorem1",
    "correlation_predicate",
    "is_duplicate_free",
    "navigational_rules",
    "null_safe_equality",
    "optimize",
    "projection_columns",
    "relational_rules",
    "subquery_matches_at_most_one",
    "test_uniqueness",
]
