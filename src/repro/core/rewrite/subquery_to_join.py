"""Rules: flatten positive existential subqueries into joins (§5.2).

Three justifications, tried in order for each top-level EXISTS conjunct:

* **Theorem 2** — the subquery matches at most one inner tuple per outer
  row, so the flattened join produces exactly the same multiset; the
  quantifier is preserved.
* **DISTINCT observation** — when the outer block already eliminates
  duplicates, flattening is *always* valid (extra join matches collapse).
* **Corollary 1** — when the outer block (without the subquery) is
  provably duplicate-free, the flattened join with DISTINCT projection
  is equivalent to the original ALL query.

A companion normalization rule turns positive ``IN (subquery)``
conjuncts into correlated EXISTS so the flattening rule can handle them.
"""

from __future__ import annotations

from ...sql.ast import Quantifier, Query, SelectItem, SelectQuery, Star
from ...sql.expressions import (
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    InSubquery,
    conjoin,
    conjuncts,
)
from ..theorem2 import subquery_matches_at_most_one
from ..uniqueness import test_uniqueness
from .base import RewriteContext, Rule, query_aliases, rename_alias


class SubqueryToJoin(Rule):
    """Flatten a correlated positive EXISTS into a join."""

    name = "subquery-to-join"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery):
            return None
        parts = conjuncts(query.where)
        for position, conjunct in enumerate(parts):
            if not isinstance(conjunct, Exists) or conjunct.negated:
                continue
            inner = conjunct.query
            if not isinstance(inner, SelectQuery):
                continue
            if inner.order_by or inner.distinct:
                # DISTINCT/ORDER BY in an EXISTS block is semantically
                # inert but signals intent; normalize first elsewhere.
                inner = inner.with_quantifier(Quantifier.ALL)
            rest = parts[:position] + parts[position + 1 :]
            outcome = self._try_flatten(query, inner, rest, ctx)
            if outcome is not None:
                return outcome
        return None

    def _try_flatten(
        self,
        outer: SelectQuery,
        inner: SelectQuery,
        rest: list[Expr],
        ctx: RewriteContext,
    ) -> tuple[Query, str] | None:
        inner = _rename_conflicts(inner, query_aliases(outer), ctx)

        flattened_where = conjoin(rest + conjuncts(inner.where))
        flattened = SelectQuery(
            quantifier=outer.quantifier,
            select_list=outer.select_list,
            tables=outer.tables + inner.tables,
            where=flattened_where if flattened_where is not None else None,
            order_by=outer.order_by,
        )

        uniqueness = subquery_matches_at_most_one(
            inner, outer, ctx.catalog, ctx.options
        )
        if uniqueness.at_most_one:
            ctx.record(
                self.name,
                "Theorem 2",
                "fired",
                outer,
                "the subquery matches at most one inner tuple per outer "
                f"row ({uniqueness.reason}); flattened to a join",
                uniqueness.witness(),
            )
            return flattened, (
                "Theorem 2: the subquery matches at most one inner tuple "
                f"per outer row ({uniqueness.reason})"
            )

        if outer.distinct:
            ctx.record(
                self.name,
                "DISTINCT observation (§5.2)",
                "fired",
                outer,
                "the outer block eliminates duplicates, so flattening "
                "the existential subquery is always valid",
                {"theorem2_reason": uniqueness.reason},
            )
            return flattened, (
                "outer block eliminates duplicates, so flattening the "
                "existential subquery is always valid"
            )

        outer_without = outer.with_where(conjoin(rest) if rest else None)
        outer_unique = test_uniqueness(outer_without, ctx.catalog, ctx.options)
        if outer_unique.unique:
            distinct_join = flattened.with_quantifier(Quantifier.DISTINCT)
            ctx.record(
                self.name,
                "Corollary 1",
                "fired",
                outer,
                "the outer block is duplicate-free, so the subquery "
                "converts to a DISTINCT join",
                outer_unique.witness(),
            )
            return distinct_join, (
                "Corollary 1: the outer block is duplicate-free, so the "
                "subquery converts to a DISTINCT join"
            )
        ctx.record(
            self.name,
            "Theorem 2 / Corollary 1",
            "rejected",
            outer,
            "every flattening precondition broke: the subquery may match "
            f"several inner tuples ({uniqueness.reason}), the outer block "
            "is not DISTINCT, and the outer block alone is not "
            f"duplicate-free ({outer_unique.reason})",
            {
                "theorem2": uniqueness.witness(),
                "corollary1": outer_unique.witness(),
            },
        )
        return None


class InToExists(Rule):
    """Normalize a positive ``x IN (SELECT c FROM ...)`` conjunct into
    ``EXISTS (SELECT * FROM ... WHERE c = x)``.

    Exact under the false-interpretation of WHERE: both forms reject the
    row when no inner tuple definitely matches.
    """

    name = "in-to-exists"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery) or query.where is None:
            return None
        parts = conjuncts(query.where)
        for position, conjunct in enumerate(parts):
            if not isinstance(conjunct, InSubquery) or conjunct.negated:
                continue
            inner = conjunct.query
            if not isinstance(inner, SelectQuery):
                continue
            inner_column = _single_output_column(inner)
            if inner_column is None:
                continue
            correlation = Comparison("=", inner_column, conjunct.operand)
            exists_inner = SelectQuery(
                quantifier=Quantifier.ALL,
                select_list=(Star(),),
                tables=inner.tables,
                where=conjoin(conjuncts(inner.where) + [correlation]),
            )
            parts = list(parts)
            parts[position] = Exists(exists_inner)
            rewritten = query.with_where(conjoin(parts))
            ctx.record(
                self.name,
                "normalization",
                "fired",
                query,
                "IN (subquery) normalized to correlated EXISTS so the "
                "Theorem 2 flattening test can examine it",
            )
            return rewritten, "IN (subquery) normalized to EXISTS"
        return None


def _single_output_column(inner: SelectQuery) -> ColumnRef | None:
    if len(inner.select_list) != 1:
        return None
    item = inner.select_list[0]
    if isinstance(item, Star):
        return None
    if isinstance(item, SelectItem) and isinstance(item.expr, ColumnRef):
        return item.expr
    return None


def _rename_conflicts(
    inner: SelectQuery, taken: set[str], ctx: RewriteContext
) -> SelectQuery:
    """Rename inner correlation names that collide with the outer block."""
    for ref in list(inner.tables):
        alias = ref.effective_name
        if alias in taken:
            fresh = ctx.fresh_alias(alias, taken | query_aliases(inner))
            inner = rename_alias(inner, alias, fresh)
    return inner
