"""Rule: remove an unnecessary DISTINCT (the paper's §5.1)."""

from __future__ import annotations

from ...sql.ast import Quantifier, Query, SelectQuery
from ..uniqueness import test_uniqueness
from .base import RewriteContext, Rule


class DistinctElimination(Rule):
    """Replace ``SELECT DISTINCT`` by ``SELECT ALL`` when Algorithm 1
    proves the projection duplicate-free.

    This removes the result sort entirely; benchmark E1 measures the
    effect.  The rule is the workhorse for CASE-tool/templated queries
    that specify DISTINCT defensively.
    """

    name = "distinct-elimination"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery) or not query.distinct:
            return None
        result = test_uniqueness(query, ctx.catalog, ctx.options)
        if not result.unique:
            ctx.record(
                self.name,
                "Theorem 1",
                "rejected",
                query,
                f"Algorithm 1 answers NO: {result.reason}",
                result.witness(),
            )
            return None
        rewritten = query.with_quantifier(Quantifier.ALL)
        ctx.record(
            self.name,
            "Theorem 1",
            "fired",
            query,
            f"Algorithm 1 answers YES: {result.reason}; DISTINCT removed",
            result.witness(),
        )
        return rewritten, (
            "Theorem 1 holds (Algorithm 1: "
            + result.reason
            + "); duplicate elimination is unnecessary"
        )
