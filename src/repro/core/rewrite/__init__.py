"""Semantic rewrite rules and the tracing optimizer."""

from .base import RewriteContext, RewriteStep, Rule, rename_alias
from .distinct_elimination import DistinctElimination
from .exists_to_intersect import ExistsToIntersect
from .engine import (
    OptimizeResult,
    Optimizer,
    navigational_rules,
    optimize,
    quarantine_rule,
    quarantined_rules,
    relational_rules,
    unquarantine_all,
)
from .join_elimination import JoinElimination
from .join_to_subquery import JoinToSubquery
from .setop_to_exists import ExceptToNotExists, IntersectToExists
from .subquery_to_join import InToExists, SubqueryToJoin

__all__ = [
    "DistinctElimination",
    "ExceptToNotExists",
    "ExistsToIntersect",
    "InToExists",
    "IntersectToExists",
    "JoinElimination",
    "JoinToSubquery",
    "OptimizeResult",
    "Optimizer",
    "RewriteContext",
    "RewriteStep",
    "Rule",
    "SubqueryToJoin",
    "navigational_rules",
    "optimize",
    "quarantine_rule",
    "quarantined_rules",
    "relational_rules",
    "rename_alias",
    "unquarantine_all",
]
