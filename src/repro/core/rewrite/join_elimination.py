"""Rule: eliminate a join entirely via an inclusion dependency.

The paper's future-work list (§8) proposes "utilizing inclusion
dependencies to prune query graphs, thus implementing King's notion of
join elimination".  This rule implements it for declared FOREIGN KEYs:

In ``SELECT A FROM R, S WHERE R.fk = S.key ∧ rest``, the table S can be
removed — not merely folded into an EXISTS — when

* no projection or ORDER BY item references S,
* the *only* conjuncts mentioning S are exactly the equalities pairing a
  declared foreign key of some other FROM table R with the key of S that
  the FK references (so S filters nothing),
* the referenced columns form a candidate key of S (each R row matches
  at most one S row), and
* the inclusion dependency guarantees each R row with a fully non-NULL
  foreign key matches at least one S row.

Rows whose foreign key contains a NULL never join; when any FK column is
nullable the rewrite adds the compensating ``fk IS NOT NULL`` conjuncts.
Unlike the join→subquery fold, this removes *all* access to S.
"""

from __future__ import annotations

from ...catalog.table import TableSchema
from ...sql.ast import Query, SelectQuery, TableRef
from ...sql.expressions import (
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    conjoin,
    conjuncts,
    contains_subquery,
)
from ...analysis.binding import projection_attributes, qualify, table_columns
from .base import RewriteContext, Rule


class JoinElimination(Rule):
    """Remove a joined table that provably contributes nothing."""

    name = "join-elimination"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery) or len(query.tables) < 2:
            return None
        if query.where is None:
            return None
        if contains_subquery(query.where):
            # a subquery may correlate to the candidate table; the
            # join→subquery rule's finer analysis handles those queries
            return None
        columns = table_columns(query, ctx.catalog)
        where = qualify(query.where, columns, allow_correlated=False)
        projected = {
            attribute.relation
            for attribute in projection_attributes(query, ctx.catalog)
        }
        ordered = {
            item.expr.qualifier
            for item in query.order_by
            if isinstance(item.expr, ColumnRef)
        }
        for candidate in query.tables:
            alias = candidate.effective_name
            if alias in projected or alias in ordered:
                continue
            outcome = self._try_eliminate(query, where, candidate, alias, ctx)
            if outcome is not None:
                return outcome
        return None

    def _try_eliminate(
        self,
        query: SelectQuery,
        where: Expr,
        candidate: TableRef,
        alias: str,
        ctx: RewriteContext,
    ) -> tuple[Query, str] | None:
        target_schema = ctx.catalog.table(candidate.name)

        join_pairs: list[tuple[ColumnRef, ColumnRef]] = []  # (other, S col)
        kept: list[Expr] = []
        for conjunct in conjuncts(where):
            pair = self._join_pair(conjunct, alias)
            if pair is not None:
                join_pairs.append(pair)
                continue
            if any(
                isinstance(node, ColumnRef) and node.qualifier == alias
                for node in conjunct.walk()
            ):
                return None  # S is filtered: it does affect the result
            kept.append(conjunct)
        if not join_pairs:
            return None

        # All join pairs must come from a single referencing table.
        referencing = {other.qualifier for other, _ in join_pairs}
        if len(referencing) != 1:
            return None
        other_alias = next(iter(referencing))
        other_ref = next(
            ref for ref in query.tables if ref.effective_name == other_alias
        )
        other_schema = ctx.catalog.table(other_ref.name)

        pairing = [
            f"{other.qualifier}.{other.column} = {alias}.{target.column}"
            for other, target in join_pairs
        ]
        fk = self._matching_foreign_key(
            other_schema, target_schema, candidate.name, join_pairs
        )
        if fk is None:
            ctx.record(
                self.name,
                "inclusion dependency",
                "rejected",
                query,
                f"{alias} contributes nothing to the projection, but no "
                "declared FOREIGN KEY covers the join pairing exactly "
                "onto a candidate key, so a matching row is not "
                "guaranteed",
                {"join_pairing": pairing},
            )
            return None

        # Compensate for nullable FK columns: NULL keys never joined.
        compensations: list[Expr] = [
            IsNull(ColumnRef(other_alias, column), negated=True)
            for column in fk
            if other_schema.column(column).nullable
        ]

        remaining = tuple(
            ref for ref in query.tables if ref.effective_name != alias
        )
        new_where = conjoin(kept + compensations)
        rewritten = SelectQuery(
            quantifier=query.quantifier,
            select_list=query.select_list,
            tables=remaining,
            where=new_where if kept or compensations else None,
            order_by=query.order_by,
        )
        ctx.record(
            self.name,
            "inclusion dependency",
            "fired",
            query,
            f"{other_alias}({', '.join(fk)}) references a candidate key "
            f"of {candidate.name}: every row matches exactly one {alias} "
            "tuple, so the join is eliminated (King's join elimination)",
            {
                "foreign_key": list(fk),
                "join_pairing": pairing,
                "compensations": [
                    f"{other_alias}.{column} IS NOT NULL"
                    for column in fk
                    if other_schema.column(column).nullable
                ],
            },
        )
        return rewritten, (
            f"inclusion dependency {other_alias}({', '.join(fk)}) -> "
            f"{candidate.name}: every row matches exactly one {alias} "
            "tuple, so the join is eliminated (King's join elimination)"
        )

    def _join_pair(
        self, conjunct: Expr, alias: str
    ) -> tuple[ColumnRef, ColumnRef] | None:
        """``(other_col, s_col)`` when the conjunct equates across S."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        a, b = conjunct.left, conjunct.right
        if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
            return None
        if a.qualifier == alias and b.qualifier not in (alias, None):
            return b, a
        if b.qualifier == alias and a.qualifier not in (alias, None):
            return a, b
        return None

    def _matching_foreign_key(
        self,
        other_schema: TableSchema,
        target_schema: TableSchema,
        target_name: str,
        join_pairs: list[tuple[ColumnRef, ColumnRef]],
    ) -> tuple[str, ...] | None:
        """The FK of *other_schema* whose column pairing the join uses.

        The join conjuncts must cover the FK exactly, and the referenced
        columns must be a candidate key of the target (so the match is
        unique as well as guaranteed).
        """
        pairing = {
            (other.column, target.column) for other, target in join_pairs
        }
        for fk in other_schema.foreign_keys:
            if fk.ref_table != target_name.upper():
                continue
            ref_columns = fk.ref_columns
            if not ref_columns:
                key = target_schema.primary_key
                if key is None:
                    continue
                ref_columns = key.columns
            expected = set(zip(fk.columns, ref_columns))
            if pairing != expected:
                continue
            is_key = any(
                key.columns == tuple(ref_columns)
                or key.column_set == set(ref_columns)
                for key in target_schema.candidate_keys
            )
            if is_key:
                return fk.columns
        return None
