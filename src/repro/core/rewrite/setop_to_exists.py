"""Rules: convert set operations to existential subqueries (§5.3).

``INTERSECT`` and ``EXCEPT`` normally sort both operands; when one
operand is provably duplicate-free the operation collapses to a
(negated) EXISTS filter over that operand, with the null-safe
correlation predicate of Theorem 3.
"""

from __future__ import annotations

from ...errors import UnsupportedQueryError
from ...sql.ast import Quantifier, Query, SelectQuery, SetOperation, SetOpKind, Star
from ...sql.expressions import Exists, conjoin, conjuncts
from ..theorem3 import correlation_predicate, projection_columns
from ..uniqueness import is_duplicate_free
from .base import RewriteContext, Rule, query_aliases, rename_alias


class IntersectToExists(Rule):
    """Theorem 3 / Corollary 2: INTERSECT [ALL] -> EXISTS.

    For ``INTERSECT`` either operand being duplicate-free suffices (the
    operation is commutative); for ``INTERSECT ALL`` the duplicate-free
    operand becomes the outer block in both cases, because
    ``min(j, k)`` with one side at most 1 keeps one copy of each common
    row — exactly what the EXISTS filter over the unique side produces.
    """

    name = "intersect-to-exists"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SetOperation):
            return None
        if query.kind is not SetOpKind.INTERSECT:
            return None
        left, right = query.left, query.right
        if not isinstance(left, SelectQuery) or not isinstance(
            right, SelectQuery
        ):
            return None

        kind = "Corollary 2 (INTERSECT ALL)" if query.all else "Theorem 3"
        if is_duplicate_free(left, ctx.catalog, ctx.options):
            rewritten = _build_exists(left, right, ctx, negated=False)
            if rewritten is None:
                return None
            side = "left"
            chosen = left
        elif is_duplicate_free(right, ctx.catalog, ctx.options):
            rewritten = _build_exists(right, left, ctx, negated=False)
            if rewritten is None:
                return None
            side = "right"
            chosen = right
        else:
            ctx.record(
                self.name,
                kind,
                "rejected",
                query,
                "neither operand is provably duplicate-free, so the "
                "intersection keeps its sort-based evaluation",
                {
                    "left": _operand_witness(left, ctx),
                    "right": _operand_witness(right, ctx),
                },
            )
            return None
        ctx.record(
            self.name,
            kind,
            "fired",
            query,
            f"the {side} operand is duplicate-free, so the intersection "
            "becomes an existential subquery with null-safe matching",
            _operand_witness(chosen, ctx),
        )
        return rewritten, (
            f"{kind}: the {side} operand is duplicate-free, so the "
            "intersection becomes an existential subquery with null-safe "
            "matching"
        )


class ExceptToNotExists(Rule):
    """The EXCEPT analogue the paper mentions but omits for space.

    ``Q = π[A_R](σ_{C_R}(R)) −_d π[A_S](σ_{C_S}(S))`` rewrites to
    ``σ[C_R ∧ ¬∃(σ[C_S ∧ C_{R,S}](S))](R)`` projected on ``A_R`` when
    the **left** operand is duplicate-free (EXCEPT is not commutative;
    a duplicate-free right operand does not help: ``max(j - 1, 0)`` is
    not expressible as a per-row filter).
    """

    name = "except-to-not-exists"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SetOperation):
            return None
        if query.kind is not SetOpKind.EXCEPT:
            return None
        left, right = query.left, query.right
        if not isinstance(left, SelectQuery) or not isinstance(
            right, SelectQuery
        ):
            return None
        if not is_duplicate_free(left, ctx.catalog, ctx.options):
            ctx.record(
                self.name,
                "Theorem 3 (EXCEPT analogue)",
                "rejected",
                query,
                "the left operand is not provably duplicate-free (EXCEPT "
                "is not commutative, so only the left side can justify "
                "the rewrite)",
                {"left": _operand_witness(left, ctx)},
            )
            return None
        rewritten = _build_exists(left, right, ctx, negated=True)
        if rewritten is None:
            return None
        ctx.record(
            self.name,
            "Theorem 3 (EXCEPT analogue)",
            "fired",
            query,
            "the left operand is duplicate-free, so the difference "
            "becomes a NOT EXISTS filter with null-safe matching",
            _operand_witness(left, ctx),
        )
        return rewritten, (
            "the left operand is duplicate-free, so the difference becomes "
            "a NOT EXISTS filter with null-safe matching"
        )


def _operand_witness(operand: SelectQuery, ctx: RewriteContext) -> dict:
    """Audit evidence for one set-operation operand's uniqueness."""
    if operand.distinct:
        return {
            "duplicate_free": True,
            "reason": "DISTINCT block never produces duplicates",
        }
    from ..uniqueness import test_uniqueness

    verdict = test_uniqueness(operand, ctx.catalog, ctx.options)
    payload = verdict.witness()
    payload["duplicate_free"] = verdict.unique
    payload["reason"] = verdict.reason
    return payload


def _build_exists(
    outer: SelectQuery,
    inner: SelectQuery,
    ctx: RewriteContext,
    negated: bool,
) -> SelectQuery | None:
    """``outer WHERE [NOT] EXISTS (inner with null-safe correlation)``."""
    try:
        outer_columns = projection_columns(outer, ctx.catalog)
        inner_columns = projection_columns(inner, ctx.catalog)
    except UnsupportedQueryError:
        return None
    if len(outer_columns) != len(inner_columns):
        return None

    taken = query_aliases(outer)
    renames: dict[str, str] = {}
    for ref in inner.tables:
        alias = ref.effective_name
        if alias in taken:
            fresh = ctx.fresh_alias(alias, taken | query_aliases(inner))
            renames[alias] = fresh
            inner = rename_alias(inner, alias, fresh)
    if renames:
        inner_columns = [
            (
                type(ref)(renames.get(ref.qualifier, ref.qualifier), ref.column),
                nullable,
            )
            for ref, nullable in inner_columns
        ]

    correlation = correlation_predicate(outer_columns, inner_columns)
    subquery = SelectQuery(
        quantifier=Quantifier.ALL,
        select_list=(Star(),),
        tables=inner.tables,
        where=conjoin(conjuncts(inner.where) + conjuncts(correlation)),
    )
    new_where = conjoin(
        conjuncts(outer.where) + [Exists(subquery, negated=negated)]
    )
    return outer.with_where(new_where)
