"""Rewrite-rule infrastructure: rules, steps, context, alias renaming."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...catalog.schema import Catalog
from ...sql.ast import Query, SelectQuery, SetOperation, TableRef
from ...sql.expressions import ColumnRef, Exists, Expr, InSubquery
from ...sql.printer import to_sql
from ..uniqueness import UniquenessOptions


@dataclass
class RewriteStep:
    """One applied rewrite, for the optimizer's trace."""

    rule: str
    before: Query
    after: Query
    note: str

    def describe(self) -> str:
        """Render this step for the optimizer trace."""
        return (
            f"[{self.rule}] {self.note}\n"
            f"  before: {to_sql(self.before)}\n"
            f"  after:  {to_sql(self.after)}"
        )


class RewriteContext:
    """Shared state handed to rules: catalog, options, alias generator,
    and (when the optimizer attaches one) the audit trail rules record
    their theorem decisions into."""

    def __init__(
        self, catalog: Catalog, options: UniquenessOptions | None = None
    ) -> None:
        self.catalog = catalog
        self.options = options or UniquenessOptions()
        self.audit = None  # an observe.AuditTrail during optimize()

    def record(
        self,
        rule: str,
        theorem: str,
        decision: str,
        target: Query,
        note: str,
        witness: dict | None = None,
    ) -> None:
        """Record one theorem decision when an audit trail is attached.

        No-op otherwise, so rules stay usable outside the optimizer
        without paying for evidence they have no trail to put in.
        """
        if self.audit is not None:
            self.audit.record(
                rule, theorem, decision, to_sql(target), note, witness
            )

    def fresh_alias(self, base: str, taken: set[str]) -> str:
        """A correlation name not in *taken*, derived from *base*."""
        if base not in taken:
            return base
        counter = 1
        while f"{base}_{counter}" in taken:
            counter += 1
        return f"{base}_{counter}"


class Rule:
    """A semantic rewrite rule.

    ``apply`` returns ``(rewritten_query, note)`` when the rule fires, or
    None when it does not apply.  Rules must be semantics-preserving for
    every database instance — the property-based suite executes original
    and rewritten queries on random instances and requires multiset-equal
    results.
    """

    name: str = "rule"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        raise NotImplementedError


def rename_alias(query: SelectQuery, old: str, new: str) -> SelectQuery:
    """Rename one FROM-clause correlation name throughout a block.

    Rewrites the table reference, the WHERE predicate (descending into
    subqueries unless they shadow the name), the select list, and ORDER
    BY items.
    """
    tables = tuple(
        TableRef(ref.name, new)
        if ref.effective_name == old
        else ref
        for ref in query.tables
    )
    where = _rename_in_expr(query.where, old, new) if query.where else None
    select_list = tuple(
        item
        if not hasattr(item, "expr")
        else type(item)(_rename_in_expr(item.expr, old, new), item.alias)
        for item in query.select_list
    )
    from ...sql.ast import Star

    select_list = tuple(
        Star(new) if isinstance(item, Star) and item.qualifier == old else item
        for item in select_list
    )
    order_by = tuple(
        type(item)(_rename_in_expr(item.expr, old, new), item.ascending)
        for item in query.order_by
    )
    return SelectQuery(
        quantifier=query.quantifier,
        select_list=select_list,
        tables=tables,
        where=where,
        order_by=order_by,
    )


def _rename_in_expr(expr: Expr, old: str, new: str) -> Expr:
    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, ColumnRef) and node.qualifier == old:
            return ColumnRef(new, node.column)
        if isinstance(node, Exists):
            return Exists(_rename_in_query(node.query, old, new), node.negated)
        if isinstance(node, InSubquery):
            return InSubquery(
                node.operand,  # operand already rewritten bottom-up
                _rename_in_query(node.query, old, new),
                node.negated,
            )
        return None

    return expr.transform(rewrite)


def _rename_in_query(query, old: str, new: str):
    """Rename correlated references inside a nested query.

    If the nested block declares the same correlation name, the outer
    name is shadowed and nothing inside can refer to it.
    """
    if isinstance(query, SetOperation):
        return SetOperation(
            query.kind,
            query.all,
            _rename_in_query(query.left, old, new),
            _rename_in_query(query.right, old, new),
        )
    assert isinstance(query, SelectQuery)
    if any(ref.effective_name == old for ref in query.tables):
        return query  # shadowed
    where = _rename_in_expr(query.where, old, new) if query.where else None
    return query.with_where(where)


def query_aliases(query: SelectQuery) -> set[str]:
    """The effective FROM-clause names of a block."""
    return {ref.effective_name for ref in query.tables}


def mentions_alias(expr: Expr, alias: str) -> bool:
    """Whether *expr* (including nested subqueries) references *alias*."""
    for node in expr.walk():
        if isinstance(node, ColumnRef) and node.qualifier == alias:
            return True
        if isinstance(node, (Exists, InSubquery)):
            if _query_mentions_alias(node.query, alias):
                return True
    return False


def _query_mentions_alias(query, alias: str) -> bool:
    if isinstance(query, SetOperation):
        return _query_mentions_alias(query.left, alias) or _query_mentions_alias(
            query.right, alias
        )
    assert isinstance(query, SelectQuery)
    if any(ref.effective_name == alias for ref in query.tables):
        return False  # shadowed
    return query.where is not None and mentions_alias(query.where, alias)
