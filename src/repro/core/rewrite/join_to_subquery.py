"""Rule: convert a join into an existential subquery (§6).

The reverse of subquery flattening.  In navigational systems (IMS,
pointer-based object stores) a nested-loops strategy is the native
access pattern, and a join whose joined table contributes nothing to the
projection is better expressed as an EXISTS probe: the inner scan can
stop at the first match (the paper's Example 10 halves the DL/I calls).

The rewrite removes one FROM-clause table S when:

* no projection or ORDER BY item references S, and either
* **Theorem 2 (reversed)** — the conjuncts mentioning S bind a candidate
  key of S given the remaining tables, so at most one S-tuple matches
  and the multiset is unchanged, or
* the query projects with DISTINCT, where extra matches collapse anyway.
"""

from __future__ import annotations

from ...sql.ast import Quantifier, Query, SelectQuery, Star, TableRef
from ...sql.expressions import (
    ColumnRef,
    Exists,
    Expr,
    InSubquery,
    conjoin,
    conjuncts,
)
from ...analysis.binding import projection_attributes, qualify, table_columns
from ..theorem2 import subquery_matches_at_most_one
from .base import RewriteContext, Rule


class JoinToSubquery(Rule):
    """Fold a projection-invisible table into an EXISTS subquery."""

    name = "join-to-subquery"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery) or len(query.tables) < 2:
            return None
        columns = table_columns(query, ctx.catalog)
        where = (
            qualify(query.where, columns, allow_correlated=False)
            if query.where is not None
            else None
        )
        projected = {
            attribute.relation
            for attribute in projection_attributes(query, ctx.catalog)
        }
        ordered = {
            ref.qualifier
            for item in query.order_by
            for ref in [item.expr]
            if hasattr(ref, "qualifier")
        }
        for candidate in query.tables:
            alias = candidate.effective_name
            if alias in projected or alias in ordered:
                continue
            outcome = self._try_fold(query, where, candidate, ctx)
            if outcome is not None:
                return outcome
        return None

    def _try_fold(
        self,
        query: SelectQuery,
        where: Expr | None,
        candidate: TableRef,
        ctx: RewriteContext,
    ) -> tuple[Query, str] | None:
        alias = candidate.effective_name
        all_aliases = {ref.effective_name for ref in query.tables}
        inner_parts: list[Expr] = []
        outer_parts: list[Expr] = []
        for conjunct in conjuncts(where):
            if _mentions(conjunct, alias, all_aliases):
                inner_parts.append(conjunct)
            else:
                outer_parts.append(conjunct)

        inner = SelectQuery(
            quantifier=Quantifier.ALL,
            select_list=(Star(),),
            tables=(candidate,),
            where=conjoin(inner_parts) if inner_parts else None,
        )
        remaining = tuple(
            ref for ref in query.tables if ref.effective_name != alias
        )
        outer = SelectQuery(
            quantifier=query.quantifier,
            select_list=query.select_list,
            tables=remaining,
            where=conjoin(outer_parts) if outer_parts else None,
            order_by=query.order_by,
        )

        uniqueness = subquery_matches_at_most_one(
            inner, outer, ctx.catalog, ctx.options
        )
        if uniqueness.at_most_one:
            note = (
                f"Theorem 2 (reversed): at most one {alias} tuple joins with "
                "each remaining row, so the join becomes a nested EXISTS "
                "probe that can stop at the first match"
            )
            ctx.record(
                self.name,
                "Theorem 2 (reversed)",
                "fired",
                query,
                note,
                uniqueness.witness(),
            )
        elif query.distinct:
            note = (
                f"the projection is DISTINCT and never mentions {alias}; "
                "folding the table into EXISTS preserves the result"
            )
            ctx.record(
                self.name,
                "DISTINCT observation (§6)",
                "fired",
                query,
                note,
                {"theorem2_reason": uniqueness.reason},
            )
        else:
            ctx.record(
                self.name,
                "Theorem 2 (reversed)",
                "rejected",
                query,
                f"several {alias} tuples may join with one remaining row "
                f"({uniqueness.reason}) and the projection keeps "
                "duplicates, so folding the join would change the "
                "multiset",
                uniqueness.witness(),
            )
            return None

        new_where = conjoin(outer_parts + [Exists(inner)])
        return outer.with_where(new_where), note


def _mentions(conjunct: Expr, alias: str, all_aliases: set[str]) -> bool:
    """Whether a conjunct references *alias*, looking inside subqueries.

    Subquery predicates may reference outer columns; a qualified
    reference is attributed precisely, while an *unqualified* reference
    inside a subquery could resolve to any enclosing table, so the
    conjunct is conservatively treated as mentioning every alias.
    """
    mentioned, conservative = _conjunct_aliases(conjunct, all_aliases)
    if conservative:
        return True
    return alias in mentioned


def _conjunct_aliases(
    conjunct: Expr, outer_aliases: set[str]
) -> tuple[set[str], bool]:
    mentioned: set[str] = set()
    conservative = False
    for node in conjunct.walk():
        if isinstance(node, ColumnRef):
            if node.qualifier is not None:
                mentioned.add(node.qualifier)
            # top-level refs are qualified beforehand; an unqualified one
            # here would be a binder bug, treated conservatively below
            else:
                conservative = True
        elif isinstance(node, (Exists, InSubquery)):
            sub_mentioned, sub_conservative = _subquery_aliases(
                node.query, outer_aliases
            )
            mentioned |= sub_mentioned
            conservative |= sub_conservative
    return mentioned & outer_aliases, conservative


def _subquery_aliases(query, outer_aliases: set[str]) -> tuple[set[str], bool]:
    """Outer aliases referenced inside a nested query (shadow-aware)."""
    from ...sql.ast import SetOperation

    if isinstance(query, SetOperation):
        left = _subquery_aliases(query.left, outer_aliases)
        right = _subquery_aliases(query.right, outer_aliases)
        return left[0] | right[0], left[1] or right[1]
    assert isinstance(query, SelectQuery)
    visible = outer_aliases - {ref.effective_name for ref in query.tables}
    local = {ref.effective_name for ref in query.tables}
    mentioned: set[str] = set()
    conservative = False
    if query.where is not None:
        for node in query.where.walk():
            if isinstance(node, ColumnRef):
                if node.qualifier is None:
                    # could resolve to any enclosing table at runtime
                    conservative = True
                elif node.qualifier in visible:
                    mentioned.add(node.qualifier)
            elif isinstance(node, (Exists, InSubquery)):
                sub_mentioned, sub_conservative = _subquery_aliases(
                    node.query, visible | local
                )
                mentioned |= sub_mentioned & visible
                conservative |= sub_conservative
    return mentioned, conservative
