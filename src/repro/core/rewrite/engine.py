"""The rewrite optimizer: applies rules to a fixpoint with a trace."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...catalog.schema import Catalog
from ...observe.audit import VERDICT, AuditTrail
from ...observe.trace import NULL_SPAN, TRACER
from ...sql.ast import Query, SelectQuery, SetOperation
from ...sql.parser import parse_query
from ...sql.printer import to_sql
from ..uniqueness import UniquenessOptions, test_uniqueness
from .base import RewriteContext, RewriteStep, Rule
from .distinct_elimination import DistinctElimination
from .join_elimination import JoinElimination
from .join_to_subquery import JoinToSubquery
from .setop_to_exists import ExceptToNotExists, IntersectToExists
from .subquery_to_join import InToExists, SubqueryToJoin

#: Rules safe mode has caught changing a result, by name → reason.
#: Every optimizer in the process skips a quarantined rule until
#: :func:`unquarantine_all` lifts the quarantine (or the process ends).
_quarantined: dict[str, str] = {}


def quarantine_rule(name: str, reason: str = "") -> None:
    """Disable the rewrite rule called *name* process-wide.

    Safe mode calls this when a cross-check shows the rule changed a
    query's result multiset (e.g. an unsound uniqueness verdict let
    DISTINCT elimination drop a needed duplicate-removal step)."""
    _quarantined[name] = reason


def quarantined_rules() -> dict[str, str]:
    """Currently quarantined rule names mapped to their reasons."""
    return dict(_quarantined)


def unquarantine_all() -> None:
    """Lift every quarantine (tests and operator intervention)."""
    _quarantined.clear()


@dataclass
class OptimizeResult:
    """The rewritten query plus the trace of applied steps."""

    query: Query
    steps: list[RewriteStep] = field(default_factory=list)
    audit: AuditTrail = field(default_factory=AuditTrail)

    @property
    def sql(self) -> str:
        """The rewritten query as SQL text."""
        return to_sql(self.query)

    @property
    def changed(self) -> bool:
        """Whether any rule fired."""
        return bool(self.steps)

    def explain(self) -> str:
        """Human-readable trace of every applied step."""
        if not self.steps:
            return "(no rewrites applied)"
        return "\n".join(step.describe() for step in self.steps)

    def proof_sketch(self) -> str:
        """The audit trail's theorem decisions — fired and rejected,
        each with its witness — as a numbered proof sketch."""
        return self.audit.proof_sketch()


class Optimizer:
    """Applies a pipeline of semantic rewrite rules to a fixpoint.

    Rules are applied top-down over the query expression tree: set
    operations first optimize their operands, then rules see the
    combined node (so an INTERSECT whose operand just lost a redundant
    DISTINCT can still convert to EXISTS).  Each applied step is
    recorded; ``max_passes`` bounds the fixpoint loop.
    """

    def __init__(
        self,
        catalog: Catalog,
        rules: list[Rule] | None = None,
        options: UniquenessOptions | None = None,
        max_passes: int = 10,
    ) -> None:
        self.ctx = RewriteContext(catalog, options)
        self.rules = rules if rules is not None else relational_rules()
        self.max_passes = max_passes

    @classmethod
    def for_relational(
        cls,
        catalog: Catalog,
        options: UniquenessOptions | None = None,
        max_passes: int = 10,
    ) -> "Optimizer":
        """Profile for set-oriented engines: flatten subqueries to joins,
        convert set operations, drop redundant DISTINCTs."""
        return cls(catalog, relational_rules(), options, max_passes)

    @classmethod
    def for_navigational(
        cls,
        catalog: Catalog,
        options: UniquenessOptions | None = None,
        max_passes: int = 10,
    ) -> "Optimizer":
        """Profile for pointer-based systems (IMS, object stores):
        prefer nested-loops shapes, so convert joins to subqueries."""
        return cls(catalog, navigational_rules(), options, max_passes)

    # ------------------------------------------------------------------

    def optimize(self, query: Query | str) -> OptimizeResult:
        """Rewrite *query* to a fixpoint; returns query + trace.

        Every run collects an audit trail: each rule records its
        theorem decision (fired or rejected, with the witness) via the
        shared context, and queries no rule needed to touch still get a
        standalone Algorithm 1 verdict — so every optimized query has a
        documented uniqueness decision.
        """
        if isinstance(query, str):
            query = parse_query(query)
        result = OptimizeResult(query)
        self.ctx.audit = result.audit
        span_cm = (
            TRACER.span("rewrite.optimize", sql=to_sql(query))
            if TRACER.enabled
            else NULL_SPAN
        )
        try:
            with span_cm as span:
                for _ in range(self.max_passes):
                    rewritten = self._pass(result.query, result.steps)
                    if rewritten is None:
                        break
                    result.query = rewritten
                self._record_fallback_verdict(result)
                if span:
                    span.attributes["rules"] = (
                        ", ".join(
                            dict.fromkeys(step.rule for step in result.steps)
                        )
                        or "(none)"
                    )
        finally:
            self.ctx.audit = None
        return result

    def _record_fallback_verdict(self, result: OptimizeResult) -> None:
        """Ensure the trail is never empty: when no rule recorded a
        decision, run Algorithm 1 on the final form and file the
        verdict (set operations get a structural note instead)."""
        if result.audit.records:
            return
        query = result.query
        if isinstance(query, SelectQuery):
            verdict = test_uniqueness(query, self.ctx.catalog, self.ctx.options)
            note = (
                "projection is provably duplicate-free as written"
                if verdict.unique
                else f"projection may contain duplicates ({verdict.reason})"
            )
            result.audit.record(
                "optimizer",
                "Algorithm 1",
                VERDICT,
                to_sql(query),
                note,
                verdict.witness(),
            )
        else:
            result.audit.record(
                "optimizer",
                "Algorithm 1",
                VERDICT,
                to_sql(query),
                "set operation left as written; no operand examined by "
                "any rule",
            )

    def _pass(self, query: Query, steps: list[RewriteStep]) -> Query | None:
        """One optimization pass; returns the new query or None."""
        changed = False

        if isinstance(query, SetOperation):
            left = self._pass(query.left, steps)
            right = self._pass(query.right, steps)
            if left is not None or right is not None:
                query = SetOperation(
                    query.kind,
                    query.all,
                    left if left is not None else query.left,
                    right if right is not None else query.right,
                )
                changed = True

        for rule in self.rules:
            if rule.name in _quarantined:
                continue
            outcome = rule.apply(query, self.ctx)
            if outcome is None:
                continue
            rewritten, note = outcome
            steps.append(
                RewriteStep(rule=rule.name, before=query, after=rewritten, note=note)
            )
            query = rewritten
            changed = True

        return query if changed else None


def relational_rules() -> list[Rule]:
    """Default rule pipeline for relational execution.

    Order matters: IN normalizes to EXISTS, set operations convert to
    EXISTS, EXISTS flattens to joins, and DISTINCT elimination runs last
    so it also sees DISTINCTs introduced by Corollary 1 flattening.
    """
    return [
        InToExists(),
        IntersectToExists(),
        ExceptToNotExists(),
        SubqueryToJoin(),
        JoinElimination(),
        DistinctElimination(),
    ]


def navigational_rules() -> list[Rule]:
    """Rule pipeline for navigational backends (IMS / object stores).

    Joins fold into EXISTS probes; subquery flattening is excluded (it
    would undo the fold and loop)."""
    return [
        InToExists(),
        IntersectToExists(),
        ExceptToNotExists(),
        DistinctElimination(),
        JoinElimination(),
        JoinToSubquery(),
    ]


def optimize(
    query: Query | str,
    catalog: Catalog,
    options: UniquenessOptions | None = None,
) -> OptimizeResult:
    """One-shot relational optimization."""
    return Optimizer.for_relational(catalog, options).optimize(query)
