"""Rule: convert an existential subquery into an INTERSECT (§5.3).

The paper's observation after Theorem 3: "We now have a means of
converting a nested query specification to a query expression involving
intersection, another possible execution strategy."

This is the inverse of :class:`IntersectToExists`.  It applies when

* the outer block is duplicate-free (Theorem 3's precondition, so the
  INTERSECT's duplicate elimination cannot change the outer multiset),
* the WHERE contains one positive EXISTS conjunct whose inner predicate
  is exactly the null-safe pairing (≐) of the *outer projection columns*
  with inner columns — i.e. the EXISTS tests tuple membership — plus
  arbitrary inner-only conjuncts.

The rule is not part of either default profile (it would ping-pong with
``intersect-to-exists``); it exists for cost-based optimizers that want
the set-operation strategy in their search space, and to round out the
paper's suite of equivalences.
"""

from __future__ import annotations

from ...sql.ast import (
    Quantifier,
    Query,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOpKind,
)
from ...sql.expressions import (
    And,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    IsNull,
    Or,
    conjoin,
    conjuncts,
)
from ...analysis.binding import qualify, table_columns
from ..uniqueness import is_duplicate_free
from .base import RewriteContext, Rule, query_aliases


class ExistsToIntersect(Rule):
    """Rewrite a membership-testing EXISTS into INTERSECT."""

    name = "exists-to-intersect"

    def apply(
        self, query: Query, ctx: RewriteContext
    ) -> tuple[Query, str] | None:
        if not isinstance(query, SelectQuery) or query.where is None:
            return None
        if query.order_by:
            return None
        projection = self._projection_refs(query, ctx)
        if projection is None:
            return None

        parts = conjuncts(query.where)
        for position, conjunct in enumerate(parts):
            if not isinstance(conjunct, Exists) or conjunct.negated:
                continue
            inner = conjunct.query
            if not isinstance(inner, SelectQuery) or inner.where is None:
                continue
            rest = parts[:position] + parts[position + 1 :]
            outcome = self._try_convert(
                query, projection, inner, rest, ctx
            )
            if outcome is not None:
                return outcome
        return None

    def _projection_refs(
        self, query: SelectQuery, ctx: RewriteContext
    ) -> list[ColumnRef] | None:
        columns = table_columns(query, ctx.catalog)
        refs: list[ColumnRef] = []
        for item in query.select_list:
            if not isinstance(item, SelectItem) or not isinstance(
                item.expr, ColumnRef
            ):
                return None
            from ...analysis.binding import resolve_column

            resolved = resolve_column(item.expr, columns)
            if resolved is None:
                return None
            refs.append(resolved)
        return refs

    def _try_convert(
        self,
        outer: SelectQuery,
        projection: list[ColumnRef],
        inner: SelectQuery,
        rest: list[Expr],
        ctx: RewriteContext,
    ) -> tuple[Query, str] | None:
        outer_without = outer.with_where(conjoin(rest) if rest else None)
        if not is_duplicate_free(
            outer_without.with_quantifier(Quantifier.ALL), ctx.catalog, ctx.options
        ):
            return None

        inner_aliases = query_aliases(inner)
        outer_aliases = query_aliases(outer)
        predicate = qualify(
            inner.where, table_columns(inner, ctx.catalog), allow_correlated=True
        )
        predicate = qualify(
            predicate, table_columns(outer, ctx.catalog), allow_correlated=True
        )

        def nullable(ref: ColumnRef) -> bool:
            source = outer if ref.qualifier in outer_aliases else inner
            for table_ref in source.tables:
                if table_ref.effective_name == ref.qualifier:
                    schema = ctx.catalog.table(table_ref.name)
                    return schema.column(ref.column).nullable
            return True  # unknown: assume the worst

        pairing: dict[ColumnRef, ColumnRef] = {}  # outer ref -> inner ref
        inner_only: list[Expr] = []
        for conjunct in conjuncts(predicate):
            pair = _membership_pair(conjunct, outer_aliases, inner_aliases)
            if pair is not None:
                outer_ref, inner_ref, null_safe = pair
                if not null_safe and nullable(outer_ref) and nullable(
                    inner_ref
                ):
                    # plain '=' never matches NULL ≐ NULL, but INTERSECT
                    # would: only a null-safe pairing is exact here
                    return None
                if outer_ref in pairing:
                    return None  # ambiguous pairing
                pairing[outer_ref] = inner_ref
                continue
            refs = [
                node for node in conjunct.walk() if isinstance(node, ColumnRef)
            ]
            if any(ref.qualifier in outer_aliases for ref in refs):
                return None  # extra correlation beyond the ≐ pairing
            inner_only.append(conjunct)

        if set(pairing) != set(projection) or len(pairing) != len(projection):
            return None

        right = SelectQuery(
            quantifier=Quantifier.ALL,
            select_list=tuple(
                SelectItem(pairing[ref]) for ref in projection
            ),
            tables=inner.tables,
            where=conjoin(inner_only) if inner_only else None,
        )
        rewritten = SetOperation(
            SetOpKind.INTERSECT, False, outer_without, right
        )
        return rewritten, (
            "the EXISTS tests ≐-membership of the (duplicate-free) outer "
            "projection in the inner block: rewritten as INTERSECT "
            "(the paper's §5.3 observation, inverse of Theorem 3)"
        )


def _membership_pair(
    conjunct: Expr, outer_aliases: set[str], inner_aliases: set[str]
) -> tuple[ColumnRef, ColumnRef, bool] | None:
    """Match ``outer ≐ inner``: plain equality or the null-safe form.

    Returns ``(outer_ref, inner_ref, null_safe)``.
    """
    comparison: Comparison | None = None
    null_safe = False
    if isinstance(conjunct, Comparison) and conjunct.op == "=":
        comparison = conjunct
    elif isinstance(conjunct, Or) and len(conjunct.operands) == 2:
        null_part = next(
            (op for op in conjunct.operands if isinstance(op, And)), None
        )
        eq_part = next(
            (
                op
                for op in conjunct.operands
                if isinstance(op, Comparison) and op.op == "="
            ),
            None,
        )
        if null_part is None or eq_part is None:
            return None
        tested = set()
        for atom in null_part.operands:
            if not isinstance(atom, IsNull) or atom.negated:
                return None
            tested.add(atom.operand)
        if tested != {eq_part.left, eq_part.right}:
            return None
        comparison = eq_part
        null_safe = True
    if comparison is None:
        return None
    a, b = comparison.left, comparison.right
    if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
        return None
    if a.qualifier in outer_aliases and b.qualifier in inner_aliases:
        return a, b, null_safe
    if b.qualifier in outer_aliases and a.qualifier in inner_aliases:
        return b, a, null_safe
    return None
