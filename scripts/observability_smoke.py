#!/usr/bin/env python
"""CI smoke: observability over the paper's worked examples.

Runs ``repro run --analyze --trace --json --metrics-out`` on Examples
1-11, saves the per-example metrics and trace artifacts, and asserts

* EXPLAIN ANALYZE recorded real per-operator actuals (the root operator
  executed exactly once), and
* the rewrite audit trail names the exact theorem/algorithm decision
  the paper prescribes for the example.

The ``run`` path optimizes with the relational profile; the IMS/OODB
examples (10, 11) are additionally checked through the navigational
optimizer, whose audit must show Theorem 2 (reversed) firing.

Usage: PYTHONPATH=src python scripts/observability_smoke.py [--out-dir D]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from contextlib import redirect_stdout

from repro.cli import main as repro_main
from repro.core import Optimizer
from repro.workloads import PAPER_QUERIES, build_catalog

#: (theorem, decision) the audit must contain under the profile that
#: serves the example (relational via ``run``; navigational for 10/11).
EXPECTED = {
    "1": ("Theorem 1", "fired"),
    "2": ("Theorem 1", "rejected"),
    "3": ("Algorithm 1", "verdict"),
    "4": ("Theorem 1", "fired"),
    "6": ("Theorem 1", "fired"),
    "7": ("Theorem 2", "fired"),
    "8": ("Corollary 1", "fired"),
    "9": ("Theorem 3", "fired"),
    "10": ("Theorem 2 (reversed)", "fired"),
    "11": ("Theorem 2 (reversed)", "fired"),
}

NAVIGATIONAL = {"10", "11"}


def run_cli(argv: list[str]) -> tuple[int, str]:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = repro_main(argv)
    return code, buffer.getvalue()


def check_example(query, out_dir: str, failures: list[str]) -> dict:
    slug = f"ex{query.example}"
    argv = [
        "run",
        "--analyze",
        "--trace",
        "--json",
        "--metrics-out",
        os.path.join(out_dir, f"metrics_{slug}.prom"),
    ]
    for name, value in query.params.items():
        argv += ["--param", f"{name}={value}"]
    argv.append(query.sql)

    code, out = run_cli(argv)
    if code != 0:
        failures.append(f"{slug}: exit code {code}")
        return {"example": query.example, "exit_code": code}
    payload = json.loads(out)

    with open(
        os.path.join(out_dir, f"trace_{slug}.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload.get("trace", []), handle, indent=2)

    plan = payload["plan"]["plan"]
    if plan.get("loops") != 1:
        failures.append(f"{slug}: EXPLAIN ANALYZE recorded no actuals")

    decisions = {
        (record["theorem"], record["decision"])
        for record in payload.get("audit", [])
    }
    if query.example in NAVIGATIONAL:
        outcome = Optimizer.for_navigational(build_catalog()).optimize(
            query.sql
        )
        decisions |= {(r.theorem, r.decision) for r in outcome.audit}
    if not decisions:
        failures.append(f"{slug}: empty audit trail")
    expected = EXPECTED[query.example]
    if expected not in decisions:
        failures.append(
            f"{slug}: expected audit decision {expected}, "
            f"got {sorted(decisions)}"
        )

    return {
        "example": query.example,
        "rewritten": payload.get("rewritten"),
        "rules": payload.get("rules"),
        "expected": list(expected),
        "decisions": sorted(list(pair) for pair in decisions),
        "root_actual_rows": plan.get("actual_rows"),
        "spans": len(payload.get("trace", [])),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out-dir",
        default="observability-artifacts",
        help="directory for per-example metrics/trace files",
    )
    args = parser.parse_args()
    os.makedirs(args.out_dir, exist_ok=True)

    failures: list[str] = []
    summary = [
        check_example(query, args.out_dir, failures)
        for query in PAPER_QUERIES
    ]
    with open(
        os.path.join(args.out_dir, "summary.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(summary, handle, indent=2)

    for entry in summary:
        expected = entry.get("expected", ["?", "?"])
        print(
            f"example {entry['example']:>2}: "
            f"{expected[0]} {expected[1]} — ok"
            if not any(
                line.startswith(f"ex{entry['example']}:") for line in failures
            )
            else f"example {entry['example']:>2}: FAILED"
        )
    if failures:
        print()
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    print(f"\nall {len(summary)} examples verified; artifacts in {args.out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
