#!/usr/bin/env python3
"""Chaos soak: a live HTTP query server under seeded fault storms.

The harness boots a real :class:`~repro.net.server.QueryServer` (own
worker pool, bounded queue, admission controller, degradation ladder),
drives it with mixed-priority concurrent clients — interactive ones
carrying deadlines, batch ones carrying none — while a seeded schedule
arms and disarms fault injections at every chaos site the stack owns
(vectorized kernels, plan cache, operators, request reads, accepts,
response writes).  When the storm ends it verifies the whole-system
invariants the resilience layer promises:

1. **Correctness** — every successful response is byte-identical to
   the clean-run baseline for that statement; a fault may slow or fail
   a query, never bend its answer.
2. **Typed failure** — every failed request died with a typed,
   documented error (shed, overloaded, deadline, timeout, transient);
   anything else is a soak failure.
3. **No stranded work** — at quiescence the service ledger balances:
   ``submitted == completed + failed + abandoned + drained``.
4. **Self-healing** — every subsystem the storm demoted is re-promoted
   once probes run clean; the soak fails if any rung stays degraded.
5. **No poisoned caches** — after recovery the full statement set
   replays byte-identical against the same (shared) plan cache.
6. **Balanced ledger** — writer clients run random transfers between
   ledger accounts in real MVCC transactions throughout the storm
   (including injected ``wal_commit`` failures and lost write-write
   races); at quiescence the total balance is exactly the opening
   total and the candidate key still holds.  Because no paper query
   reads the ledger, the committed writes must not move a single read
   baseline — scoped invalidation, proven under fire.

Determinism: each soak round takes one integer seed; the fault
schedule, client workloads, and priorities all derive from it, so a
failing round replays with ``--seeds N``.

Usage::

    python scripts/chaos_soak.py --seconds 60 --seeds 0-2
    python scripts/chaos_soak.py --seconds 10 --seeds 4 --json report.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.api import Connection  # noqa: E402
from repro.errors import (  # noqa: E402
    DeadlineExpiredError,
    NetworkError,
    RemoteQueryError,
    ReproError,
    TicketWaitTimeout,
    TransientNetworkError,
)
from repro.net.server import QueryServer  # noqa: E402
from repro.options import ExecutionOptions  # noqa: E402
from repro.resilience import (  # noqa: E402
    FAULTS,
    SITE_NET_ACCEPT,
    SITE_NET_READ,
    SITE_NET_WRITE,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
    SITE_VECTORIZED_EVAL,
    SITE_WAL_COMMIT,
)
from repro.resilience.admission import SheddingPolicy  # noqa: E402
from repro.resilience.health import HealthPolicy  # noqa: E402
from repro.workloads import (  # noqa: E402
    PAPER_QUERIES,
    SupplierScale,
    build_database,
    generate,
)

SCALE = SupplierScale(suppliers=30, parts_per_supplier=6, agents_per_supplier=2)

#: Side table the writer clients bang on — none of the paper queries
#: reference it, so committed transfers must never move a read
#: baseline (scoped invalidation under fire).
LEDGER_ACCOUNTS = 8
LEDGER_OPENING = 100
LEDGER_DDL = "\n".join(
    ["CREATE TABLE LEDGER (ACCOUNT INT NOT NULL, BALANCE INT,"
     " PRIMARY KEY (ACCOUNT));"]
    + [
        f"INSERT INTO LEDGER VALUES ({account}, {LEDGER_OPENING});"
        for account in range(LEDGER_ACCOUNTS)
    ]
)

#: Tight ladder so storms demote (and recovery re-promotes) within one
#: soak round rather than one business day.
HEALTH = HealthPolicy(
    budget=3,
    window=20.0,
    probation_delay=0.2,
    max_probation_delay=2.0,
    probe_every=1,
    promote_after=2,
)

SHEDDING = SheddingPolicy(
    target_delay=0.5, batch_shed_at=0.5, wait_smoothing=0.5, min_queue=1
)

#: The fault menu one storm draws from: (site, kwargs) — every shape
#: the resilience layer claims to absorb.
FAULT_MENU = [
    (SITE_VECTORIZED_EVAL, {"kind": "exception", "times": 40}),
    (SITE_PLAN_CACHE, {"kind": "exception", "times": 10}),
    (SITE_PLAN_CACHE, {"kind": "slow", "delay": 0.05, "times": 20}),
    (SITE_OPERATOR, {"kind": "slow", "delay": 0.002, "times": 500}),
    (SITE_NET_READ, {"kind": "exception", "times": 5}),
    (SITE_NET_READ, {
        "kind": "corrupt",
        "corruptor": lambda data: data[: max(1, len(data) // 2)],
        "times": 3,
    }),
    (SITE_NET_ACCEPT, {"kind": "exception", "times": 5}),
    (SITE_NET_WRITE, {"kind": "exception", "times": 3}),
    # Commit apply: fails after validation, before publication — the
    # transaction must abort cleanly and the ledger must stay balanced.
    (SITE_WAL_COMMIT, {"kind": "exception", "times": 5}),
]

#: Errors a chaotic round is allowed to surface to a client.  Anything
#: outside this set fails the soak — resilience means *typed* failure.
EXPECTED_ERRORS = (
    TransientNetworkError,  # 429/503/sheds/injected accepts, breaker
    NetworkError,  # retries exhausted against a flapping listener
    DeadlineExpiredError,  # client-side fast-fail
    TicketWaitTimeout,
)

#: RemoteQueryError types a round may relay (server-side terminal).
EXPECTED_REMOTE = {
    "DeadlineExpiredError",
    "QueryTimeout",
    "QueryCancelled",
    "TicketWaitTimeout",
    "ProtocolError",  # truncated request bodies
    "InjectedFaultError",
    "ServiceShutdownError",
}

#: Additional terminal types a *writer* may see: a lost write-write
#: race is a typed 409, and a BEGIN replayed after a dropped response
#: lands inside the transaction it already opened.
EXPECTED_WRITER_REMOTE = EXPECTED_REMOTE | {
    "WriteConflictError",
    "UniquenessViolationError",
    "TransactionError",
}


class SoakFailure(AssertionError):
    pass


def _workload(db):
    """(sql, params, baseline_rows) for every paper query, from a clean
    tuple-mode run — the byte-identical reference."""
    items = []
    with Connection.local(db) as conn:
        for query in PAPER_QUERIES:
            rows = conn.execute(query.sql, query.params or None).fetchall()
            items.append((query.sql, query.params, rows))
    return items


class ClientStats:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ok = 0
        self.failed = 0
        self.transfers = 0
        self.conflicts = 0
        self.by_error: dict[str, int] = {}
        self.violations: list[str] = []

    def success(self) -> None:
        with self.lock:
            self.ok += 1

    def failure(self, error: BaseException) -> None:
        name = type(error).__name__
        with self.lock:
            self.failed += 1
            self.by_error[name] = self.by_error.get(name, 0) + 1

    def violation(self, message: str) -> None:
        with self.lock:
            self.violations.append(message)


def _client_loop(
    url: str,
    items: list,
    stats: ClientStats,
    stop: threading.Event,
    rng: random.Random,
    batch: bool,
) -> None:
    """One soak client: loop the workload until told to stop, verify
    every answer, classify every failure."""
    try:
        with repro.connect(url) as conn:
            while not stop.is_set():
                sql, params, baseline = items[rng.randrange(len(items))]
                kwargs = {}
                if batch:
                    kwargs["priority"] = "batch"
                else:
                    # Interactive clients declare real (generous)
                    # deadlines; a small minority declare hopeless ones
                    # to exercise the 504 path on purpose.
                    kwargs["deadline"] = (
                        0.001 if rng.random() < 0.05 else 10.0
                    )
                try:
                    rows = conn.execute(sql, params or None, **kwargs).fetchall()
                except EXPECTED_ERRORS as error:
                    stats.failure(error)
                except RemoteQueryError as error:
                    if error.error_type not in EXPECTED_REMOTE:
                        stats.violation(
                            f"unexpected remote error {error.error_type}: "
                            f"{error}"
                        )
                    stats.failure(error)
                except ReproError as error:
                    stats.violation(
                        f"untyped-for-chaos error {type(error).__name__}: "
                        f"{error}"
                    )
                    stats.failure(error)
                else:
                    if rows != baseline:
                        stats.violation(
                            f"result divergence on {sql[:60]!r}: "
                            f"{len(rows)} rows vs baseline {len(baseline)}"
                        )
                    stats.success()
    except BaseException as error:  # noqa: BLE001 — a dead client is a finding
        stats.violation(f"client thread died: {type(error).__name__}: {error}")


def _writer_loop(
    url: str,
    stats: ClientStats,
    stop: threading.Event,
    rng: random.Random,
) -> None:
    """One soak writer: random ledger transfers in real transactions.

    Each iteration moves a random amount between two accounts — read
    both balances, write both back — inside one transaction on its own
    server session.  Snapshot isolation makes every outcome all-or-
    nothing, so no storm (conflict, injected commit fault, dropped
    response) may unbalance the ledger.  The absolute-value UPDATEs are
    deliberately idempotent: a statement replayed by the retry loop
    after a dropped response applies the same end state.
    """
    try:
        with repro.connect(url, fresh_session=True) as conn:
            while not stop.is_set():
                source = rng.randrange(LEDGER_ACCOUNTS)
                target = (source + 1 + rng.randrange(LEDGER_ACCOUNTS - 1)) % (
                    LEDGER_ACCOUNTS
                )
                amount = rng.randint(1, 10)
                try:
                    if not conn.in_transaction:
                        conn.begin()
                    balances = {}
                    for account in (source, target):
                        rows = conn.execute(
                            "SELECT BALANCE FROM LEDGER"
                            " WHERE ACCOUNT = :ACCOUNT",
                            {"ACCOUNT": account},
                        ).fetchall()
                        balances[account] = rows[0][0]
                    for account, balance in (
                        (source, balances[source] - amount),
                        (target, balances[target] + amount),
                    ):
                        conn.execute(
                            "UPDATE LEDGER SET BALANCE = :BALANCE"
                            " WHERE ACCOUNT = :ACCOUNT",
                            {"BALANCE": balance, "ACCOUNT": account},
                        )
                    conn.commit()
                except EXPECTED_ERRORS as error:
                    stats.failure(error)
                    _writer_reset(conn, stats)
                except RemoteQueryError as error:
                    if error.error_type not in EXPECTED_WRITER_REMOTE:
                        stats.violation(
                            "unexpected remote writer error "
                            f"{error.error_type}: {error}"
                        )
                    elif error.error_type in (
                        "WriteConflictError",
                        "UniquenessViolationError",
                    ):
                        with stats.lock:
                            stats.conflicts += 1
                    stats.failure(error)
                    _writer_reset(conn, stats)
                except ReproError as error:
                    stats.violation(
                        "untyped-for-chaos writer error "
                        f"{type(error).__name__}: {error}"
                    )
                    stats.failure(error)
                    _writer_reset(conn, stats)
                else:
                    with stats.lock:
                        stats.transfers += 1
    except BaseException as error:  # noqa: BLE001 — a dead writer is a finding
        stats.violation(f"writer thread died: {type(error).__name__}: {error}")


def _writer_reset(conn, stats: ClientStats) -> None:
    """Best-effort rollback so the next transfer starts clean."""
    try:
        conn.rollback()
    except ReproError as error:
        stats.failure(error)


def _storm_loop(seconds: float, stop: threading.Event, rng: random.Random):
    """Arm random fault windows from the menu until time is up."""
    end = time.monotonic() + seconds
    storms = 0
    while time.monotonic() < end and not stop.is_set():
        site, spec = FAULT_MENU[rng.randrange(len(FAULT_MENU))]
        window = rng.uniform(0.1, 0.5)
        with FAULTS.inject(site, **spec):
            stop.wait(window)
        storms += 1
        stop.wait(rng.uniform(0.02, 0.1))  # calm between storms
    return storms


def _metric_sum(metrics, name: str) -> float:
    return sum(v for n, _labels, v in metrics.series() if n == name)


def soak_round(seed: int, seconds: float, clients: int, writers: int = 2) -> dict:
    """One seeded round; returns its report dict, raises SoakFailure."""
    FAULTS.reset()
    FAULTS.seed(seed)
    rng = random.Random(seed)
    db = build_database(generate(SCALE))
    db.run_script(LEDGER_DDL)
    items = _workload(db)
    stats = ClientStats()
    report: dict = {"seed": seed}

    with QueryServer(
        db,
        workers=2,
        queue_depth=16,
        shedding=SHEDDING,
        health_policy=HEALTH,
        options=ExecutionOptions.create(engine_mode="auto", timeout=10.0),
    ) as server:
        service = server.service
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(
                    server.url,
                    items,
                    stats,
                    stop,
                    random.Random(seed * 1000 + i),
                    i % 3 == 0,  # every third client is batch priority
                ),
                name=f"soak-client-{i}",
            )
            for i in range(clients)
        ]
        threads.extend(
            threading.Thread(
                target=_writer_loop,
                args=(
                    server.url,
                    stats,
                    stop,
                    random.Random(seed * 7000 + i),
                ),
                name=f"soak-writer-{i}",
            )
            for i in range(writers)
        )
        for thread in threads:
            thread.start()

        storms = _storm_loop(seconds, stop, rng)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
            if thread.is_alive():
                raise SoakFailure(f"{thread.name} failed to stop")

        # -- recovery: the storm is over; every demotion must heal.
        FAULTS.reset()
        FAULTS.seed(seed)
        recovery_deadline = time.monotonic() + 30.0
        with repro.connect(server.url) as conn:
            while (
                not service.health.healthy()
                and time.monotonic() < recovery_deadline
            ):
                for sql, params, _ in items:
                    try:
                        conn.execute(sql, params or None).fetchall()
                    except ReproError:
                        pass
                time.sleep(0.05)
            if not service.health.healthy():
                raise SoakFailure(
                    "subsystems still degraded after recovery window: "
                    f"{service.health.snapshot()}"
                )
            # -- poisoned-cache check: the post-storm replay must be
            # byte-identical through the same shared plan cache.
            for sql, params, baseline in items:
                rows = conn.execute(sql, params or None).fetchall()
                if rows != baseline:
                    raise SoakFailure(
                        f"post-recovery divergence on {sql[:60]!r}"
                    )

        health_snapshot = service.health.snapshot()
        admission_snapshot = service.admission.snapshot()
        server.drain()
        metrics = service.metrics

    # -- ledger: no stranded tickets at quiescence.
    submitted = _metric_sum(metrics, "service_submitted_total")
    accounted = (
        _metric_sum(metrics, "service_completed_total")
        + _metric_sum(metrics, "service_failed_total")
        + _metric_sum(metrics, "service_abandoned_total")
        + _metric_sum(metrics, "service_drained_total")
    )
    if submitted != accounted:
        raise SoakFailure(
            f"ledger imbalance: submitted={submitted} accounted={accounted}"
        )
    if stats.violations:
        raise SoakFailure(
            f"{len(stats.violations)} invariant violation(s), first: "
            f"{stats.violations[0]}"
        )
    if stats.ok == 0:
        raise SoakFailure("no query succeeded — the round proved nothing")

    # -- balanced ledger: every transfer was all-or-nothing, so no
    # storm outcome (conflict, injected commit fault, dropped response,
    # replayed statement) may create or destroy money — and the
    # candidate key must still hold one row per account.
    ledger_rows = db.table("LEDGER").rows
    if len(ledger_rows) != LEDGER_ACCOUNTS:
        raise SoakFailure(
            f"ledger has {len(ledger_rows)} rows, expected {LEDGER_ACCOUNTS}"
        )
    balance = sum(row[1] for row in ledger_rows)
    expected = LEDGER_ACCOUNTS * LEDGER_OPENING
    if balance != expected:
        raise SoakFailure(
            f"ledger unbalanced after storm: {balance} != {expected} "
            f"({stats.transfers} transfers, {stats.conflicts} conflicts)"
        )
    if writers and stats.transfers == 0:
        raise SoakFailure("no transfer committed — the writers proved nothing")

    report.update(
        {
            "storms": storms,
            "succeeded": stats.ok,
            "failed": stats.failed,
            "transfers": stats.transfers,
            "write_conflicts": stats.conflicts,
            "ledger_balance": balance,
            "errors": dict(sorted(stats.by_error.items())),
            "submitted": submitted,
            "completed": _metric_sum(metrics, "service_completed_total"),
            "drained": _metric_sum(metrics, "service_drained_total"),
            "abandoned": _metric_sum(metrics, "service_abandoned_total"),
            "shed": _metric_sum(metrics, "service_shed_total"),
            "deadline_rejected": _metric_sum(
                metrics, "service_deadline_rejected_total"
            ),
            "demotions": _metric_sum(metrics, "health_demotions_total"),
            "promotions": _metric_sum(metrics, "health_promotions_total"),
            "health": health_snapshot,
            "admission": admission_snapshot,
        }
    )
    return report


def parse_seeds(spec: str) -> list[int]:
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part and not part.startswith("-"):
            low, high = part.split("-", 1)
            seeds.extend(range(int(low), int(high) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds",
        type=float,
        default=30.0,
        help="total storm time, split across seeds (default 30)",
    )
    parser.add_argument(
        "--seeds",
        default="0",
        help="seed list/ranges, e.g. '0-2' or '0,3,7' (default 0)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=6,
        help="concurrent soak clients per round (default 6)",
    )
    parser.add_argument(
        "--writers",
        type=int,
        default=2,
        help="concurrent ledger-writer clients per round (default 2)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)
    seeds = parse_seeds(args.seeds)
    per_round = args.seconds / len(seeds)

    reports = []
    failed = False
    for seed in seeds:
        print(f"== soak round seed={seed} ({per_round:.0f}s storm) ==")
        try:
            report = soak_round(seed, per_round, args.clients, args.writers)
        except SoakFailure as failure:
            print(f"FAIL seed={seed}: {failure}", file=sys.stderr)
            reports.append({"seed": seed, "failure": str(failure)})
            failed = True
            continue
        reports.append(report)
        print(
            f"   ok={report['succeeded']} failed={report['failed']} "
            f"storms={report['storms']} shed={report['shed']:.0f} "
            f"demotions={report['demotions']:.0f} "
            f"promotions={report['promotions']:.0f} "
            f"transfers={report['transfers']} "
            f"conflicts={report['write_conflicts']}"
        )
        for name, count in report["errors"].items():
            print(f"   {name}: {count}")

    if args.json:
        Path(args.json).write_text(json.dumps(reports, indent=2, default=str))
        print(f"wrote {args.json}")
    print("chaos soak:", "FAILED" if failed else "PASSED")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
