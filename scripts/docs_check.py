#!/usr/bin/env python
"""Execute the runnable code blocks in the documentation.

Fenced blocks whose info string is ``python run`` or ``bash run`` — in
``README.md`` and every ``docs/*.md`` — are executed from the repository
root with ``PYTHONPATH=src``, so the documented examples are CI-verified
against the current code.  Blocks without the ``run`` tag (transcripts,
install snippets) are left alone.

Usage::

    python scripts/docs_check.py [--list] [FILE ...]

With no FILE arguments, checks README.md and docs/*.md.  Exits non-zero
on the first report of a failing block, after running all of them.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Opening fence with an info string we execute: ```python run / ```bash run
FENCE_RE = re.compile(r"^```(python|bash)\s+run\s*$")

#: Per-block wall-clock ceiling (seconds) — a hung example must not hang CI.
BLOCK_TIMEOUT = 120


@dataclass
class Block:
    """One runnable fenced block."""

    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    source: str

    @property
    def label(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:{self.line}"


def extract_blocks(path: Path) -> list[Block]:
    """Runnable blocks in *path*, in document order."""
    blocks: list[Block] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i].strip())
        if not match:
            i += 1
            continue
        start = i
        body: list[str] = []
        i += 1
        while i < len(lines) and lines[i].strip() != "```":
            body.append(lines[i])
            i += 1
        if i == len(lines):
            raise SystemExit(f"{path}:{start + 1}: unterminated fence")
        blocks.append(
            Block(path, start + 1, match.group(1), "\n".join(body) + "\n")
        )
        i += 1
    return blocks


def run_block(block: Block) -> tuple[bool, str]:
    """Execute one block; returns (ok, captured output)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src

    if block.language == "python":
        argv = [sys.executable, "-c", block.source]
    else:
        argv = ["bash", "-euo", "pipefail", "-c", block.source]
    try:
        proc = subprocess.run(
            argv,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=BLOCK_TIMEOUT,
        )
    except subprocess.TimeoutExpired:
        return False, f"timed out after {BLOCK_TIMEOUT}s"
    output = proc.stdout + proc.stderr
    return proc.returncode == 0, output


def check_cli_drift() -> list[str]:
    """Assert the CLI reference cannot drift from the implementation.

    Introspects ``repro.cli.build_arg_parser()`` — every subcommand
    must be named in ``docs/cli.md`` (as a section) and in
    ``README.md``, and every long flag must appear in its subcommand's
    ``docs/cli.md`` section.  The exit-code table in both files must
    list every entry of ``repro.errors.CLI_EXIT_CODES``.  Returns a
    list of human-readable problems (empty = no drift).
    """
    import argparse as _argparse

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_arg_parser
    from repro.errors import CLI_EXIT_CODES

    cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    readme = (REPO_ROOT / "README.md").read_text()
    problems: list[str] = []

    parser = build_arg_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, _argparse._SubParsersAction)
    )
    for name, subparser in subparsers.choices.items():
        if f"## {name}" not in cli_doc:
            problems.append(f"docs/cli.md: no '## {name}' section")
        if f"`{name}`" not in readme:
            problems.append(f"README.md: subcommand `{name}` not mentioned")
        flags = {
            option
            for action in subparser._actions
            for option in action.option_strings
            if option.startswith("--") and option != "--help"
        }
        for flag in sorted(flags):
            if f"`{flag}" not in cli_doc:
                problems.append(
                    f"docs/cli.md: flag `{flag}` of '{name}' undocumented"
                )

    for error_type, code in CLI_EXIT_CODES:
        row = f"| {code} |"
        if row not in cli_doc or error_type.__name__ not in cli_doc:
            problems.append(
                f"docs/cli.md: exit code {code} ({error_type.__name__}) "
                "missing from the exit-code table"
            )
        if row not in readme or error_type.__name__ not in readme:
            problems.append(
                f"README.md: exit code {code} ({error_type.__name__}) "
                "missing from the exit-code table"
            )
    return problems


def doc_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(arg).resolve() for arg in args]
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", help="markdown files (default: README + docs/)"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the runnable blocks without executing them",
    )
    args = parser.parse_args(argv)

    blocks = [
        block for path in doc_files(args.files) for block in extract_blocks(path)
    ]
    if args.list:
        for block in blocks:
            print(f"{block.label} [{block.language}]")
        return 0
    if not blocks:
        print("no runnable blocks found", file=sys.stderr)
        return 1

    failures = 0
    if not args.files:
        # Full runs also police reference drift: the CLI surface and
        # exit-code taxonomy must match what the docs promise.
        drift = check_cli_drift()
        status = "ok" if not drift else "FAIL"
        print(f"[{status}] CLI reference drift (docs/cli.md, README.md)")
        for problem in drift:
            failures += 1
            print(f"    {problem}")
    for block in blocks:
        ok, output = run_block(block)
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {block.label} ({block.language})")
        if not ok:
            failures += 1
            indented = "\n".join(f"    {line}" for line in output.splitlines())
            print(indented or "    (no output)")
    print(f"-- {len(blocks) - failures}/{len(blocks)} documentation blocks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
