"""E9 — Algorithm 1 vs the exact (NP-complete) Theorem 1 test (§4).

Claim: testing Theorem 1's condition exactly blows up (the search space
is exponential in schema width and domain size), while Algorithm 1 stays
polynomial — the paper's justification for the sufficient-condition
algorithm.  Both must agree wherever the exact test completes.
"""

from repro.bench import ExperimentReport, timed
from repro.catalog import CatalogBuilder
from repro.core import (
    ExactOptions,
    check_theorem1,
    test_uniqueness,
)
from repro.sql.ast import Quantifier, SelectItem, SelectQuery, TableRef
from repro.sql.expressions import ColumnRef, Comparison, conjoin


def schema_with_width(columns):
    """Two tables of *columns* columns each, single-column keys."""
    builder = CatalogBuilder()
    for name in ("R", "S"):
        table = builder.table(name)
        for i in range(columns):
            table.column(f"C{i}")
        table.primary_key("C0")
        builder = table.finish()
    return builder.build()


def width_query(columns):
    """SELECT DISTINCT R.C0, S.C0 FROM R, S WHERE R.C0 = S.C1 ... (join)."""
    where = conjoin(
        [Comparison("=", ColumnRef("R", "C0"), ColumnRef("S", "C0"))]
    )
    return SelectQuery(
        quantifier=Quantifier.DISTINCT,
        select_list=(
            SelectItem(ColumnRef("R", "C0")),
            SelectItem(ColumnRef("S", "C0")),
        ),
        tables=(TableRef("R"), TableRef("S")),
        where=where,
    )


def test_e9_exact_test_blows_up(benchmark):
    report = ExperimentReport(
        experiment="E9: Algorithm 1 vs exact Theorem 1 test",
        claim="exact testing is exponential in schema width; Algorithm 1 "
        "is polynomial and agrees",
        columns=[
            "columns/table", "t_algorithm1(s)", "t_exact(s)",
            "exact_combinations", "agree",
        ],
    )
    for columns in (2, 3, 4, 5):
        catalog = schema_with_width(columns)
        query = width_query(columns)
        algo, t_algo = timed(lambda: test_uniqueness(query, catalog))
        exact, t_exact = timed(
            lambda: check_theorem1(
                query,
                catalog,
                ExactOptions(domain_size=2, max_assignments=5_000_000),
            )
        )
        agree = exact.unique is None or exact.unique == algo.unique
        report.add_row(
            columns, t_algo, t_exact, exact.combinations_checked, agree
        )
        assert agree
        assert algo.unique  # keys are projected: always YES here
    report.note(
        "exact combinations grow ~4^columns per table; Algorithm 1 cost "
        "is flat"
    )
    report.show()

    # pytest-benchmark datapoint: Algorithm 1 on the widest schema.
    catalog = schema_with_width(5)
    query = width_query(5)
    verdict = benchmark(lambda: test_uniqueness(query, catalog))
    assert verdict.unique


def test_e9_algorithm1_scales_with_predicate_size(benchmark, bench_db):
    """Algorithm 1 over a long conjunctive predicate stays fast."""
    sql = (
        "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND " +
        " AND ".join(f"P.PNAME = :N{i}" for i in range(24))
    )
    verdict = benchmark(lambda: test_uniqueness(sql, bench_db.catalog))
    assert verdict.unique
