"""E20 — statistics-driven cost optimization and the adaptive loop.

Two claims, both from the cost-model story (``docs/cost_model.md``):

* **E20a** — on a mixed join workload whose FROM order would make the
  rule-based left-deep planner build a cross join, cost-based join
  ordering over collected statistics picks connected, filtered-first
  orders and beats the rule order end to end.
* **E20b** — on a correlated predicate the independence assumption
  misestimates by the correlated column's distinct count; the adaptive
  feedback loop folds observed cardinalities back after each analyzed
  run, so the per-query max q-error drops monotonically to <= 2 within
  five runs.

Every table lands in ``BENCH_e20.json``.
"""

import gc

import repro
from repro.bench import ExperimentReport, speedup, timed
from repro.engine import PlanCache, PlannerOptions, execute_planned
from repro.sql.parser import parse_query
from repro.stats.adaptive import GLOBAL_CORRECTIONS
from repro.workloads import SupplierScale, build_database, generate

#: E20 scale: small enough that the rule-order cross join stays in CI
#: budget, large enough that order choice dominates the runtime.
E20_SCALE = SupplierScale(
    suppliers=100, parts_per_supplier=10, agents_per_supplier=3
)

#: The mixed workload.  The first query's FROM order (PARTS, AGENTS,
#: SUPPLIER) makes the left-deep rule planner cross-join PARTS x AGENTS
#: before any predicate connects them; the others join through a
#: candidate key with filters of very different selectivity.
WORKLOAD = [
    (
        "from-order cross join",
        "SELECT P.PNAME FROM PARTS P, AGENTS A, SUPPLIER S "
        "WHERE P.SNO = S.SNO AND A.SNO = S.SNO AND S.BUDGET > 900",
    ),
    (
        "key-bound join, selective filter",
        "SELECT P.PNAME FROM PARTS P, SUPPLIER S "
        "WHERE P.SNO = S.SNO AND S.SCITY = 'Chicago'",
    ),
    (
        "key-bound join, range filter",
        "SELECT S.SNAME FROM SUPPLIER S, AGENTS A "
        "WHERE A.SNO = S.SNO AND S.BUDGET BETWEEN 100 AND 200",
    ),
]

#: Correlated predicate: PNAME functionally determines PNO in the
#: generated data, so independence underestimates by |distinct PNAME|.
ADAPTIVE_SQL = "SELECT PNAME FROM PARTS WHERE PNAME = 'part-3' AND PNO = 3"

ROUNDS = 5


def _run(query, db, options, cache):
    return execute_planned(
        query, db, options=options, plan_cache=cache
    )


def _bench(query, db, options, cache):
    """Warm-path timing: prime the plan cache, then average ROUNDS."""
    _run(query, db, options, cache)
    gc.collect()
    gc.disable()
    try:
        result, elapsed = timed(
            lambda: [_run(query, db, options, cache) for _ in range(ROUNDS)]
        )
    finally:
        gc.enable()
    return result[-1], elapsed / ROUNDS


def test_e20a_cost_based_join_order_beats_rule_order():
    """Cost-picked plans beat the rule order on the mixed workload."""
    db = build_database(generate(E20_SCALE))
    db.analyze()
    report = ExperimentReport(
        experiment="E20a: rule-order vs cost-based join ordering",
        claim="statistics-driven join ordering avoids the FROM-order "
        "cross join and wins the mixed workload end to end",
        columns=["query", "rows", "rule t(ms)", "cost t(ms)", "speedup"],
        slug="e20",
    )
    rule_total = cost_total = 0.0
    for label, sql in WORKLOAD:
        query = parse_query(sql)
        rule_result, t_rule = _bench(query, db, None, PlanCache())
        cost_result, t_cost = _bench(
            query, db, PlannerOptions(use_stats=True), PlanCache()
        )
        assert cost_result.multiset() == rule_result.multiset()
        rule_total += t_rule
        cost_total += t_cost
        report.add_row(
            label,
            len(rule_result),
            t_rule * 1e3,
            t_cost * 1e3,
            speedup(t_rule, t_cost),
        )
    ratio = speedup(rule_total, cost_total)
    report.add_row(
        "mixed workload total", "", rule_total * 1e3, cost_total * 1e3, ratio
    )
    report.note(
        f"{E20_SCALE.suppliers} suppliers x "
        f"{E20_SCALE.parts_per_supplier} parts; identical result "
        "multisets per query; plan caches primed per mode"
    )
    report.show()
    assert ratio > 1.0, f"cost-based order lost overall ({ratio:.2f}x)"


def test_e20b_adaptive_q_error_converges():
    """Max q-error drops monotonically to <= 2 within five runs."""
    db = build_database(generate(E20_SCALE))
    db.analyze()
    GLOBAL_CORRECTIONS.clear()
    report = ExperimentReport(
        experiment="E20b: adaptive feedback loop on a correlated predicate",
        claim="folding observed cardinalities drives the per-query max "
        "q-error to <= 2 within five runs, monotonically",
        columns=["run", "max q-error", "corrections folded"],
        slug="e20",
    )
    errors = []
    try:
        with repro.Connection.local(db) as connection:
            for round_number in range(1, ROUNDS + 1):
                cursor = connection.execute(ADAPTIVE_SQL, adaptive=True)
                outcome = cursor.executed.outcome
                error = outcome.analysis.analysis.max_q_error()
                errors.append(error)
                report.add_row(
                    round_number,
                    f"{error:.2f}",
                    outcome.stats.adaptive_corrections,
                )
    finally:
        report.note(
            "q-error = max(est/actual, actual/est); corrections are "
            "EWMA-blended per plan-node fingerprint"
        )
        report.show()
        GLOBAL_CORRECTIONS.clear()
    assert errors[0] > 2.0, "the misestimate the loop must fix is gone"
    assert errors[-1] <= 2.0, f"did not converge: {errors}"
    assert all(
        later <= earlier for earlier, later in zip(errors, errors[1:])
    ), f"q-error not monotone: {errors}"
