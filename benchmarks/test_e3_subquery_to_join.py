"""E3 — subquery-to-join flattening (Theorem 2; Example 7).

Claim: a correlated EXISTS forces a naive nested-loop strategy
(re-executing the subquery per outer row); flattening to a join lets the
optimizer use a hash join.  We report subquery re-executions eliminated
and wall-clock speedup.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport, speedup, timed
from repro.workloads import SupplierScale, build_database, generate

# Example 7 without the outer SNAME filter: every supplier is a
# candidate row, isolating the cost of re-executing the subquery per row
# (the exact Example 7 text is exercised in the test suite).
QUERY = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS "
    "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"
)
PARAMS = {"PART-NO": 3}


def test_e3_flattening_removes_subquery_reexecution(benchmark, bench_db):
    report = ExperimentReport(
        experiment="E3: subquery -> join (Theorem 2, Example 7)",
        claim="flattening eliminates per-row subquery execution",
        columns=[
            "suppliers", "subq_execs_before", "subq_execs_after",
            "t_nested(s)", "t_joined(s)", "speedup",
        ],
    )
    for suppliers in (50, 100, 200):
        db = build_database(
            generate(SupplierScale(suppliers=suppliers, parts_per_supplier=20))
        )
        rewritten = optimize(QUERY, db.catalog)
        assert [s.rule for s in rewritten.steps] == ["subquery-to-join"]

        nested_stats, joined_stats = Stats(), Stats()
        nested, t_nested = timed(
            lambda: execute_planned(QUERY, db, params=PARAMS, stats=nested_stats)
        )
        joined, t_joined = timed(
            lambda: execute_planned(
                rewritten.query, db, params=PARAMS, stats=joined_stats
            )
        )
        assert nested.same_rows(joined)
        assert nested_stats.subquery_executions == suppliers
        assert joined_stats.subquery_executions == 0
        report.add_row(
            suppliers,
            nested_stats.subquery_executions,
            joined_stats.subquery_executions,
            t_nested,
            t_joined,
            speedup(t_nested, t_joined),
        )
    report.show()

    rewritten = optimize(QUERY, bench_db.catalog).query
    result = benchmark(
        lambda: execute_planned(rewritten, bench_db, params=PARAMS)
    )
    assert result.columns == ["SNO", "SNAME"]


def test_e3_nested_execution(benchmark, bench_db):
    result = benchmark(lambda: execute_planned(QUERY, bench_db, params=PARAMS))
    assert result.columns == ["SNO", "SNAME"]


def test_e3_flattened_execution(benchmark, bench_db):
    rewritten = optimize(QUERY, bench_db.catalog).query
    result = benchmark(lambda: execute_planned(rewritten, bench_db, params=PARAMS))
    assert result.columns == ["SNO", "SNAME"]
