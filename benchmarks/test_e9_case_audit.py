"""E10 — batch audit of template-generated DISTINCT queries (§5.1).

Claim (the paper's motivation): CASE tools and defensive practice put
DISTINCT on queries wholesale; an optimizer running Algorithm 1 can
prove a substantial fraction redundant.  We generate a templated
workload over the supplier schema and report the detection rate and
analysis throughput.
"""

import random

from repro.bench import ExperimentReport, timed
from repro.core import test_uniqueness
from repro.sql import to_sql
from repro.workloads import GeneratorConfig, random_query


TEMPLATES = [
    # key-preserving joins (provably redundant)
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = :C",
    "SELECT DISTINCT S.SNO, SNAME, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE P.SNO = :N AND S.SNO = P.SNO",
    "SELECT DISTINCT SNO, SNAME, SCITY FROM SUPPLIER",
    "SELECT DISTINCT A.ANO, A.ANAME, S.SNO FROM AGENTS A, SUPPLIER S "
    "WHERE A.SNO = S.SNO",
    "SELECT DISTINCT P.OEM-PNO, P.PNAME FROM PARTS P WHERE P.SNO = :N",
    # projection drops a key (duplicate elimination required)
    "SELECT DISTINCT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO",
    "SELECT DISTINCT SCITY FROM SUPPLIER",
    "SELECT DISTINCT P.COLOR, S.SCITY FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO",
    "SELECT DISTINCT A.ACITY FROM AGENTS A WHERE A.SNO = :N",
    "SELECT DISTINCT P.PNAME FROM PARTS P WHERE P.COLOR = :C",
]


def test_e10_template_audit(benchmark, bench_db):
    redundant = []
    required = []
    _, elapsed = timed(
        lambda: [
            (
                redundant if test_uniqueness(sql, bench_db.catalog).unique
                else required
            ).append(sql)
            for sql in TEMPLATES
        ]
    )
    report = ExperimentReport(
        experiment="E10: CASE-tool workload audit",
        claim="a substantial fraction of defensive DISTINCTs is provably "
        "redundant",
        columns=["verdict", "queries", "fraction"],
    )
    total = len(TEMPLATES)
    report.add_row("DISTINCT removable", len(redundant), len(redundant) / total)
    report.add_row("DISTINCT required", len(required), len(required) / total)
    report.note(f"analyzed {total} templates in {elapsed * 1000:.2f} ms")
    report.show()

    assert len(redundant) == 5
    assert len(required) == 5

    verdicts = benchmark(
        lambda: [
            test_uniqueness(sql, bench_db.catalog).unique
            for sql in TEMPLATES
        ]
    )
    assert sum(verdicts) == 5


def test_e10_analysis_throughput(benchmark, bench_db):
    """Queries analyzed per second over a random workload mix."""
    rng = random.Random(42)
    config = GeneratorConfig(max_tables=2, max_columns=4)
    queries = [to_sql(random_query(rng, bench_db.catalog)) for _ in range(50)]

    def audit():
        return sum(
            1 for sql in queries if test_uniqueness(sql, bench_db.catalog).unique
        )

    detected = benchmark(audit)
    assert 0 <= detected <= len(queries)
