"""E5 — intersection to existential subquery (Theorem 3; Example 9).

Claim: the classic INTERSECT strategy materializes and sorts *both*
operands; when one operand is duplicate-free, the rewrite chain
(intersect -> EXISTS -> DISTINCT join) sorts only the final (small)
result.  We compare rows sorted and wall-clock time.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport, speedup, timed
from repro.workloads import SupplierScale, build_database, generate

QUERY = (
    "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
    "INTERSECT "
    "SELECT ALL A.SNO FROM AGENTS A "
    "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"
)


def test_e5_intersect_rewrite_chain(benchmark, bench_db):
    report = ExperimentReport(
        experiment="E5: INTERSECT -> EXISTS -> DISTINCT join (Example 9)",
        claim="the rewrite sorts only the final result instead of both operands (sort_rows column); wall-clock is scan-dominated on this engine, so time stays near parity",
        columns=[
            "suppliers", "sort_rows_setop", "sort_rows_rewritten",
            "t_setop(s)", "t_rewritten(s)", "speedup",
        ],
    )
    for suppliers in (100, 300, 600):
        db = build_database(
            generate(
                SupplierScale(
                    suppliers=suppliers,
                    parts_per_supplier=2,
                    agents_per_supplier=4,
                )
            )
        )
        rewritten = optimize(QUERY, db.catalog)
        rules = [step.rule for step in rewritten.steps]
        assert rules[0] == "intersect-to-exists"

        setop_stats, rewritten_stats = Stats(), Stats()
        setop, t_setop = timed(
            lambda: execute_planned(QUERY, db, stats=setop_stats)
        )
        converted, t_rewritten = timed(
            lambda: execute_planned(
                rewritten.query, db, stats=rewritten_stats
            )
        )
        assert setop.same_rows(converted)
        report.add_row(
            suppliers,
            setop_stats.sort_rows,
            rewritten_stats.sort_rows,
            t_setop,
            t_rewritten,
            speedup(t_setop, t_rewritten),
        )
    report.show()

    rewritten = optimize(QUERY, bench_db.catalog).query
    result = benchmark(lambda: execute_planned(rewritten, bench_db))
    assert not result.has_duplicates()


def test_e5_setop_execution(benchmark, bench_db):
    result = benchmark(lambda: execute_planned(QUERY, bench_db))
    assert not result.has_duplicates()


def test_e5_except_variant(benchmark, bench_db):
    """The EXCEPT analogue (the paper's omitted-for-space extension)."""
    except_query = (
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
        "EXCEPT "
        "SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'"
    )
    rewritten = optimize(except_query, bench_db.catalog)
    assert "except-to-not-exists" in [s.rule for s in rewritten.steps]
    original = execute_planned(except_query, bench_db)
    converted = benchmark(
        lambda: execute_planned(rewritten.query, bench_db)
    )
    assert original.same_rows(converted)
