"""A1/A2/A3 — ablations of the design choices DESIGN.md calls out.

* **A1** — Algorithm 1 variants: the paper's disjunction handling vs the
  conservative (Ceri–Widom) variant, the verbatim `paper_strict` empty-
  condition rule, and the IS NULL binding extension.  Measured as
  detection counts over a fixed query battery.
* **A2** — DISTINCT via sort vs hash in the engine.
* **A3** — join strategy (hash / merge / nested) on the flattened
  Example 7 join.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport, timed
from repro.core import UniquenessOptions, test_uniqueness
from repro.engine import PlannerOptions


A1_BATTERY = [
    # (sql, which variants detect it)
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO",
    "SELECT DISTINCT SNO FROM SUPPLIER",  # needs empty-condition handling
    "SELECT DISTINCT S.SNO FROM SUPPLIER S "
    "WHERE S.SNAME = 'x' OR S.SCITY = 'y'",  # needs paper disjunctions
    "SELECT DISTINCT P.PNAME FROM PARTS P "
    "WHERE P.OEM-PNO IS NULL",  # needs the IS NULL extension
    "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
    "WHERE P.SNO = :N AND S.SNO = P.SNO",
    "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE S.SNO IN (5, 10)",
    # never detectable (truly duplicate-prone)
    "SELECT DISTINCT SCITY FROM SUPPLIER",
]

VARIANTS = {
    "paper (default)": UniquenessOptions(),
    "paper_strict": UniquenessOptions(paper_strict=True),
    "conservative": UniquenessOptions(disjunction_handling="conservative"),
    "with IS NULL ext": UniquenessOptions(treat_is_null_as_binding=True),
}


def test_a1_algorithm_variants(benchmark, bench_db):
    report = ExperimentReport(
        experiment="A1: Algorithm 1 variant detection rates",
        claim="the paper's variant detects more than Ceri-Widom's; the "
        "verbatim line-10 rule misses predicate-free queries; the IS "
        "NULL extension adds detections",
        columns=["variant", "detected", f"of {len(A1_BATTERY)}"],
    )
    detections = {}
    for name, options in VARIANTS.items():
        count = sum(
            1
            for sql in A1_BATTERY
            if test_uniqueness(sql, bench_db.catalog, options).unique
        )
        detections[name] = count
        report.add_row(name, count, len(A1_BATTERY))
    report.show()

    assert detections["paper (default)"] > detections["paper_strict"]
    assert detections["with IS NULL ext"] > detections["paper (default)"]
    assert detections["conservative"] <= detections["paper (default)"]

    count = benchmark(
        lambda: sum(
            1
            for sql in A1_BATTERY
            if test_uniqueness(sql, bench_db.catalog).unique
        )
    )
    assert count == detections["paper (default)"]


A2_QUERY = (
    "SELECT DISTINCT S.SCITY, P.COLOR FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO"
)


def test_a2_distinct_sort_vs_hash(benchmark, bench_db):
    report = ExperimentReport(
        experiment="A2: DISTINCT via sort vs hash",
        claim="hash dedup streams without sorting; both agree",
        columns=["method", "t(s)", "sort_rows", "hash_builds"],
    )
    results = {}
    for method in ("sort", "hash"):
        stats = Stats()
        result, elapsed = timed(
            lambda: execute_planned(
                A2_QUERY,
                bench_db,
                stats=stats,
                options=PlannerOptions(distinct_method=method),
            )
        )
        results[method] = result
        report.add_row(method, elapsed, stats.sort_rows, stats.hash_builds)
    report.show()
    assert results["sort"].same_rows(results["hash"])

    result = benchmark(
        lambda: execute_planned(
            A2_QUERY, bench_db, options=PlannerOptions(distinct_method="hash")
        )
    )
    assert not result.has_duplicates()


def test_a2_sort_distinct(benchmark, bench_db):
    result = benchmark(
        lambda: execute_planned(
            A2_QUERY, bench_db, options=PlannerOptions(distinct_method="sort")
        )
    )
    assert not result.has_duplicates()


def test_a2_hash_distinct(benchmark, bench_db):
    result = benchmark(
        lambda: execute_planned(
            A2_QUERY, bench_db, options=PlannerOptions(distinct_method="hash")
        )
    )
    assert not result.has_duplicates()


A3_QUERY = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS (SELECT * FROM PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"
)
A3_PARAMS = {"PART-NO": 3}


def test_a3_join_strategies(benchmark, bench_db):
    flattened = optimize(A3_QUERY, bench_db.catalog).query
    report = ExperimentReport(
        experiment="A3: join strategy for the flattened Example 7",
        claim="hash/merge joins beat the nested-loop product; all agree",
        columns=["strategy", "t(s)", "rows_joined"],
    )
    results = {}
    for method in ("hash", "merge", "nested"):
        stats = Stats()
        result, elapsed = timed(
            lambda: execute_planned(
                flattened,
                bench_db,
                params=A3_PARAMS,
                stats=stats,
                options=PlannerOptions(join_method=method),
            )
        )
        results[method] = result
        report.add_row(method, elapsed, stats.rows_joined)
    report.show()
    assert results["hash"].same_rows(results["merge"])
    assert results["hash"].same_rows(results["nested"])

    result = benchmark(
        lambda: execute_planned(
            flattened,
            bench_db,
            params=A3_PARAMS,
            options=PlannerOptions(join_method="hash"),
        )
    )
    assert len(result) > 0
