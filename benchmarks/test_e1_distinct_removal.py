"""E1 — unnecessary duplicate elimination (§5.1; Examples 1, 4, 6).

Claim: when Theorem 1 holds, dropping DISTINCT skips the result sort
entirely.  We execute Example 1's query with and without the rewrite at
several scales (hash-join physical plans) and report time, rows sorted,
and speedup.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport, speedup, timed
from repro.workloads import SupplierScale, build_database, generate

QUERY = (
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


def test_e1_sort_avoided_across_scales(benchmark, bench_db):
    report = ExperimentReport(
        experiment="E1: redundant DISTINCT removal (Example 1)",
        claim="rewrite removes the result sort; results identical",
        columns=[
            "suppliers", "rows_out", "t_distinct(s)", "t_rewritten(s)",
            "sort_rows_saved", "speedup",
        ],
    )
    for suppliers in (100, 300, 600):
        db = build_database(
            generate(SupplierScale(suppliers=suppliers, parts_per_supplier=30))
        )
        rewritten = optimize(QUERY, db.catalog)
        assert not rewritten.query.distinct

        stats_before, stats_after = Stats(), Stats()
        before, t_before = timed(
            lambda: execute_planned(QUERY, db, stats=stats_before)
        )
        after, t_after = timed(
            lambda: execute_planned(rewritten.query, db, stats=stats_after)
        )
        assert before.same_rows(after)
        assert stats_after.sorts == 0 and stats_before.sorts == 1
        report.record_stats(f"distinct_{suppliers}", stats_before)
        report.record_stats(f"rewritten_{suppliers}", stats_after)
        report.add_row(
            suppliers,
            len(after),
            t_before,
            t_after,
            stats_before.sort_rows,
            speedup(t_before, t_after),
        )
    report.show()

    # pytest-benchmark datapoint: rewritten execution at the bench scale.
    rewritten = optimize(QUERY, bench_db.catalog).query
    result = benchmark(lambda: execute_planned(rewritten, bench_db))
    assert len(result) > 0


def test_e1_original_execution(benchmark, bench_db):
    result = benchmark(lambda: execute_planned(QUERY, bench_db))
    assert len(result) > 0


def test_e1_analysis_overhead(benchmark, bench_db):
    """Algorithm 1 itself must be cheap relative to execution."""
    outcome = benchmark(lambda: optimize(QUERY, bench_db.catalog))
    assert outcome.changed
