"""E4 — subquery to DISTINCT join (Corollary 1; Example 8).

Claim: even when the inner block can match many tuples, a duplicate-free
outer block lets the optimizer flatten to a DISTINCT join — trading the
per-row subquery re-execution for one hash join plus one (small) sort.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport, speedup, timed
from repro.workloads import SupplierScale, build_database, generate

QUERY = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS (SELECT * FROM PARTS P "
    "WHERE P.SNO = S.SNO AND P.COLOR = 'RED')"
)


def test_e4_corollary1_flattening(benchmark, bench_db):
    report = ExperimentReport(
        experiment="E4: subquery -> DISTINCT join (Corollary 1, Example 8)",
        claim="flattening is valid because the outer block is duplicate-"
        "free; quantifier becomes DISTINCT",
        columns=[
            "suppliers", "subq_execs_before", "t_nested(s)",
            "t_distinct_join(s)", "speedup",
        ],
    )
    for suppliers in (50, 100, 200):
        db = build_database(
            generate(SupplierScale(suppliers=suppliers, parts_per_supplier=20))
        )
        rewritten = optimize(QUERY, db.catalog)
        assert rewritten.query.distinct

        nested_stats, joined_stats = Stats(), Stats()
        nested, t_nested = timed(
            lambda: execute_planned(QUERY, db, stats=nested_stats)
        )
        joined, t_joined = timed(
            lambda: execute_planned(rewritten.query, db, stats=joined_stats)
        )
        assert nested.same_rows(joined)
        assert nested_stats.subquery_executions == suppliers
        assert joined_stats.subquery_executions == 0
        report.add_row(
            suppliers,
            nested_stats.subquery_executions,
            t_nested,
            t_joined,
            speedup(t_nested, t_joined),
        )
    report.show()

    # benchmark only the rewritten plan; the naive baseline is measured
    # once above (it is the slow thing the rewrite exists to avoid).
    rewritten = optimize(QUERY, bench_db.catalog).query
    result = benchmark(lambda: execute_planned(rewritten, bench_db))
    assert len(result) > 0
