"""E6/E7 — join-to-subquery in the IMS gateway (§6.1; Example 10).

Claims:

* **E6** — for a key-qualified child probe, the join strategy issues
  exactly 2x the GNP calls of the nested (EXISTS) strategy: the second
  GNP per parent always returns 'GE'.
* **E7** — for a *non-key* qualification (the paper's OEM-PNO remark)
  the join strategy must scan every remaining twin, so the saving grows
  with the number of parts per supplier.
"""

import pytest

from repro.bench import ExperimentReport
from repro.core import Optimizer
from repro.ims import GatewayStats, ImsGateway
from repro.workloads import SupplierScale, build_ims_database, generate

JOIN_SQL = (
    "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
)
PARAMS = {"PARTNO": 3}


def run(gateway, sql, params=PARAMS):
    stats = GatewayStats()
    result = gateway.execute(sql, params=params, stats=stats)
    return result, stats


def test_e6_gnp_calls_halved(benchmark, bench_ims, bench_data):
    gateway = ImsGateway(bench_ims)
    optimizer = Optimizer.for_navigational(gateway.catalog())
    rewritten = optimizer.optimize(JOIN_SQL)
    assert [s.rule for s in rewritten.steps] == ["join-to-subquery"]

    join_result, join_stats = run(gateway, JOIN_SQL)
    exists_result, exists_stats = run(gateway, rewritten.sql)
    assert join_result.same_rows(exists_result)

    suppliers = bench_data.scale.suppliers
    report = ExperimentReport(
        experiment="E6: IMS join vs nested probe (Example 10)",
        claim="nested form halves DL/I calls against PARTS",
        columns=["strategy", "GNP PARTS", "GU+GN SUPPLIER", "rows"],
    )
    report.add_row(
        "join (lines 21-29)",
        join_stats.dli.calls_to("PARTS", "GNP"),
        join_stats.dli.calls_to("SUPPLIER"),
        len(join_result),
    )
    report.add_row(
        "nested (lines 30-35)",
        exists_stats.dli.calls_to("PARTS", "GNP"),
        exists_stats.dli.calls_to("SUPPLIER"),
        len(exists_result),
    )
    report.show()

    assert join_stats.dli.calls_to("PARTS", "GNP") == 2 * suppliers
    assert exists_stats.dli.calls_to("PARTS", "GNP") == suppliers

    result = benchmark(lambda: gateway.execute(rewritten.sql, params=PARAMS))
    assert len(result) == len(exists_result)


def test_e7_nonkey_qualification_saves_segment_scans(benchmark, bench_ims, bench_data):
    """COLOR is not the twin sequence field (the paper makes the point
    with OEM-PNO): a qualified GNP cannot halt on key order, so the join
    strategy scans every remaining twin per parent while the nested
    strategy stops at the first match.  DISTINCT keeps the two query
    forms equivalent (a supplier may own several red parts)."""
    gateway = ImsGateway(bench_ims)
    join_sql = (
        "SELECT DISTINCT S.* FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.COLOR = :COLOR"
    )
    exists_sql = (
        "SELECT DISTINCT S.* FROM SUPPLIER S WHERE EXISTS "
        "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.COLOR = :COLOR)"
    )
    params = {"COLOR": "RED"}
    join_result, join_stats = run(gateway, join_sql, params)
    exists_result, exists_stats = run(gateway, exists_sql, params)
    assert join_result.same_rows(exists_result)

    report = ExperimentReport(
        experiment="E7: non-key join qualification (OEM-PNO remark)",
        claim="nested form halts the twin scan at the first match",
        columns=["strategy", "PARTS segments examined", "GNP PARTS"],
    )
    report.add_row(
        "join",
        join_stats.dli.segments_examined["PARTS"],
        join_stats.dli.calls_to("PARTS", "GNP"),
    )
    report.add_row(
        "nested",
        exists_stats.dli.segments_examined["PARTS"],
        exists_stats.dli.calls_to("PARTS", "GNP"),
    )
    report.show()

    assert (
        exists_stats.dli.segments_examined["PARTS"]
        < join_stats.dli.segments_examined["PARTS"]
    )

    result = benchmark(lambda: gateway.execute(exists_sql, params=params))
    assert len(result) == len(exists_result)


def test_e6_join_strategy(benchmark, bench_ims):
    gateway = ImsGateway(bench_ims)
    result = benchmark(lambda: gateway.execute(JOIN_SQL, params=PARAMS))
    assert len(result) > 0


def test_e6_nested_strategy(benchmark, bench_ims):
    gateway = ImsGateway(bench_ims)
    nested_sql = (
        "SELECT ALL S.* FROM SUPPLIER S WHERE EXISTS "
        "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO)"
    )
    result = benchmark(lambda: gateway.execute(nested_sql, params=PARAMS))
    assert len(result) > 0
