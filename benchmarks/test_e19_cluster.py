"""E19 — the sharded cluster: process scaling and Theorem 1 routing.

Two claims about :mod:`repro.cluster` on one box:

* **E19a** — worker *processes* scale throughput past the GIL.  A
  fan-out-1 mixed workload (key-bound point lookups plus forward-routed
  self-joins, stalled at the plan-cache site inside every worker to
  model per-query I/O waits) is replayed through the front end from
  concurrent HTTP clients; a 4-shard cluster clears >= 2.5x the
  1-shard cluster's qps, identical rows at every shard count.
* **E19b** — the Theorem 1 fast path has fan-out exactly 1: a
  key-bound point workload increments
  ``cluster_single_shard_routes_total`` once per request and makes
  exactly one worker hop per request (scatter would make N).

Scatter-gather byte-identity (E1–E11) is pinned by the cluster test
suite; this benchmark pins the *performance* contract.  Results land
in ``BENCH_e19.json``.
"""

from __future__ import annotations

import threading
import urllib.request

import repro
from repro.bench import ExperimentReport, speedup, timed
from repro.cluster import WorkerConfig, WorkerSource, serve_cluster

#: Per-query stall (seconds) armed INSIDE each worker process at the
#: plan-cache site: the single-core CI box cannot show real CPU
#: parallelism, so — exactly as E15/E16 do for threads — the benchmark
#: measures overlap of per-query waits, which is the same scheduling
#: claim processes make on a many-core box.
STALL = 0.05

#: Concurrent client connections driving the front end.
CLIENT_THREADS = 8

#: Workers rebuild this replica in every shard process.
FACTORY = "repro.workloads.supplier:build_database"

WORKER_CONFIG = WorkerConfig(
    threads=2,
    queue_depth=64,
    faults=(
        {"site": "plan_cache", "kind": "slow", "delay": STALL},
    ),
)


def _mixed_workload() -> list[tuple[str, dict | None]]:
    """48 fan-out-1 statements: 36 key-bound point lookups (24 literal,
    12 host-var) and 12 forward-routed self-joins.  Every statement
    routes to exactly one shard, so shard processes can overlap."""
    items: list[tuple[str, dict | None]] = []
    for sno in range(1, 25):
        items.append(
            (f"SELECT SNAME FROM SUPPLIER WHERE SNO = {sno}", None)
        )
    for sno in range(25, 37):
        items.append(
            ("SELECT SNAME FROM SUPPLIER WHERE SNO = :SNO", {"SNO": sno})
        )
    for sno in range(1, 13):
        items.append(
            (
                "SELECT S1.SNAME FROM SUPPLIER S1, SUPPLIER S2 "
                f"WHERE S1.SNO = S2.SNO AND S1.SNO = {sno}",
                None,
            )
        )
    return items


def _drive(url: str, items: list[tuple[str, dict | None]]) -> list:
    """Replay the workload from :data:`CLIENT_THREADS` concurrent
    connections; returns row lists indexed by statement."""
    results: list = [None] * len(items)
    errors: list[BaseException] = []
    hand_out = threading.Lock()
    remaining = iter(range(len(items)))

    def worker() -> None:
        with repro.connect(url) as conn:
            while True:
                with hand_out:
                    index = next(remaining, None)
                if index is None:
                    return
                sql, params = items[index]
                try:
                    results[index] = conn.execute(sql, params).fetchall()
                except BaseException as error:  # noqa: BLE001 — reraised
                    errors.append(error)
                    return

    threads = [
        threading.Thread(target=worker, name=f"e19-client-{i}")
        for i in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


def _metric(text: str, name: str, labels: str = "") -> float:
    needle = f"repro_{name}{labels}"
    for line in text.splitlines():
        if line.startswith(needle + " "):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


def _metrics_text(url: str) -> str:
    with urllib.request.urlopen(url + "/metrics", timeout=10.0) as response:
        return response.read().decode("utf-8")


def test_e19_cluster_throughput_scales_with_shards():
    """E19a: >= 2.5x wire qps with 4 shard processes over 1."""
    items = _mixed_workload()
    source = WorkerSource.from_factory(FACTORY)

    # Warm phase: a stall-free single shard captures the expected row
    # sequences over the same wire path.
    with serve_cluster(
        source, shards=1, config=WorkerConfig(threads=2)
    ) as frontend:
        expected = _drive(frontend.url, items)

    # Best of two runs per shard count (shared CI box; the claim is
    # about achievable overlap, not the noisiest run).
    timings: dict[int, float] = {}
    for shards in (1, 2, 4):
        best = None
        for _ in range(2):
            with serve_cluster(
                source, shards=shards, config=WORKER_CONFIG
            ) as frontend:
                rows, elapsed = timed(
                    lambda f=frontend: _drive(f.url, items)
                )
            assert rows == expected, f"{shards}-shard run diverged"
            best = elapsed if best is None else min(best, elapsed)
        timings[shards] = best

    report = ExperimentReport(
        experiment="E19a: fan-out-1 mixed workload over the cluster",
        claim="shard processes overlap per-query waits: cluster qps "
        "scales near-linearly with worker processes",
        columns=["mode", "statements", "t(s)", "qps", "speedup"],
        slug="e19",
    )
    n = len(items)
    for shards in (1, 2, 4):
        elapsed = timings[shards]
        report.add_row(
            f"cluster x{shards}",
            n,
            elapsed,
            n / elapsed,
            speedup(timings[1], elapsed),
        )
    report.note(
        f"{STALL * 1000:.0f}ms simulated I/O stall per statement inside "
        f"every worker process; {CLIENT_THREADS} concurrent client "
        "connections; identical rows at every shard count"
    )
    report.show()

    ratio = speedup(timings[1], timings[4])
    assert ratio >= 2.5, f"4-shard cluster only {ratio:.2f}x the 1-shard"


def test_e19_point_queries_fan_out_to_one_shard():
    """E19b: a key-bound workload routes every request to exactly one
    shard — single-shard-route count == requests, worker hops ==
    requests (scatter would make 4x the hops)."""
    source = WorkerSource.from_factory(FACTORY)
    shards = 4
    requests = 32
    with serve_cluster(
        source, shards=shards, config=WorkerConfig(threads=2)
    ) as frontend:
        before = _metrics_text(frontend.url)
        with repro.connect(frontend.url) as conn:
            for sno in range(1, requests + 1):
                conn.execute(
                    "SELECT SNAME FROM SUPPLIER WHERE SNO = :SNO",
                    {"SNO": sno},
                )
        after = _metrics_text(frontend.url)

    point_routes = _metric(
        after, "cluster_single_shard_routes_total"
    ) - _metric(before, "cluster_single_shard_routes_total")
    hops = sum(
        _metric(after, "cluster_shard_requests_total", '{shard="%d"}' % s)
        - _metric(before, "cluster_shard_requests_total", '{shard="%d"}' % s)
        for s in range(shards)
    )
    report = ExperimentReport(
        experiment="E19b: Theorem 1 key-bound routing",
        claim="a candidate key fully bound by constants routes to "
        "exactly one shard: fan-out 1, no scatter",
        columns=["workload", "requests", "point routes", "worker hops"],
        slug="e19",
    )
    report.add_row("key-bound lookups", requests, int(point_routes), int(hops))
    report.note(
        f"{shards}-shard cluster; scatter-gather would have made "
        f"{requests * shards} hops"
    )
    report.show()

    assert point_routes == requests
    assert hops == requests
