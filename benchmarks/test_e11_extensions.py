"""E11 — the paper's §8 future-work items, implemented as extensions.

* **Join elimination via inclusion dependencies** (King's notion): a
  foreign-key join whose joined table is never projected or filtered is
  removed outright — cheaper than both the join and the EXISTS fold.
* **True-interpreted CHECK predicates**: equality CHECK constraints on
  NOT NULL columns feed Algorithm 1 as extra bindings, detecting
  redundant DISTINCTs the base algorithm misses.
"""

from repro import Stats, execute_planned
from repro.bench import ExperimentReport, speedup, timed
from repro.catalog import Catalog
from repro.core import Optimizer, UniquenessOptions, test_uniqueness


JOIN_QUERY = (
    "SELECT P.PNO, P.SNO, P.COLOR FROM PARTS P, SUPPLIER S "
    "WHERE P.SNO = S.SNO"
)


def test_e11_join_elimination(benchmark, bench_db):
    optimizer = Optimizer.for_relational(bench_db.catalog)
    outcome = optimizer.optimize(JOIN_QUERY)
    assert [step.rule for step in outcome.steps] == ["join-elimination"]
    assert len(outcome.query.tables) == 1

    with_join_stats, without_stats = Stats(), Stats()
    with_join, t_join = timed(
        lambda: execute_planned(JOIN_QUERY, bench_db, stats=with_join_stats)
    )
    without, t_eliminated = timed(
        lambda: execute_planned(outcome.query, bench_db, stats=without_stats)
    )
    assert with_join.same_rows(without)

    report = ExperimentReport(
        experiment="E11a: join elimination (King; paper §8)",
        claim="a foreign-key join with an invisible target is removed; "
        "all work against SUPPLIER disappears",
        columns=["variant", "t(s)", "rows_scanned", "rows_joined"],
    )
    report.add_row(
        "with join", t_join,
        with_join_stats.rows_scanned, with_join_stats.rows_joined,
    )
    report.add_row(
        "eliminated", t_eliminated,
        without_stats.rows_scanned, without_stats.rows_joined,
    )
    report.note(f"speedup {speedup(t_join, t_eliminated):.2f}x")
    report.show()

    assert without_stats.rows_joined == 0
    assert without_stats.rows_scanned < with_join_stats.rows_scanned

    result = benchmark(lambda: execute_planned(outcome.query, bench_db))
    assert len(result) == len(with_join)


CONSTRAINED_DDL = """
CREATE TABLE ORDERS (
  OID INT, REGION VARCHAR(10) NOT NULL, AMOUNT INT,
  PRIMARY KEY (OID),
  CHECK (REGION = 'EU'));
CREATE TABLE HQ (
  REGION VARCHAR(10) NOT NULL, CITY VARCHAR(20),
  PRIMARY KEY (REGION));
"""

CONSTRAINED_SQL = (
    "SELECT DISTINCT O.OID, H.CITY FROM ORDERS O, HQ H "
    "WHERE O.REGION = H.REGION"
)


def test_e11_check_constraint_detection(benchmark):
    catalog = Catalog.from_ddl(CONSTRAINED_DDL)
    base = test_uniqueness(CONSTRAINED_SQL, catalog)
    extended = test_uniqueness(
        CONSTRAINED_SQL,
        catalog,
        UniquenessOptions(use_check_constraints=True),
    )
    report = ExperimentReport(
        experiment="E11b: true-interpreted CHECK predicates (paper §8)",
        claim="an equality CHECK on a NOT NULL column binds the key of "
        "the joined table; the base algorithm misses it",
        columns=["variant", "verdict"],
    )
    report.add_row("Algorithm 1 (paper)", "NO" if not base.unique else "YES")
    report.add_row(
        "with CHECK exploitation", "YES" if extended.unique else "NO"
    )
    report.show()
    assert not base.unique and extended.unique

    verdict = benchmark(
        lambda: test_uniqueness(
            CONSTRAINED_SQL,
            catalog,
            UniquenessOptions(use_check_constraints=True),
        )
    )
    assert verdict.unique


def test_e11_cost_based_selection(benchmark, bench_db):
    """Strategy selection overhead: pricing every rewrite stage must stay
    in the sub-millisecond regime (it is pure estimation, no execution)."""
    from repro.core import StrategySelector

    selector = StrategySelector(bench_db)
    sql = (
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
        "INTERSECT SELECT ALL A.SNO FROM AGENTS A "
        "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"
    )
    choice = benchmark(lambda: selector.choose(sql))
    # the full chain's DISTINCT join must win over the set operation
    assert "INTERSECT" not in choice.sql
    assert len(choice.candidates) == 3
