"""E17 — vectorized columnar execution vs the tuple interpreter.

The columnar engine (:mod:`repro.engine.columnar`) executes plans as
morsel-sized column batches: predicates become byte-lane mask kernels,
projection becomes column slicing, and DISTINCT/joins work over
canonical key vectors.  This module pins the claimed warm-path win —
selection-dominated scans run an order of magnitude faster than the
row-at-a-time interpreter — and reports where the gain shrinks (probe
loops and distinct folds keep per-row Python work).

Every table lands in ``BENCH_e17.json``.  The baseline is the *pure*
tuple interpreter (predicate compilation off), the same reference the
verified fallback demotes to; a second row shows the compiled tuple
path so the columnar gain is not conflated with closure compilation.
"""

import gc

from repro.bench import ExperimentReport, speedup, timed

# The home-module import skips the deprecation shim: per-call warning
# machinery is real overhead at millisecond timescales under pytest's
# record-everything warning filter.
from repro.engine import (
    DEFAULT_BATCH_ROWS,
    PlanCache,
    execute_planned,
    set_compilation_enabled,
)
from repro.engine.stats import Stats
from repro.sql.parser import parse_query
from repro.workloads import SupplierScale, build_database, generate

# Selection-dominated scan: the E12d predicate shape over a predicate
# that actually passes rows (PNO is per-supplier, 1..parts_per_supplier).
SELECTION_SQL = (
    "SELECT P.PNO, P.PNAME FROM PARTS P "
    "WHERE P.COLOR = :C AND P.PNO > 5 AND P.PNAME <> 'NONE'"
)
SELECTION_PARAMS = {"C": "RED"}

JOIN_SQL = (
    "SELECT S.SNAME, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)
DISTINCT_SQL = (
    "SELECT DISTINCT S.SNAME, P.COLOR FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO > :N"
)
DISTINCT_PARAMS = {"N": 10}

ROUNDS = 10


def _bench(sql, db, params, engine_mode, cache, batch_rows=None, stats=None):
    """Warm-path timing: prime once (plan cache, lazy columnar
    projections, hash indexes), then average ROUNDS executions.  The
    query is parsed once up front — parse time is mode-independent
    constant overhead, not part of the execution paths under test.
    Timing runs with the cyclic GC paused: the interpreted baselines
    allocate enough to trigger collections during later (millisecond)
    vectorized measurements, which would skew the ratio run-order
    dependently."""
    query = parse_query(sql) if isinstance(sql, str) else sql

    def run():
        return execute_planned(
            query,
            db,
            params=params,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
            plan_cache=cache,
            stats=stats,
        )

    run()  # prime caches; the steady state is what batch workloads see
    gc.collect()
    gc.disable()
    try:
        result, elapsed = timed(lambda: [run() for _ in range(ROUNDS)])
    finally:
        gc.enable()
    return result[-1], elapsed / ROUNDS


def test_e17_selection_scan_vectorized(benchmark, bench_db):
    """The headline claim: >=10x on the warm selection path."""
    cache = PlanCache()
    interp_stats, vec_stats = Stats(), Stats()

    previous = set_compilation_enabled(False)
    try:
        interp, t_interp = _bench(
            SELECTION_SQL, bench_db, SELECTION_PARAMS, "tuple", cache,
            stats=interp_stats,
        )
    finally:
        set_compilation_enabled(previous)
    compiled, t_compiled = _bench(
        SELECTION_SQL, bench_db, SELECTION_PARAMS, "tuple", cache
    )
    vectorized, t_vec = _bench(
        SELECTION_SQL, bench_db, SELECTION_PARAMS, "vectorized", cache,
        stats=vec_stats,
    )

    report = ExperimentReport(
        experiment="E17a: selection scan, tuple interpreter vs column kernels",
        claim="batch-compiled mask predicates remove per-row dispatch "
        "from the warm selection path",
        columns=["mode", "rows", "t(ms)", "speedup"],
        slug="e17",
    )
    ratio = speedup(t_interp, t_vec)
    report.add_row("tuple interpreter", len(interp.rows), t_interp * 1e3, 1.0)
    report.add_row(
        "tuple + compiled predicates",
        len(compiled.rows),
        t_compiled * 1e3,
        speedup(t_interp, t_compiled),
    )
    report.add_row("vectorized", len(vectorized.rows), t_vec * 1e3, ratio)
    report.note(
        f"batch size {DEFAULT_BATCH_ROWS}; baseline is the verified "
        "fallback path (compilation off)"
    )
    report.record_engine("vectorized", DEFAULT_BATCH_ROWS)
    report.record_stats("tuple", interp_stats)
    report.record_stats("vectorized", vec_stats)
    report.show()

    assert vectorized.rows == interp.rows == compiled.rows  # byte-identical
    assert len(vectorized.rows) > 0  # the predicate must actually select
    assert ratio >= 10.0, f"vectorized selection only {ratio:.1f}x faster"
    # Work accounting matches the interpreter; only the path counters
    # distinguish the modes.
    assert vec_stats.vectorized_batches > 0
    assert vec_stats.vectorized_fallbacks == 0

    result = benchmark(
        lambda: execute_planned(
            SELECTION_SQL,
            bench_db,
            params=SELECTION_PARAMS,
            engine_mode="vectorized",
            plan_cache=cache,
        )
    )
    assert result.rows == vectorized.rows


def test_e17_join_and_distinct_vectorized(benchmark, bench_db):
    """Joins and DISTINCT gain less — probe loops and distinct folds
    keep per-row Python work — but must never lose to the interpreter."""
    cache = PlanCache()
    report = ExperimentReport(
        experiment="E17b: hash join and DISTINCT under column batches",
        claim="vectorized build/probe and key-vector DISTINCT beat the "
        "interpreter, short of the pure-selection gain",
        columns=["query", "rows", "tuple t(ms)", "vectorized t(ms)", "speedup"],
        slug="e17",
    )
    report.record_engine("vectorized", DEFAULT_BATCH_ROWS)

    for label, sql, params in (
        ("join", JOIN_SQL, None),
        ("join+distinct", DISTINCT_SQL, DISTINCT_PARAMS),
    ):
        previous = set_compilation_enabled(False)
        try:
            interp, t_interp = _bench(sql, bench_db, params, "tuple", cache)
        finally:
            set_compilation_enabled(previous)
        vectorized, t_vec = _bench(sql, bench_db, params, "vectorized", cache)
        ratio = speedup(t_interp, t_vec)
        report.add_row(
            label, len(interp.rows), t_interp * 1e3, t_vec * 1e3, ratio
        )
        assert vectorized.rows == interp.rows  # sequence, not just multiset
        assert ratio >= 2.0, f"{label}: vectorized only {ratio:.1f}x faster"

    report.show()

    result = benchmark(
        lambda: execute_planned(
            JOIN_SQL, bench_db, engine_mode="vectorized", plan_cache=cache
        )
    )
    assert len(result.rows) > 0


def test_e17_batch_size_sweep(bench_db):
    """Morsel size is a plateau, not a cliff: the default batch size
    sits on the flat part of the curve."""
    cache = PlanCache()
    report = ExperimentReport(
        experiment="E17c: column batch size sweep (selection scan)",
        claim="throughput is stable across morsel sizes once batches "
        "amortize per-batch kernel setup",
        columns=["batch_rows", "batches", "rows", "t(ms)"],
        slug="e17",
    )
    report.record_engine("vectorized", DEFAULT_BATCH_ROWS)
    baseline_rows = None
    for batch_rows in (256, DEFAULT_BATCH_ROWS, 4096):
        stats = Stats()
        result, elapsed = _bench(
            SELECTION_SQL, bench_db, SELECTION_PARAMS, "vectorized", cache,
            batch_rows=batch_rows, stats=stats,
        )
        report.add_row(
            batch_rows,
            stats.vectorized_batches // (ROUNDS + 1),
            len(result.rows),
            elapsed * 1e3,
        )
        if baseline_rows is None:
            baseline_rows = result.rows
        assert result.rows == baseline_rows  # size never changes results
    report.note("times are per-execution averages on the warm path")
    report.show()
