"""E18 — the price and the payoff of the resilience layer.

Two claims about PR 7's machinery (deadlines, the admission controller,
the degradation ladder, the client breaker):

* **E18a — the healthy path is nearly free.**  Every query now pays
  for a deadline clamp, a ladder decision over four subsystems, and a
  post-execution attribution pass.  Replaying a hot statement mix
  through the same execution core with the machinery off vs fully on
  must show under 5% overhead — resilience that taxes the common case
  would never stay enabled.
* **E18b — shedding caps batch latency under a storm.**  With the
  single worker stalled behind simulated I/O, batch clients against an
  adaptive-shedding service see a bounded p99 (rejections are instant
  and typed) while the same traffic without shedding queues behind the
  stall for multiples of that.
* **E18c — the wire pays the same nothing.**  The E16-style concurrent
  wire drive with every request carrying ``X-Deadline-Ms`` and
  ``X-Priority`` (header parse, re-anchor, admission check, clamp, and
  the per-request deadline EWMA feed) stays within 5% of the same
  drive with no resilience headers at all.

Every table lands in ``BENCH_e18.json``.
"""

from __future__ import annotations

import threading
import time

import repro
from repro import QueryService
from repro.net.server import QueryServer
from repro.bench import ExperimentReport, speedup, timed
from repro.engine.plan_cache import PlanCache
from repro.engine.stats import Stats
from repro.errors import ReproError
from repro.options import ExecutionOptions
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.resilience.admission import SheddingPolicy
from repro.resilience.deadline import Deadline
from repro.resilience.health import HealthTracker
from repro.workloads import SupplierScale, build_database, generate

#: Hot-path statements: small answers, so per-query fixed costs (the
#: thing E18a measures) dominate over row processing.
HOT_STATEMENTS = [
    "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 7",
    "SELECT DISTINCT S.SCITY FROM SUPPLIER S",
    "SELECT P.PNO FROM PARTS P WHERE P.SNO = 3",
]
ROUNDS = 400

STALL = 0.05
STORM_REQUESTS = 24

E18A_SCALE = SupplierScale(suppliers=40, parts_per_supplier=5)


def _replay(db, cache, options, health):
    """One pass of the hot mix through the shared execution core."""
    from repro.api import run_with_options

    for _ in range(ROUNDS):
        for sql in HOT_STATEMENTS:
            run_with_options(
                sql,
                db,
                options=options,
                stats=Stats(),
                plan_cache=cache,
                health=health,
            )


def test_e18a_healthy_path_overhead_under_5_percent():
    from repro.api import run_with_options

    db = build_database(generate(E18A_SCALE))
    cache = PlanCache()

    bare = ExecutionOptions.create(timeout=30.0)
    armed = ExecutionOptions.create(
        timeout=30.0, deadline=Deadline.after(3600.0), priority="batch"
    )
    health = HealthTracker()

    # Warm plans and lazy indexes once, off the clock.
    _replay(db, cache, bare, None)

    def one(options, tracker):
        start = time.perf_counter()
        run_with_options(
            HOT_STATEMENTS[0],
            db,
            options=options,
            stats=Stats(),
            plan_cache=cache,
            health=tracker,
        )
        return time.perf_counter() - start

    # Statement-level ABBA pairing: each round times the same statement
    # bare and armed back to back (order alternating), so scheduler and
    # allocator drift lands on both sides equally — the only systematic
    # difference left is the machinery under measurement.  The verdict
    # is the MEDIAN of per-round paired overheads (a lucky round for
    # one mode cannot skew a paired ratio), with the collector parked
    # during rounds so its pauses don't land on either side.
    import gc

    rounds_bare, rounds_armed = [], []
    per_round = ROUNDS // 4
    gc_was_enabled = gc.isenabled()
    try:
        for round_index in range(9):
            gc.collect()
            gc.disable()
            sum_bare = sum_armed = 0.0
            if round_index % 2 == 0:
                for _ in range(per_round):
                    sum_bare += one(bare, None)
                    sum_armed += one(armed, health)
            else:
                for _ in range(per_round):
                    sum_armed += one(armed, health)
                    sum_bare += one(bare, None)
            gc.enable()
            rounds_bare.append(sum_bare)
            rounds_armed.append(sum_armed)
    finally:
        if gc_was_enabled:
            gc.enable()
    assert health.healthy()
    ratios = sorted(
        armed_sum / bare_sum
        for bare_sum, armed_sum in zip(rounds_bare, rounds_armed)
    )
    overhead = (ratios[len(ratios) // 2] - 1.0) * 100.0
    t_bare = sorted(rounds_bare)[len(rounds_bare) // 2]
    t_armed = t_bare * ratios[len(ratios) // 2]

    n = per_round
    report = ExperimentReport(
        experiment="E18a: hot statement mix, resilience machinery off vs on",
        claim="deadline clamp + ladder decision + attribution cost "
        "under 5% on the healthy path",
        columns=["mode", "statements", "t(s)", "per-stmt(us)", "overhead"],
        slug="e18",
    )
    report.add_row("machinery off", n, t_bare, t_bare / n * 1e6, "-")
    report.add_row(
        "machinery on", n, t_armed, t_armed / n * 1e6, f"{overhead:+.1f}%"
    )
    report.note(
        "per statement: one Deadline.clamp_timeout, one HealthTracker "
        "decision over four subsystems, one attribution pass; "
        "statement-level ABBA pairing, median paired overhead of 9 "
        "rounds, gc parked during rounds"
    )
    report.show()

    assert overhead < 5.0, f"healthy-path overhead {overhead:.1f}% >= 5%"


def _storm_latencies(db, shedding):
    """Batch-priority request latencies against a stalled 1-worker
    service under a sustained interactive backlog; returns sorted
    seconds (a rejection counts at its observed latency — the instant
    typed failure is the feature being measured)."""
    latencies = []
    batch = ExecutionOptions.create(priority="batch")
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=STALL):
        with QueryService(
            workers=1, queue_depth=128, shedding=shedding
        ) as service:
            session = service.session(db)
            # Build a backlog and let the controller watch a few
            # dequeues: observed waits climb one stall per position,
            # so by blocker #4 the estimate sits well past threshold.
            blockers = [
                service.submit(session, HOT_STATEMENTS[0]) for _ in range(8)
            ]
            blockers[3].result(30)
            for index in range(STORM_REQUESTS):
                # One interactive arrival per batch attempt keeps the
                # queue occupied for the whole storm, as a real mixed
                # workload would.
                service.submit(session, HOT_STATEMENTS[0])
                sql = HOT_STATEMENTS[index % len(HOT_STATEMENTS)]
                start = time.monotonic()
                try:
                    service.submit(session, sql, options=batch).result(60)
                except ReproError:
                    pass  # typed shed/overload: the fast path under storm
                latencies.append(time.monotonic() - start)
    latencies.sort()
    return latencies


def _p99(latencies):
    return latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]


def test_e18b_shedding_caps_batch_p99_under_storm():
    db = build_database(generate(E18A_SCALE))

    #: Aggressive controller: one observed wait moves the estimate.
    policy = SheddingPolicy(
        target_delay=0.2, batch_shed_at=0.5, wait_smoothing=1.0, min_queue=1
    )
    #: Control: a policy whose threshold can never trip (shed_at ~ 1,
    #: target far beyond any observable wait) — same code path, no sheds.
    unsheddable = SheddingPolicy(
        target_delay=1e6, batch_shed_at=1.0, wait_smoothing=1.0, min_queue=1
    )

    shed = _storm_latencies(db, policy)
    queued = _storm_latencies(db, unsheddable)

    report = ExperimentReport(
        experiment="E18b: batch traffic against a stalled worker, "
        "adaptive shedding vs none",
        claim="shedding converts unbounded queueing into instant typed "
        "rejections: batch p99 capped well below the queue-it-all run",
        columns=["mode", "requests", "p50(ms)", "p99(ms)", "p99 speedup"],
        slug="e18",
    )
    report.add_row(
        "queue everything",
        len(queued),
        queued[len(queued) // 2] * 1000,
        _p99(queued) * 1000,
        1.0,
    )
    report.add_row(
        "adaptive shedding",
        len(shed),
        shed[len(shed) // 2] * 1000,
        _p99(shed) * 1000,
        speedup(_p99(queued), _p99(shed)),
    )
    report.note(
        f"{STALL * 1000:.0f}ms stall per statement, 1 worker; a shed "
        "request returns in microseconds with a retryable typed error"
    )
    report.show()

    assert _p99(shed) < _p99(queued) / 2, (
        f"shedding p99 {_p99(shed):.3f}s not under half the "
        f"queue-everything p99 {_p99(queued):.3f}s"
    )


WIRE_REQUESTS = 240
WIRE_CLIENTS = 8


def _wire_drive(url, with_resilience):
    """Replay :data:`WIRE_REQUESTS` statements from concurrent
    connections, optionally attaching a deadline and priority to every
    request (the full per-request resilience path over the wire)."""
    errors = []
    hand_out = threading.Lock()
    remaining = iter(range(WIRE_REQUESTS))

    def worker():
        with repro.connect(url) as conn:
            while True:
                with hand_out:
                    index = next(remaining, None)
                if index is None:
                    return
                sql = HOT_STATEMENTS[index % len(HOT_STATEMENTS)]
                try:
                    if with_resilience:
                        conn.execute(
                            sql, deadline=30.0, priority="batch"
                        ).fetchall()
                    else:
                        conn.execute(sql).fetchall()
                except BaseException as error:  # noqa: BLE001 — reraised
                    errors.append(error)
                    return

    threads = [
        threading.Thread(target=worker, name=f"e18-client-{i}")
        for i in range(WIRE_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_e18c_wire_overhead_under_5_percent():
    """E18c: the E16-style drive with full resilience headers on every
    request stays within 5% of the bare drive."""
    db = build_database(generate(E18A_SCALE))
    with QueryServer(db, workers=2) as server:
        _wire_drive(server.url, False)  # warm plans, indexes, sessions

        times_bare, times_armed = [], []
        for _ in range(3):
            times_bare.append(
                timed(lambda: _wire_drive(server.url, False))[1]
            )
            times_armed.append(
                timed(lambda: _wire_drive(server.url, True))[1]
            )
    t_bare = min(times_bare)
    t_armed = min(times_armed)

    overhead = (t_armed - t_bare) / t_bare * 100.0
    report = ExperimentReport(
        experiment="E18c: concurrent wire drive, resilience headers "
        "off vs on every request",
        claim="X-Deadline-Ms + X-Priority parse, re-anchor, admission "
        "check, and clamp cost under 5% of E16-style wire throughput",
        columns=["mode", "requests", "t(s)", "qps", "overhead"],
        slug="e18",
    )
    report.add_row(
        "bare requests", WIRE_REQUESTS, t_bare, WIRE_REQUESTS / t_bare, "-"
    )
    report.add_row(
        "deadline+priority",
        WIRE_REQUESTS,
        t_armed,
        WIRE_REQUESTS / t_armed,
        f"{overhead:+.1f}%",
    )
    report.note(
        f"{WIRE_CLIENTS} concurrent connections, 2 service workers; "
        "best of 3 interleaved drives per mode"
    )
    report.show()

    assert overhead < 5.0, f"wire resilience overhead {overhead:.1f}% >= 5%"
