"""E16 — the HTTP front end: wire throughput and remote optimization.

Two claims about :mod:`repro.net` riding on one server process:

* **E16a** — the HTTP layer adds no serialization of its own.  The E15
  mixed workload (stalled at the plan-cache site to model per-query
  I/O waits) is replayed over the wire from concurrent client
  connections; a 4-worker server clears >= 2x the 1-worker server's
  throughput, byte-identical rows.
* **E16b** — the optimizer matters end to end, not just in
  microbenchmarks: the E3 correlated-EXISTS probe shipped with
  ``optimize=False`` re-executes its subquery once per outer row on the
  server, and the wall-clock gap plus the wire-reported work counters
  both show it.

Every table lands in ``BENCH_e16.json``.
"""

from __future__ import annotations

import threading

import repro
from repro.bench import ExperimentReport, speedup, timed
from repro.engine.plan_cache import PlanCache
from repro.net.server import QueryServer
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.workloads import SupplierScale, build_database, generate

from test_e15_service import SERVICE_SCALE, STALL, _mixed_workload

#: Concurrent client connections driving the server: enough to keep
#: every worker fed at the highest worker count under test.
CLIENT_THREADS = 8

#: E3's correlated-EXISTS probe (Example 7 without the outer filter):
#: unoptimized it re-executes the subquery once per supplier.
NESTED_QUERY = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS "
    "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"
)
NESTED_PARAMS = {"PART-NO": 3}
NESTED_ROUNDS = 3


def _drive(url: str, items: list[tuple[str, dict]]) -> list:
    """Replay the workload over the wire from :data:`CLIENT_THREADS`
    concurrent connections; returns row lists indexed by statement."""
    results: list = [None] * len(items)
    errors: list[BaseException] = []
    hand_out = threading.Lock()
    remaining = iter(range(len(items)))

    def worker() -> None:
        with repro.connect(url) as conn:
            while True:
                with hand_out:
                    index = next(remaining, None)
                if index is None:
                    return
                sql, params = items[index]
                try:
                    results[index] = conn.execute(sql, params or None).fetchall()
                except BaseException as error:  # noqa: BLE001 — reraised
                    errors.append(error)
                    return

    threads = [
        threading.Thread(target=worker, name=f"e16-client-{i}")
        for i in range(CLIENT_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


def test_e16_wire_throughput_scales_with_workers():
    """E16a: >= 2x wire throughput with 4 service workers over 1."""
    items = _mixed_workload()
    db = build_database(generate(SERVICE_SCALE))
    cache = PlanCache()

    # Warm phase (unstalled): plans cached, lazy indexes built, and the
    # expected row sequences captured over the same wire path.
    with QueryServer(db, workers=2, plan_cache=cache) as server:
        expected = _drive(server.url, items)

    # Best of two runs per worker count: wire benchmarks share the box
    # with whatever CI neighbours exist, and the claim is about the
    # achievable overlap, not the noisiest run.
    timings = {}
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=STALL):
        for workers in (1, 2, 4):
            best = None
            for _ in range(2):
                with QueryServer(
                    db, workers=workers, plan_cache=cache
                ) as server:
                    rows, elapsed = timed(
                        lambda s=server: _drive(s.url, items)
                    )
                assert rows == expected, f"{workers}-worker run diverged"
                best = elapsed if best is None else min(best, elapsed)
            timings[workers] = best

    report = ExperimentReport(
        experiment="E16a: mixed E10/E12 workload over HTTP",
        claim="the HTTP front end serializes nothing: wire throughput "
        "scales with service workers under per-query stalls",
        columns=["mode", "statements", "t(s)", "qps", "speedup"],
        slug="e16",
    )
    n = len(items)
    for workers in (1, 2, 4):
        elapsed = timings[workers]
        report.add_row(
            f"http x{workers}",
            n,
            elapsed,
            n / elapsed,
            speedup(timings[1], elapsed),
        )
    report.note(
        f"{STALL * 1000:.0f}ms simulated I/O stall per statement; "
        f"{CLIENT_THREADS} concurrent client connections; identical rows "
        "at every worker count"
    )
    report.show()

    ratio = speedup(timings[1], timings[4])
    assert ratio >= 2.0, f"4-worker server only {ratio:.2f}x the 1-worker"


def test_e16_optimizer_matters_over_the_wire():
    """E16b: ``optimize=False`` shipped in the wire options makes the
    server re-execute the subquery per row — and it shows."""
    db = build_database(
        generate(SupplierScale(suppliers=200, parts_per_supplier=20))
    )
    with QueryServer(db, workers=2) as server:
        with repro.connect(server.url) as conn:
            # Warm both paths once and pin down the plumbing claims.
            optimized = conn.execute(NESTED_QUERY, NESTED_PARAMS)
            as_written = conn.execute(
                NESTED_QUERY, NESTED_PARAMS, optimize=False
            )
            assert sorted(optimized.fetchall()) == sorted(
                as_written.fetchall()
            )
            assert optimized.executed.rewritten
            assert "subquery-to-join" in optimized.executed.rules
            assert not as_written.executed.rewritten
            subq_on = optimized.executed.stats.get("subquery_executions", 0)
            subq_off = as_written.executed.stats.get("subquery_executions", 0)
            assert subq_on == 0
            assert subq_off == 200  # once per supplier

            _, t_on = timed(
                lambda: [
                    conn.execute(NESTED_QUERY, NESTED_PARAMS)
                    for _ in range(NESTED_ROUNDS)
                ]
            )
            _, t_off = timed(
                lambda: [
                    conn.execute(NESTED_QUERY, NESTED_PARAMS, optimize=False)
                    for _ in range(NESTED_ROUNDS)
                ]
            )

    report = ExperimentReport(
        experiment="E16b: E3 correlated EXISTS, optimizer on vs off, "
        "end to end over HTTP",
        claim="remote ExecutionOptions reach the server's optimizer; "
        "flattening wins on the wire exactly as it does in-process",
        columns=["mode", "rounds", "subq_execs", "t(s)", "speedup"],
        slug="e16",
    )
    report.add_row("optimize=False", NESTED_ROUNDS, subq_off, t_off, 1.0)
    report.add_row(
        "optimize=True", NESTED_ROUNDS, subq_on, t_on, speedup(t_off, t_on)
    )
    report.note(
        "200 suppliers x 20 parts; work counters travel back in the "
        "response envelope, so the claim is visible client-side"
    )
    report.show()

    assert t_on < t_off, (
        f"optimized wire run ({t_on:.3f}s) not faster than "
        f"as-written ({t_off:.3f}s)"
    )
