"""E15 — concurrent query service: throughput under simulated I/O stalls.

On one CPU with the GIL, thread parallelism buys nothing for pure
compute — the speedup a multi-worker service *can* deliver is overlap
of per-query waits (storage, network, lock handoffs).  This benchmark
models that wait with a ``slow`` fault at the plan-cache site (the
injector sleeps *outside* its lock, exactly like a real I/O stall), and
measures a mixed E10/E12 workload three ways:

* a serial loop over :func:`run_guarded` (the pre-service baseline),
* a :class:`QueryService` at increasing worker counts,
* two interleaved sessions against different databases, verifying that
  the shared plan cache never leaks rows across sessions.

Every table lands in ``BENCH_e15.json``.  The headline acceptance bar:
>= 2x throughput with 4 workers over the serial loop, with every served
row sequence identical to the serial run's.
"""

import pytest

from repro import QueryService, run_guarded
from repro.bench import ExperimentReport, speedup, timed
from repro.engine.plan_cache import PlanCache
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.workloads import SupplierScale, build_database, generate

from test_e12_hotpath import AUDIT_TEMPLATES, CORRELATED_QUERY

#: Simulated per-query stall (seconds): the cost of fetching a plan /
#: metadata from cold storage.  Fired once per statement at the
#: plan-cache hook; sleeps overlap across service workers.
STALL = 0.03

#: Small instance: keeps CPU time per query far below the stall, so the
#: benchmark isolates wait-overlap (the only speedup one core offers).
SERVICE_SCALE = SupplierScale(
    suppliers=60, parts_per_supplier=5, agents_per_supplier=2
)


@pytest.fixture(scope="module")
def service_db():
    return build_database(generate(SERVICE_SCALE))


@pytest.fixture(scope="module")
def other_db():
    return build_database(
        generate(SupplierScale(suppliers=20, parts_per_supplier=3))
    )


def _mixed_workload() -> list[tuple[str, dict]]:
    """24 statements: the E10 audit templates bound to constants, plus
    the E12 correlated-EXISTS probe — two rounds of each."""
    items: list[tuple[str, dict]] = []
    for sql in AUDIT_TEMPLATES:
        params = {}
        if ":C" in sql:
            params["C"] = "RED"
        if ":N" in sql:
            params["N"] = 3
        items.append((sql, params))
    items.append((CORRELATED_QUERY, {"PART-NO": 3}))
    items.append((CORRELATED_QUERY, {"PART-NO": 7}))
    return items * 2


def _run_serial(db, cache, items):
    return [
        run_guarded(sql, db, params=params, plan_cache=cache)
        for sql, params in items
    ]


def _run_service(db, cache, items, workers):
    with QueryService(workers=workers, plan_cache=cache) as service:
        session = service.session(db)
        tickets = session.submit_many(items)
        return [ticket.result(timeout=120) for ticket in tickets]


def test_e15_service_throughput(service_db):
    """The headline claim: 4 service workers deliver >= 2x the serial
    throughput on a stalled mixed workload, byte-identical rows."""
    items = _mixed_workload()
    cache = PlanCache()

    # Warm phase (unstalled): plans cached, lazy indexes built — the
    # steady state a long-running service actually operates in.
    warm = _run_serial(service_db, cache, items)
    expected = [outcome.result.rows for outcome in warm]

    rows_by_workers = {}
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=STALL):
        serial_outcomes, t_serial = timed(
            lambda: _run_serial(service_db, cache, items)
        )
        timings = {}
        for workers in (1, 2, 4):
            outcomes, elapsed = timed(
                lambda w=workers: _run_service(service_db, cache, items, w)
            )
            timings[workers] = elapsed
            rows_by_workers[workers] = [o.result.rows for o in outcomes]

    report = ExperimentReport(
        experiment="E15a: mixed E10/E12 workload, serial loop vs service",
        claim="service workers overlap per-query stalls; one core still "
        "serves >= 2x the serial throughput",
        columns=["mode", "statements", "t(s)", "qps", "speedup"],
        slug="e15",
    )
    n = len(items)
    report.add_row("serial loop", n, t_serial, n / t_serial, 1.0)
    for workers in (1, 2, 4):
        elapsed = timings[workers]
        report.add_row(
            f"service x{workers}",
            n,
            elapsed,
            n / elapsed,
            speedup(t_serial, elapsed),
        )
    report.note(
        f"{STALL * 1000:.0f}ms simulated I/O stall per statement; "
        "warm plan cache and indexes; GIL-bound compute is not sped up, "
        "only the stalls overlap"
    )
    report.show()

    # Correctness before performance: every serving mode returned the
    # exact serial row sequences, statement by statement.
    assert [o.result.rows for o in serial_outcomes] == expected
    for workers, rows in rows_by_workers.items():
        assert rows == expected, f"service x{workers} diverged from serial"

    ratio = speedup(t_serial, timings[4])
    assert ratio >= 2.0, f"4-worker service only {ratio:.2f}x serial"


def test_e15_session_isolation_under_stall(service_db, other_db):
    """Two sessions on different databases share one service and one
    plan cache while every statement stalls: zero cross-session rows."""
    items = _mixed_workload()
    cache = PlanCache()
    expected_a = [o.result.rows for o in _run_serial(service_db, cache, items)]
    expected_b = [o.result.rows for o in _run_serial(other_db, cache, items)]
    assert expected_a != expected_b  # differently sized instances

    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=STALL / 2):
        with QueryService(workers=4, plan_cache=cache) as service:
            session_a = service.session(service_db, name="tenant-a")
            session_b = service.session(other_db, name="tenant-b")
            tickets = []
            for item in items:  # interleave to maximize cross-talk risk
                tickets.append(("a", service.submit(session_a, *item)))
                tickets.append(("b", service.submit(session_b, *item)))
            _, elapsed = timed(
                lambda: [t.result(timeout=120) for _, t in tickets]
            )
    served_a = [t.result().result.rows for tag, t in tickets if tag == "a"]
    served_b = [t.result().result.rows for tag, t in tickets if tag == "b"]

    report = ExperimentReport(
        experiment="E15b: two tenants, one service, one plan cache",
        claim="fingerprint-keyed shared caches cannot leak rows between "
        "sessions on different databases",
        columns=["session", "statements", "rows", "mismatches"],
        slug="e15",
    )
    mismatches_a = sum(1 for got, want in zip(served_a, expected_a) if got != want)
    mismatches_b = sum(1 for got, want in zip(served_b, expected_b) if got != want)
    report.add_row(
        "tenant-a", len(items), sum(len(r) for r in served_a), mismatches_a
    )
    report.add_row(
        "tenant-b", len(items), sum(len(r) for r in served_b), mismatches_b
    )
    report.note(
        f"{2 * len(items)} interleaved statements drained in {elapsed:.2f}s "
        "by 4 workers"
    )
    report.show()

    assert mismatches_a == 0 and mismatches_b == 0
    assert session_a.snapshot()["completed"] == len(items)
    assert session_b.snapshot()["completed"] == len(items)
