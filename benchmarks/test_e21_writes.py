"""E21 — the write path, and what writes cost the read path.

Two claims for the MVCC write engine:

* **E21a** — commit batching works: loading N rows in one transaction
  (one conflict check, one key re-validation, one index pass at
  commit) beats N autocommit single-row transactions on throughput.
* **E21b** — scoped invalidation keeps warm reads warm: the p50 of a
  plan-cached join query stays within 10% of the read-only baseline
  while every read is interleaved with a committed write *to another
  table*.  Under the old whole-database fingerprint every one of those
  writes would have evicted the plan and forced a replan per read.

Every table lands in ``BENCH_e21.json``.
"""

import gc
import statistics

import repro
from repro.bench import ExperimentReport, timed
from repro.engine import PlanCache, execute_planned
from repro.engine.stats import Stats
from repro.workloads import SupplierScale, build_database, generate

E21_SCALE = SupplierScale(
    suppliers=60, parts_per_supplier=8, agents_per_supplier=3
)

#: The warm read: a key-bound join whose plan is worth caching.
READ_SQL = (
    "SELECT P.PNAME FROM PARTS P, SUPPLIER S "
    "WHERE P.SNO = S.SNO AND S.BUDGET > 300"
)

SIDE_DDL = (
    "CREATE TABLE SIDE (K INT NOT NULL, V INT, PRIMARY KEY (K));"
)

BULK_ROWS = 2000
READS = 200


def _throughput(elapsed: float, rows: int) -> float:
    return rows / elapsed if elapsed > 0 else float("inf")


def test_e21a_batched_commit_beats_per_row_autocommit():
    """One transaction per batch beats one transaction per row."""
    report = ExperimentReport(
        experiment="E21a: write throughput, autocommit vs batched commit",
        claim="a single commit amortizes conflict checks and index "
        "maintenance over the whole batch",
        columns=["mode", "rows", "t(ms)", "rows/s"],
        slug="e21",
    )

    def load(batched: bool) -> float:
        db = build_database(generate(E21_SCALE))
        db.run_script(SIDE_DDL)
        params = [{"K": k, "V": k} for k in range(BULK_ROWS)]
        gc.collect()
        with repro.connect(db) as conn:
            if batched:
                conn.autocommit = False
                cursor = conn.cursor()
                _, elapsed = timed(
                    lambda: (
                        cursor.executemany(
                            "INSERT INTO SIDE VALUES (:K, :V)", params
                        ),
                        conn.commit(),
                    )
                )
                assert cursor.rowcount == BULK_ROWS
            else:
                _, elapsed = timed(
                    lambda: [
                        conn.execute(
                            "INSERT INTO SIDE VALUES (:K, :V)", p
                        )
                        for p in params
                    ]
                )
            assert (
                conn.execute("SELECT K FROM SIDE").rowcount == BULK_ROWS
            )
        return elapsed

    t_autocommit = load(batched=False)
    t_batched = load(batched=True)
    report.add_row(
        "autocommit, one txn/row",
        BULK_ROWS,
        t_autocommit * 1e3,
        f"{_throughput(t_autocommit, BULK_ROWS):.0f}",
    )
    report.add_row(
        "executemany, one commit",
        BULK_ROWS,
        t_batched * 1e3,
        f"{_throughput(t_batched, BULK_ROWS):.0f}",
    )
    report.note(
        f"{BULK_ROWS} single-row INSERTs into a keyed table; identical "
        "final state verified in both modes"
    )
    report.show()
    assert t_batched < t_autocommit, (
        f"batched commit not faster: {t_batched:.3f}s vs "
        f"{t_autocommit:.3f}s"
    )


def test_e21b_warm_read_p50_under_writes_within_10pct():
    """Interleaved writes to another table leave the read path warm."""
    db = build_database(generate(E21_SCALE))
    db.run_script(SIDE_DDL)
    cache = PlanCache()
    conn = repro.connect(db)

    def read_once() -> float:
        stats = Stats()
        _, elapsed = timed(
            lambda: execute_planned(
                READ_SQL, db, plan_cache=cache, stats=stats
            )
        )
        return elapsed, stats

    # Prime the cache, then measure the read-only warm path.
    read_once()
    gc.collect()
    gc.disable()
    try:
        baseline = [read_once() for _ in range(READS)]
        under_writes = []
        for k in range(READS):
            conn.execute(
                "INSERT INTO SIDE VALUES (:K, :V)", {"K": k, "V": k}
            )
            under_writes.append(read_once())
    finally:
        gc.enable()

    # Every measured read — in both phases — was served from the plan
    # cache: the committed writes to SIDE never evicted the entry.
    for elapsed, stats in baseline + under_writes:
        assert stats.plan_cache_hits == 1, "read missed the plan cache"

    p50_baseline = statistics.median(t for t, _ in baseline)
    p50_writes = statistics.median(t for t, _ in under_writes)
    ratio = p50_writes / p50_baseline if p50_baseline > 0 else 1.0

    report = ExperimentReport(
        experiment="E21b: warm read p50 under interleaved writes",
        claim="scoped invalidation keeps the warm-read p50 within 10% "
        "of read-only while every read follows a committed write to "
        "another table",
        columns=["phase", "reads", "p50(us)", "vs read-only"],
        slug="e21",
    )
    report.add_row(
        "read-only", READS, p50_baseline * 1e6, "1.00x"
    )
    report.add_row(
        "1 committed write/read", READS, p50_writes * 1e6, f"{ratio:.2f}x"
    )
    report.note(
        "every read in both phases hit the plan cache; writes insert "
        "into a table the read never touches"
    )
    report.show()
    assert ratio <= 1.10, (
        f"warm read p50 degraded {ratio:.2f}x under writes "
        f"({p50_writes * 1e6:.0f}us vs {p50_baseline * 1e6:.0f}us)"
    )
