"""Shared benchmark fixtures: scaled instances of the paper's schema."""

from __future__ import annotations

import pytest

from repro.workloads import (
    SupplierScale,
    build_database,
    build_ims_database,
    build_object_store,
    generate,
)

#: Default benchmark scale: 300 suppliers x 20 parts = 6000 parts.
BENCH_SCALE = SupplierScale(
    suppliers=300, parts_per_supplier=20, agents_per_supplier=3
)


@pytest.fixture(scope="session")
def bench_data():
    return generate(BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_db(bench_data):
    return build_database(bench_data)


@pytest.fixture(scope="session")
def bench_ims(bench_data):
    return build_ims_database(bench_data)


@pytest.fixture(scope="session")
def bench_store(bench_data):
    return build_object_store(bench_data)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every experiment report and write BENCH_<slug>.json files."""
    from repro.bench import RENDERED_REPORTS, write_reports

    if not RENDERED_REPORTS:
        return
    terminalreporter.section("experiment reports (paper claims)")
    for rendered in RENDERED_REPORTS:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
    for path in write_reports(str(config.rootpath)):
        terminalreporter.write_line(f"wrote {path}")
