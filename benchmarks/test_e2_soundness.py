"""E2 — the soundness boundary (Example 2).

Claim: when the projection drops the key (SNAME instead of SNO) the
DISTINCT is *necessary*: the optimizer must keep it, and executing
without it would return a strictly larger multiset.
"""

from repro import Stats, execute_planned, optimize
from repro.bench import ExperimentReport

QUERY = (
    "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


def test_e2_necessary_distinct_kept(benchmark, bench_db):
    rewritten = optimize(QUERY, bench_db.catalog)
    assert rewritten.query.distinct, "optimizer must not fire on Example 2"

    stats = Stats()
    with_distinct = execute_planned(QUERY, bench_db, stats=stats)
    without = execute_planned(QUERY.replace("DISTINCT", "ALL"), bench_db)

    report = ExperimentReport(
        experiment="E2: necessary DISTINCT preserved (Example 2)",
        claim="name collisions make duplicates real; rewrite correctly "
        "declines",
        columns=["variant", "rows", "duplicates_removed"],
    )
    report.add_row("DISTINCT", len(with_distinct), stats.duplicates_removed)
    report.add_row("ALL", len(without), 0)
    report.note(
        f"ALL returns {len(without) - len(with_distinct)} duplicate rows "
        "that DISTINCT must eliminate"
    )
    report.show()

    assert len(without) > len(with_distinct)
    assert without.has_duplicates()
    assert not with_distinct.has_duplicates()

    result = benchmark(lambda: execute_planned(QUERY, bench_db))
    assert not result.has_duplicates()
