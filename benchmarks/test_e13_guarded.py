"""E13 — the price of the guard rails on the E12 warm path.

Resilience must be cheap enough to leave on: the per-row budget tick is
bound directly to ``ExecutionGuard.tick`` at context creation (one
call, a counter increment, and two attribute tests; the clock is
re-read every 256 rows), sequential scans account rows in chunks of
``TICK_CHUNK`` when no faults are armed, unarmed fault hooks reduce to
a no-op binding, and safe mode only pays for a cross-check on sampled
executions of rewritten queries.

The workload is the E12 warm path: templated keyed lookups (E12c),
compiled filter scans (E12d), and a correlated EXISTS probe (E12b),
all with warm plan/analysis caches.  Two isolated comparisons, each
measured *interleaved* (alternating the two arms batch-by-batch) so
machine drift hits both arms equally:

* ``execute_planned`` bare vs. with an armed guard — the pure tick
  overhead, as the median per-pair ratio;
* ``run_guarded`` plain vs. with budget + ``safe_mode`` — the always-on
  bookkeeping as a median per-pair ratio, plus the sampled cross-check
  (a directly timed execution of the unrewritten plan) amortized at its
  exact 1-in-25 rate, the way a long session pays it.

Both ratios must stay under 1.05.  Lands in ``BENCH_e13.json``.
"""

from repro import clear_all_caches, execute_planned, run_guarded
from repro.bench import ExperimentReport, timed
from repro.engine import PlanCache
from repro.resilience import FAULTS, ResourceBudget
from repro.resilience.guarded import reset_safe_mode_sampling

KEY_SQL = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :N"
SCAN_SQL = (
    "SELECT P.PNO, P.PNAME FROM PARTS P "
    "WHERE P.COLOR = 'RED' AND P.PNO > 10"
)
EXISTS_SQL = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
    "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PN)"
)

# Exactly one EXISTS per batch: its text is the only one the optimizer
# rewrites, so its sampling counter advances once per safe batch and
# the cross-check schedule below is deterministic.
BATCH = (
    [(KEY_SQL, {"N": n}) for n in range(1, 51)]
    + [(SCAN_SQL, None)] * 20
    + [(EXISTS_SQL, {"PN": 3})]
)
TICK_REPEATS = 9
SAMPLE_EVERY = 25
SAFE_REPEATS = 15
BUDGET = ResourceBudget(timeout=120.0, row_budget=500_000_000)
MAX_OVERHEAD = 1.05


def _interleaved(arm_a, arm_b, pairs):
    """Alternate the two arms batch-by-batch; per-arm sample lists."""
    times_a, times_b = [], []
    for _ in range(pairs):
        _, elapsed = timed(arm_a)
        times_a.append(elapsed)
        _, elapsed = timed(arm_b)
        times_b.append(elapsed)
    return times_a, times_b


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def test_e13_guard_and_safe_mode_overhead(bench_db):
    assert not FAULTS.armed  # nothing injected: we measure the hooks alone
    clear_all_caches()
    reset_safe_mode_sampling()
    cache = PlanCache()

    def bare_batch():
        return sum(
            len(execute_planned(sql, bench_db, params=p, plan_cache=cache).rows)
            for sql, p in BATCH
        )

    def ticked_batch():
        guard = BUDGET.guard()
        return sum(
            len(
                execute_planned(
                    sql, bench_db, params=p, plan_cache=cache, guard=guard
                ).rows
            )
            for sql, p in BATCH
        )

    def guarded_batch(**kwargs):
        return sum(
            len(
                run_guarded(
                    sql, bench_db, params=p, plan_cache=cache, **kwargs
                ).result.rows
            )
            for sql, p in BATCH
        )

    expected = bare_batch()  # warms the plan + analysis caches
    assert expected > len(BATCH)
    assert ticked_batch() == expected

    bare_times, ticked_times = _interleaved(
        bare_batch, ticked_batch, TICK_REPEATS
    )
    t_bare, t_ticked = min(bare_times), min(ticked_times)
    # Each pair ran back-to-back, so the per-pair ratio cancels machine
    # drift; the median ignores pairs hit by a load spike or GC pause.
    tick_ratio = _median(
        ticked / bare for ticked, bare in zip(ticked_times, bare_times)
    )

    # Safe-mode cost has two parts.  The always-on bookkeeping (budget
    # ticks, sampling counters) is measured as the median per-pair
    # ratio; the 1-in-SAMPLE_EVERY cross-check is amortized at its
    # exact rate from a directly timed reference execution (one run of
    # the unrewritten EXISTS — precisely what a sampled check executes
    # on top of the primary).
    safe_kwargs = dict(
        budget=BUDGET, safe_mode=True, sample_every=SAMPLE_EVERY
    )
    assert guarded_batch() == expected
    assert guarded_batch(**safe_kwargs) == expected  # consumes sample 0
    plain_times, safe_times = _interleaved(
        guarded_batch, lambda: guarded_batch(**safe_kwargs), SAFE_REPEATS
    )
    t_plain = _median(plain_times)
    bookkeeping_ratio = _median(
        safe / plain for safe, plain in zip(safe_times, plain_times)
    )
    t_reference = min(
        timed(
            lambda: execute_planned(
                EXISTS_SQL, bench_db, params={"PN": 3}, plan_cache=cache
            )
        )[1]
        for _ in range(5)
    )
    check_share = t_reference / (SAMPLE_EVERY * t_plain)
    safe_ratio = bookkeeping_ratio + check_share

    report = ExperimentReport(
        experiment="E13: guard + safe-mode overhead on the E12 warm path",
        claim="budget ticks, unarmed fault hooks, and sampled safe-mode "
        "verification each cost <5% on the warm mixed batch",
        columns=["mode", "statements/run", "t(s)", "overhead"],
        slug="e13",
    )
    report.add_row("execute_planned (min)", len(BATCH), t_bare, 1.0)
    report.add_row(
        "execute_planned + guard (min; median pair ratio)",
        len(BATCH),
        t_ticked,
        tick_ratio,
    )
    report.add_row(
        "run_guarded (median batch)", len(BATCH), t_plain, 1.0
    )
    report.add_row(
        f"run_guarded + budget + safe_mode(1/{SAMPLE_EVERY})",
        len(BATCH),
        t_plain * safe_ratio,
        safe_ratio,
    )
    report.note(
        "batch = 50 keyed lookups + 20 filter scans + 1 correlated "
        "EXISTS; arms interleaved batch-by-batch against machine drift"
    )
    report.note(
        f"safe-mode overhead = always-on bookkeeping (median pair "
        f"ratio {bookkeeping_ratio:.4f}) + one cross-check of the "
        f"rewritten EXISTS against its unrewritten plan "
        f"({t_reference * 1000:.1f} ms) amortized per {SAMPLE_EVERY} "
        f"executions"
    )
    report.show()

    assert tick_ratio <= MAX_OVERHEAD, (
        f"budget ticks cost {(tick_ratio - 1) * 100:.1f}% on the warm path"
    )
    assert safe_ratio <= MAX_OVERHEAD, (
        f"safe mode cost {(safe_ratio - 1) * 100:.1f}% over plain run_guarded"
    )


def test_e13_safe_mode_verifies_rewrites_when_sampled(bench_db):
    """Sanity anchor for the overhead claim: on a *rewritten* query the
    sampled executions really do run the cross-check."""
    clear_all_caches()
    reset_safe_mode_sampling()
    sql = (
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S "
        "WHERE S.SCITY = 'Toronto'"
    )
    verified = [
        run_guarded(sql, bench_db, safe_mode=True, sample_every=25).verified
        for _ in range(50)
    ]
    assert verified[0] is True and verified[25] is True
    assert sum(verified) == 2
