"""E12 — hot-path acceleration: compiled predicates, caches, indexes.

Three mechanisms attack the engine's interpretive overheads:

* analysis/plan caches keyed on catalog/database fingerprints (the E10
  batch audit re-analyzes identical template text every round),
* hash-index probes replacing full inner-table re-scans in correlated
  subqueries and ``key = constant`` scans,
* predicate compilation to row closures, removing per-row Scope
  allocation and recursive dispatch from Filter/join residuals.

Every table in this module lands in ``BENCH_hotpath.json``.
"""

from repro import (
    Stats,
    clear_all_caches,
    execute_planned,
    set_caches_enabled,
    test_uniqueness,
)
from repro.bench import ExperimentReport, speedup, timed
from repro.engine import PlanCache, set_compilation_enabled
from repro.workloads import SupplierScale, build_database, generate

# The E10 CASE-tool audit templates (5 provably redundant, 5 required).
AUDIT_TEMPLATES = [
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = :C",
    "SELECT DISTINCT S.SNO, SNAME, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE P.SNO = :N AND S.SNO = P.SNO",
    "SELECT DISTINCT SNO, SNAME, SCITY FROM SUPPLIER",
    "SELECT DISTINCT A.ANO, A.ANAME, S.SNO FROM AGENTS A, SUPPLIER S "
    "WHERE A.SNO = S.SNO",
    "SELECT DISTINCT P.OEM-PNO, P.PNAME FROM PARTS P WHERE P.SNO = :N",
    "SELECT DISTINCT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO",
    "SELECT DISTINCT SCITY FROM SUPPLIER",
    "SELECT DISTINCT P.COLOR, S.SCITY FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO",
    "SELECT DISTINCT A.ACITY FROM AGENTS A WHERE A.SNO = :N",
    "SELECT DISTINCT P.PNAME FROM PARTS P WHERE P.COLOR = :C",
]

CORRELATED_QUERY = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS "
    "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"
)
CORRELATED_PARAMS = {"PART-NO": 3}

AUDIT_ROUNDS = 20


def _run_audit(catalog):
    return sum(
        1 for sql in AUDIT_TEMPLATES if test_uniqueness(sql, catalog).unique
    )


def test_e12_batch_audit_warm_cache_speedup(benchmark, bench_db):
    """The headline claim: the E10 audit runs >=5x faster warm."""
    catalog = bench_db.catalog

    previous = set_caches_enabled(False)
    try:
        cold_counts, t_cold = timed(
            lambda: [_run_audit(catalog) for _ in range(AUDIT_ROUNDS)]
        )
    finally:
        set_caches_enabled(previous)

    set_caches_enabled(True)
    clear_all_caches()
    prime = _run_audit(catalog)
    warm_counts, t_warm = timed(
        lambda: [_run_audit(catalog) for _ in range(AUDIT_ROUNDS)]
    )

    report = ExperimentReport(
        experiment="E12a: batch audit, cold vs warm analysis caches",
        claim="fingerprint-keyed caches amortize Algorithm 1 across a "
        "templated workload",
        columns=["mode", "rounds", "detected/round", "t(s)", "speedup"],
        slug="hotpath",
    )
    ratio = speedup(t_cold, t_warm)
    report.add_row("cold (caches off)", AUDIT_ROUNDS, cold_counts[0], t_cold, 1.0)
    report.add_row("warm (caches on)", AUDIT_ROUNDS, warm_counts[0], t_warm, ratio)
    report.note(
        f"{len(AUDIT_TEMPLATES)} templates/round; warm hits skip parse, "
        "CNF/DNF, and closure work"
    )
    report.show()

    assert cold_counts == warm_counts and prime == cold_counts[0] == 5
    assert ratio >= 5.0, f"warm audit only {ratio:.1f}x faster"

    detected = benchmark(lambda: _run_audit(catalog))
    assert detected == 5


def test_e12_correlated_subquery_index_probes(benchmark):
    """EXISTS re-executions become O(1) index probes, same results."""
    db = build_database(
        generate(SupplierScale(suppliers=100, parts_per_supplier=20))
    )

    scan_stats, probe_stats = Stats(), Stats()
    scanned, t_scan = timed(
        lambda: execute_planned(
            CORRELATED_QUERY,
            db,
            params=CORRELATED_PARAMS,
            stats=scan_stats,
            use_indexes=False,
        )
    )
    # First indexed run pays the one-off O(n) index build; time the
    # steady state the batch workloads actually see.
    execute_planned(
        CORRELATED_QUERY, db, params=CORRELATED_PARAMS, use_indexes=True
    )
    probed, t_probe = timed(
        lambda: execute_planned(
            CORRELATED_QUERY,
            db,
            params=CORRELATED_PARAMS,
            stats=probe_stats,
            use_indexes=True,
        )
    )

    report = ExperimentReport(
        experiment="E12b: correlated EXISTS, inner scan vs index probe",
        claim="each subquery re-execution probes the FK hash index "
        "instead of re-scanning the inner table",
        columns=[
            "mode", "subq_execs", "index_probes", "inner_rows_examined",
            "t(s)", "speedup",
        ],
        slug="hotpath",
    )
    report.add_row(
        "seq rescan",
        scan_stats.subquery_executions,
        scan_stats.index_probes,
        scan_stats.rows_joined,
        t_scan,
        1.0,
    )
    report.add_row(
        "index probe",
        probe_stats.subquery_executions,
        probe_stats.index_probes,
        probe_stats.index_rows,
        t_probe,
        speedup(t_scan, t_probe),
    )
    report.show()

    assert scanned.same_rows(probed)
    # Same naive strategy (one execution per outer row) ...
    assert probe_stats.subquery_executions == scan_stats.subquery_executions
    # ... but each execution touches a bucket, not the table.
    assert scan_stats.index_probes == 0
    assert probe_stats.index_probes >= probe_stats.subquery_executions
    assert probe_stats.index_rows < scan_stats.rows_joined / 10
    assert probe_stats.predicate_evals < scan_stats.predicate_evals / 10

    result = benchmark(
        lambda: execute_planned(
            CORRELATED_QUERY, db, params=CORRELATED_PARAMS, use_indexes=True
        )
    )
    assert result.columns == ["SNO", "SNAME"]


def test_e12_keyed_lookup_plan_cache(benchmark, bench_db):
    """A templated key lookup: IndexScan + plan cache across the batch."""
    template = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :N"
    cache = PlanCache()
    batch = list(range(1, 51))

    def run_batch():
        stats = Stats()
        rows = sum(
            len(
                execute_planned(
                    template,
                    bench_db,
                    params={"N": n},
                    stats=stats,
                    plan_cache=cache,
                ).rows
            )
            for n in batch
        )
        return rows, stats

    (rows, stats), elapsed = timed(run_batch)

    report = ExperimentReport(
        experiment="E12c: templated key lookups",
        claim="one plan + one index probe per statement; the table is "
        "never scanned",
        columns=[
            "statements", "rows", "plan_hits", "plan_misses",
            "index_probes", "rows_scanned", "t(s)",
        ],
        slug="hotpath",
    )
    report.add_row(
        len(batch),
        rows,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.index_probes,
        stats.rows_scanned,
        elapsed,
    )
    report.show()

    assert rows == len(batch)  # SNO is the primary key
    assert stats.plan_cache_misses == 1
    assert stats.plan_cache_hits == len(batch) - 1
    assert stats.index_probes == len(batch)
    assert stats.rows_scanned == len(batch)  # one row per probe, no scans

    result = benchmark(
        lambda: execute_planned(
            template, bench_db, params={"N": 7}, plan_cache=cache
        )
    )
    assert len(result.rows) == 1


def test_e12_compiled_predicates(benchmark, bench_db):
    """Filter predicates run as closures, matching the interpreter."""
    sql = (
        "SELECT P.PNO, P.PNAME FROM PARTS P "
        "WHERE P.COLOR = :C AND P.PNO > 100 AND P.PNAME <> 'NONE'"
    )
    params = {"C": "RED"}

    previous = set_compilation_enabled(False)
    try:
        interp_stats = Stats()
        interpreted, t_interp = timed(
            lambda: execute_planned(sql, bench_db, params=params, stats=interp_stats)
        )
    finally:
        set_compilation_enabled(previous)
    compiled_stats = Stats()
    compiled, t_compiled = timed(
        lambda: execute_planned(sql, bench_db, params=params, stats=compiled_stats)
    )

    report = ExperimentReport(
        experiment="E12d: interpreted vs compiled predicate evaluation",
        claim="compiling the WHERE clause removes per-row Scope "
        "allocation and recursive dispatch",
        columns=["mode", "predicate_evals", "compiled_evals", "t(s)", "speedup"],
        slug="hotpath",
    )
    report.add_row(
        "interpreted",
        interp_stats.predicate_evals,
        interp_stats.compiled_evals,
        t_interp,
        1.0,
    )
    report.add_row(
        "compiled",
        compiled_stats.predicate_evals,
        compiled_stats.compiled_evals,
        t_compiled,
        speedup(t_interp, t_compiled),
    )
    report.show()

    assert interpreted.same_rows(compiled)
    assert interp_stats.compiled_evals == 0
    assert compiled_stats.predicates_compiled >= 1
    assert compiled_stats.compiled_evals == compiled_stats.predicate_evals > 0

    result = benchmark(lambda: execute_planned(sql, bench_db, params=params))
    assert result.same_rows(compiled)
