"""E14 — the price of observability on the E12 warm path.

Tracing must be cheap enough to leave compiled in and cheap enough to
turn on.  Two claims, pinned on the E13 mixed batch (templated keyed
lookups, compiled filter scans, one correlated EXISTS; warm plan and
analysis caches):

* **Disabled** tracing costs under 2%.  Every instrumented site guards
  itself with one ``TRACER.enabled`` attribute test before building any
  span arguments, so the disabled cost is (sites crossed per batch) ×
  (per-site hook cost).  The hook cost is microbenchmarked directly and
  the site count is taken from an enabled batch's span count — an upper
  bound, since a disabled site pays strictly less than a span-producing
  one.
* **Enabled** tracing costs under 15%, measured interleaved (alternating
  enabled and disabled batches pair-by-pair, median per-pair ratio) so
  machine drift hits both arms equally.

Lands in ``BENCH_e14.json`` with the batch's engine-counter deltas.
"""

from time import perf_counter

from repro import Stats, clear_all_caches, execute_planned
from repro.bench import ExperimentReport, timed
from repro.engine import PlanCache
from repro.observe import NULL_SPAN, TRACER, set_tracing

KEY_SQL = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :N"
SCAN_SQL = (
    "SELECT P.PNO, P.PNAME FROM PARTS P "
    "WHERE P.COLOR = 'RED' AND P.PNO > 10"
)
EXISTS_SQL = (
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
    "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PN)"
)

BATCH = (
    [(KEY_SQL, {"N": n}) for n in range(1, 51)]
    + [(SCAN_SQL, None)] * 20
    + [(EXISTS_SQL, {"PN": 3})]
)
REPEATS = 9
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_RATIO = 1.15


def _interleaved(arm_a, arm_b, pairs):
    """Alternate the two arms batch-by-batch; per-arm sample lists."""
    times_a, times_b = [], []
    for _ in range(pairs):
        _, elapsed = timed(arm_a)
        times_a.append(elapsed)
        _, elapsed = timed(arm_b)
        times_b.append(elapsed)
    return times_a, times_b


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _disabled_hook_cost(iterations=200_000):
    """Seconds per instrumented site when tracing is off.

    Reproduces the exact guarded-site pattern: one attribute test, the
    conditional, entering the shared no-op context manager, and the
    ``if span`` attribute guard.
    """
    assert not TRACER.enabled
    start = perf_counter()
    for _ in range(iterations):
        traced = TRACER.enabled
        span_cm = TRACER.span("e14.hook") if traced else NULL_SPAN
        with span_cm as span:
            if span is not None:
                span.attributes["never"] = True
    return (perf_counter() - start) / iterations


def test_e14_tracing_overhead(bench_db):
    previous = set_tracing(False)
    try:
        _run_e14(bench_db)
    finally:
        set_tracing(previous)
        TRACER.clear()


def _run_e14(bench_db):
    clear_all_caches()
    cache = PlanCache()
    batch_stats = Stats()

    def disabled_batch():
        return sum(
            len(
                execute_planned(
                    sql,
                    bench_db,
                    params=p,
                    plan_cache=cache,
                    stats=batch_stats,
                ).rows
            )
            for sql, p in BATCH
        )

    def enabled_batch():
        TRACER.clear()  # fresh span budget: a full batch always fits
        set_tracing(True)
        try:
            return disabled_batch()
        finally:
            set_tracing(False)

    expected = disabled_batch()  # warms the plan + analysis caches
    assert expected > len(BATCH)
    assert enabled_batch() == expected
    spans_per_batch = sum(1 for root in TRACER.roots for _ in root.walk())
    assert spans_per_batch >= len(BATCH)  # at least one root per statement
    assert TRACER.truncated == 0

    stats_before = batch_stats.snapshot()
    disabled_times, enabled_times = _interleaved(
        disabled_batch, enabled_batch, REPEATS
    )
    batch_delta = batch_stats.snapshot() - stats_before

    t_disabled = _median(disabled_times)
    # Each pair ran back-to-back, so the per-pair ratio cancels machine
    # drift; the median ignores pairs hit by a load spike or GC pause.
    enabled_ratio = _median(
        enabled / disabled
        for enabled, disabled in zip(enabled_times, disabled_times)
    )

    hook_cost = _disabled_hook_cost()
    disabled_overhead = spans_per_batch * hook_cost / t_disabled

    report = ExperimentReport(
        experiment="E14: tracing overhead on the E12 warm path",
        claim="disabled tracing costs <2% (guarded hook sites), enabled "
        "tracing costs <15% (median interleaved pair ratio)",
        columns=["mode", "statements/run", "t(s)", "overhead"],
        slug="e14",
    )
    report.add_row(
        "tracing disabled (median batch)", len(BATCH), t_disabled, 1.0
    )
    report.add_row(
        "disabled hook sites (computed share)",
        len(BATCH),
        spans_per_batch * hook_cost,
        1.0 + disabled_overhead,
    )
    report.add_row(
        "tracing enabled (median pair ratio)",
        len(BATCH),
        t_disabled * enabled_ratio,
        enabled_ratio,
    )
    report.record_stats("interleaved_batches", batch_delta)
    report.note(
        "batch = 50 keyed lookups + 20 filter scans + 1 correlated "
        "EXISTS; arms interleaved batch-by-batch against machine drift"
    )
    report.note(
        f"disabled share = {spans_per_batch} hook sites/batch (from the "
        f"enabled batch's span count, an upper bound) x "
        f"{hook_cost * 1e9:.0f} ns/site, against the median disabled batch"
    )
    report.show()

    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracing hooks cost {disabled_overhead * 100:.2f}% "
        "of the warm batch"
    )
    assert enabled_ratio <= MAX_ENABLED_RATIO, (
        f"enabled tracing cost {(enabled_ratio - 1) * 100:.1f}% "
        "on the warm batch"
    )


def test_e14_enabled_batch_produces_complete_trace(bench_db):
    """Sanity anchor for the overhead claim: the enabled arm really does
    record a span tree per statement, with stats deltas attached."""
    clear_all_caches()
    cache = PlanCache()
    previous = set_tracing(True)
    TRACER.clear()
    try:
        for sql, params in BATCH[:5]:
            execute_planned(sql, bench_db, params=params, plan_cache=cache)
        assert len(TRACER.roots) == 5
        root = TRACER.last_root()
        names = {span.name for span in root.walk()}
        assert "query.execute_planned" in names
        assert "plan.execute" in names
        assert any(span.stats_delta is not None for span in root.walk())
    finally:
        set_tracing(previous)
        TRACER.clear()
