"""E8 — navigational strategies in an object store (§6.2; Example 11).

Claim: with child->parent OID pointers, the forward (child-first) join
dereferences every matching child's parent only to discard most of them;
the rewritten (parent-range-first) EXISTS probe touches only the
selective range.  The winner depends on selectivity — we sweep the range
width to expose the crossover.
"""

from repro.bench import ExperimentReport
from repro.oodb import ObjectStats, forward_join, selective_exists


PARTNO = 3


def run_forward(store, lo, hi):
    store.stats = ObjectStats()
    result = forward_join(
        store,
        "PARTS",
        "PNO",
        PARTNO,
        "SUPPLIER",
        lambda s: lo <= s.get("SNO") <= hi,
    )
    return result, store.stats


def run_rewritten(store, lo, hi):
    store.stats = ObjectStats()
    result = selective_exists(
        store, "SUPPLIER", "SNO", lo, hi, "PARTS", "PNO", PARTNO, "SUPPLIER"
    )
    return result, store.stats


def test_e8_selectivity_sweep(benchmark, bench_store, bench_data):
    suppliers = bench_data.scale.suppliers
    report = ExperimentReport(
        experiment="E8: OO forward join vs selective EXISTS (Example 11)",
        claim="the rewritten navigation wins for selective parent ranges",
        columns=[
            "range_width", "fetches_forward", "fetches_rewritten",
            "winner",
        ],
    )
    for width in (2, 10, 50, suppliers):
        lo, hi = 1, width
        forward, forward_stats = run_forward(bench_store, lo, hi)
        rewritten, rewritten_stats = run_rewritten(bench_store, lo, hi)
        assert sorted(o.get("SNO") for o in forward) == sorted(
            o.get("SNO") for o in rewritten
        )
        f_total = forward_stats.total_fetches()
        r_total = rewritten_stats.total_fetches()
        report.add_row(
            width,
            f_total,
            r_total,
            "rewritten" if r_total < f_total else "forward",
        )
        if width <= 10:
            # a selective range must favour the rewritten navigation
            assert r_total < f_total
    report.note(
        "forward cost is flat (every PARTS match dereferences its "
        "parent); rewritten cost grows with the range width"
    )
    report.show()

    def probe():
        bench_store.stats = ObjectStats()
        return run_rewritten(bench_store, 1, 10)[0]

    assert len(benchmark(probe)) > 0


def test_e8_forward_navigation(benchmark, bench_store):
    def run():
        bench_store.stats = ObjectStats()
        return forward_join(
            bench_store,
            "PARTS",
            "PNO",
            PARTNO,
            "SUPPLIER",
            lambda s: 10 <= s.get("SNO") <= 20,
        )

    result = benchmark(run)
    assert len(result) == 11


def test_e8_rewritten_navigation(benchmark, bench_store):
    def run():
        bench_store.stats = ObjectStats()
        return selective_exists(
            bench_store, "SUPPLIER", "SNO", 10, 20,
            "PARTS", "PNO", PARTNO, "SUPPLIER",
        )

    result = benchmark(run)
    assert len(result) == 11
