"""Setup shim for environments without the `wheel` package.

`pip install -e .` on modern pip requires building an editable wheel;
when `wheel` is unavailable offline, `python setup.py develop` provides
the legacy editable install path.
"""

from setuptools import setup

setup()
