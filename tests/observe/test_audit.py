"""The rewrite audit trail: records, dedup, and the proof sketch."""

import json

from repro.observe.audit import (
    AuditRecord,
    AuditTrail,
    FIRED,
    REJECTED,
    VERDICT,
)


def make_trail() -> AuditTrail:
    trail = AuditTrail()
    trail.record(
        "distinct-elimination",
        "Theorem 1",
        FIRED,
        "SELECT DISTINCT SNO FROM SUPPLIER",
        "Algorithm 1 answers YES",
        {"projection": ["SUPPLIER.SNO"]},
    )
    trail.record(
        "intersect-to-exists",
        "Theorem 3",
        REJECTED,
        "... INTERSECT ...",
        "neither operand is duplicate-free",
        {"left": {"duplicate_free": False}},
    )
    return trail


class TestRecording:
    def test_fired_and_rejected_partition_the_trail(self):
        trail = make_trail()
        assert len(trail) == 2
        assert [r.theorem for r in trail.fired()] == ["Theorem 1"]
        assert [r.theorem for r in trail.rejected()] == ["Theorem 3"]
        assert trail.theorems_fired() == ["Theorem 1"]

    def test_identical_decisions_are_deduplicated(self):
        trail = make_trail()
        # The fixpoint loop revisits queries: same decision, same note.
        trail.record(
            "distinct-elimination",
            "Theorem 1",
            FIRED,
            "SELECT DISTINCT SNO FROM SUPPLIER",
            "Algorithm 1 answers YES",
            {"projection": ["SUPPLIER.SNO"]},
        )
        assert len(trail) == 2

    def test_differing_notes_are_distinct_decisions(self):
        trail = make_trail()
        trail.record(
            "distinct-elimination",
            "Theorem 1",
            FIRED,
            "SELECT DISTINCT SNO FROM SUPPLIER",
            "a different justification",
        )
        assert len(trail) == 3

    def test_verdict_records_count_as_neither_fired_nor_rejected(self):
        trail = AuditTrail()
        trail.record("optimizer", "Algorithm 1", VERDICT, "SELECT ...", "note")
        assert trail.fired() == [] and trail.rejected() == []
        assert len(trail) == 1


class TestProofSketch:
    def test_empty_trail_reads_as_no_decisions(self):
        assert AuditTrail().proof_sketch() == (
            "(no uniqueness decisions were made)"
        )

    def test_sketch_numbers_records_and_names_theorems(self):
        sketch = make_trail().proof_sketch()
        assert sketch.startswith("1. [FIRED] Theorem 1")
        assert "\n2. [REJECTED] Theorem 3" in sketch
        assert "target: SELECT DISTINCT SNO FROM SUPPLIER" in sketch

    def test_describe_renders_the_witness(self):
        record = AuditRecord(
            rule="r",
            theorem="Theorem 2",
            decision=FIRED,
            target="q",
            note="why",
            witness={"terms": [{"term": "E1", "bound_closure": ["P.PNO"]}]},
        )
        text = record.describe()
        assert "terms: [{term: E1, bound_closure: [P.PNO]}]" in text


class TestSerialization:
    def test_to_dicts_roundtrips_through_json(self):
        payload = make_trail().to_dicts()
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert restored[0]["decision"] == FIRED
        assert restored[0]["witness"]["projection"] == ["SUPPLIER.SNO"]

    def test_iteration_yields_records_in_order(self):
        decisions = [record.decision for record in make_trail()]
        assert decisions == [FIRED, REJECTED]
