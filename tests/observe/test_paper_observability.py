"""The acceptance criterion: for every worked example the audit trail
names the exact theorem/algorithm decision, and EXPLAIN ANALYZE shows
per-operator actuals."""

import pytest

from repro.core import Optimizer
from repro.observe import execute_analyzed
from repro.observe.audit import FIRED, REJECTED, VERDICT
from repro.workloads import PAPER_QUERIES, build_catalog

#: (theorem, decision) the audit trail must contain, per example.  The
#: IMS/OODB examples (10, 11) run under the navigational profile.
EXPECTED_DECISIONS = {
    "1": ("Theorem 1", FIRED),
    "2": ("Theorem 1", REJECTED),
    "3": ("Algorithm 1", VERDICT),
    "4": ("Theorem 1", FIRED),
    "6": ("Theorem 1", FIRED),
    "7": ("Theorem 2", FIRED),
    "8": ("Corollary 1", FIRED),
    "9": ("Theorem 3", FIRED),
    "10": ("Theorem 2 (reversed)", FIRED),
    "11": ("Theorem 2 (reversed)", FIRED),
}

NAVIGATIONAL = {"10", "11"}


def optimizer_for(example: str) -> Optimizer:
    catalog = build_catalog()
    if example in NAVIGATIONAL:
        return Optimizer.for_navigational(catalog)
    return Optimizer.for_relational(catalog)


@pytest.mark.parametrize(
    "query", PAPER_QUERIES, ids=[f"ex{q.example}" for q in PAPER_QUERIES]
)
def test_audit_names_the_decision(query):
    outcome = optimizer_for(query.example).optimize(query.sql)
    decisions = {(r.theorem, r.decision) for r in outcome.audit}
    assert EXPECTED_DECISIONS[query.example] in decisions
    # Every record carries the full evidence chain.
    for record in outcome.audit:
        assert record.rule and record.note and record.target
    sketch = outcome.proof_sketch()
    assert sketch != "(no uniqueness decisions were made)"
    assert EXPECTED_DECISIONS[query.example][0] in sketch


@pytest.mark.parametrize(
    "query", PAPER_QUERIES, ids=[f"ex{q.example}" for q in PAPER_QUERIES]
)
def test_explain_analyze_shows_actuals(query, small_db):
    outcome = optimizer_for(query.example).optimize(query.sql)
    analyzed = execute_analyzed(
        outcome.query, small_db, params=query.params or None
    )
    root_stats = analyzed.analysis.for_node(analyzed.plan)
    assert root_stats.loops == 1
    assert root_stats.rows == len(analyzed.result)
    text = analyzed.explain()
    assert "actual rows=" in text
    assert "time=" in text


def test_fired_witnesses_carry_the_proof_data():
    """Spot-check the witness payloads the sketch is built from."""
    catalog = build_catalog()
    relational = Optimizer.for_relational(catalog)

    # Example 1 — Theorem 1: the bound projection covers both keys.
    ex1 = next(q for q in PAPER_QUERIES if q.example == "1")
    (fired,) = [
        r
        for r in relational.optimize(ex1.sql).audit.fired()
        if r.theorem == "Theorem 1"
    ]
    assert "S.SNO" in fired.witness["projection"]
    assert all(
        term.get("keys_covered") for term in fired.witness["terms"]
    )

    # Example 2 — rejected: the supplier key never binds (the witness
    # names tables by their query aliases).
    ex2 = next(q for q in PAPER_QUERIES if q.example == "2")
    (rejected,) = relational.optimize(ex2.sql).audit.rejected()
    assert any(
        "S" in term.get("keys_missing_for", [])
        for term in rejected.witness["terms"]
    )

    # Example 10 — Theorem 2 (reversed): the PARTS key binds inside.
    ex10 = next(q for q in PAPER_QUERIES if q.example == "10")
    navigational = Optimizer.for_navigational(catalog)
    fired = [
        r
        for r in navigational.optimize(ex10.sql).audit.fired()
        if r.theorem == "Theorem 2 (reversed)"
    ][0]
    closures = [
        set(term["bound_closure"]) for term in fired.witness["terms"]
    ]
    assert any({"P.PNO", "P.SNO"} <= closure for closure in closures)
