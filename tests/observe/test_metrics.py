"""The metrics registry: recording, naming, and export formats."""

import json
from types import SimpleNamespace

from repro.engine import Stats
from repro.observe import AuditTrail, MetricsRegistry
from repro.observe.audit import FIRED, REJECTED


class TestPrimitives:
    def test_inc_accumulates_and_value_defaults_to_zero(self):
        registry = MetricsRegistry()
        assert registry.value("queries_total") == 0.0
        registry.inc("queries_total")
        registry.inc("queries_total", 2)
        assert registry.value("queries_total") == 3.0

    def test_labels_distinguish_series_and_sort_canonically(self):
        registry = MetricsRegistry()
        registry.inc("calls_total", 1, segment="PARTS", call="GU")
        registry.inc("calls_total", 1, call="GU", segment="PARTS")
        registry.inc("calls_total", 1, call="GN", segment="PARTS")
        assert registry.value("calls_total", call="GU", segment="PARTS") == 2.0
        assert registry.value("calls_total", call="GN", segment="PARTS") == 1.0

    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.set("cache_entries", 5, cache="plans")
        registry.set("cache_entries", 2, cache="plans")
        assert registry.value("cache_entries", cache="plans") == 2.0


class TestRecorders:
    def test_record_stats_keeps_nonzero_counters_only(self):
        stats = Stats(rows_scanned=7, sorts=0, rows_output=3)
        registry = MetricsRegistry()
        registry.record_stats(stats)
        assert registry.value("engine_rows_scanned_total") == 7.0
        assert registry.value("engine_rows_output_total") == 3.0
        assert "repro_engine_sorts_total" not in registry.as_dict()

    def test_record_caches_accepts_an_explicit_snapshot(self):
        registry = MetricsRegistry()
        registry.record_caches(
            {"plans": {"hits": 4, "misses": 1, "entries": 2}}
        )
        assert registry.value("cache_hits_total", cache="plans") == 4.0
        assert registry.value("cache_misses_total", cache="plans") == 1.0
        assert registry.value("cache_entries", cache="plans") == 2.0

    def test_record_outcome_counts_resilience_events(self):
        outcome = SimpleNamespace(
            rewritten=True,
            rules=["distinct-elimination"],
            verified=True,
            mismatch=True,
            evicted=3,
            quarantined=["distinct-elimination"],
        )
        registry = MetricsRegistry()
        registry.record_outcome(outcome)
        assert registry.value("queries_total") == 1.0
        assert registry.value("queries_rewritten_total") == 1.0
        assert (
            registry.value("rewrites_total", rule="distinct-elimination")
            == 1.0
        )
        assert registry.value("safe_mode_mismatches_total") == 1.0
        assert registry.value("cache_evictions_total") == 3.0
        assert (
            registry.value(
                "rules_quarantined_total", rule="distinct-elimination"
            )
            == 1.0
        )

    def test_record_audit_counts_decisions_by_rule_and_outcome(self):
        trail = AuditTrail()
        trail.record("distinct-elimination", "Theorem 1", FIRED, "q1", "n1")
        trail.record("distinct-elimination", "Theorem 1", REJECTED, "q2", "n2")
        registry = MetricsRegistry()
        registry.record_audit(trail)
        assert (
            registry.value(
                "rewrite_decisions_total",
                rule="distinct-elimination",
                decision=FIRED,
            )
            == 1.0
        )
        assert (
            registry.value(
                "rewrite_decisions_total",
                rule="distinct-elimination",
                decision=REJECTED,
            )
            == 1.0
        )


class TestExport:
    def test_prometheus_types_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("queries_total", 2)
        registry.set("cache_entries", 5, cache="plans")
        text = registry.to_prometheus()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 2" in text
        assert "# TYPE repro_cache_entries gauge" in text
        assert 'repro_cache_entries{cache="plans"} 5' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", 1, text='he said "hi" \\ bye')
        assert '\\"hi\\" \\\\ bye' in registry.to_prometheus()

    def test_json_export_carries_labels_separately(self):
        registry = MetricsRegistry()
        registry.inc("calls_total", 4, call="GU", segment="PARTS")
        payload = json.loads(registry.to_json())
        assert payload["namespace"] == "repro"
        (series,) = payload["metrics"]
        assert series == {
            "name": "repro_calls_total",
            "labels": {"call": "GU", "segment": "PARTS"},
            "value": 4.0,
        }

    def test_write_selects_format_by_extension(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("queries_total")
        prom = tmp_path / "metrics.prom"
        registry.write(str(prom))
        assert prom.read_text().startswith("# TYPE repro_queries_total")
        as_json = tmp_path / "metrics.json"
        registry.write(str(as_json))
        assert json.loads(as_json.read_text())["namespace"] == "repro"

    def test_as_dict_renders_series_names(self):
        registry = MetricsRegistry(namespace="x")
        registry.inc("a_total", 1, k="v")
        assert registry.as_dict() == {'x_a_total{k="v"}': 1.0}
