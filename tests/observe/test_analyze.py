"""EXPLAIN ANALYZE: instrumented clones, actuals, and annotations."""

from repro import execute_planned
from repro.engine import Planner
from repro.observe import (
    NodeStats,
    PlanAnalysis,
    TRACER,
    clone_plan,
    execute_analyzed,
    explain_analyze,
    set_tracing,
)
from repro.sql import parse_query

JOIN_SQL = (
    "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


class TestExecuteAnalyzed:
    def test_result_matches_the_plain_execution(self, small_db):
        plain = execute_planned(JOIN_SQL, small_db)
        analyzed = execute_analyzed(JOIN_SQL, small_db)
        assert analyzed.result.same_rows(plain)

    def test_every_node_carries_actuals(self, small_db):
        analyzed = execute_analyzed(JOIN_SQL, small_db)
        node_stats = analyzed.analysis.for_node(analyzed.plan)
        assert node_stats.loops == 1
        assert node_stats.rows == len(analyzed.result)
        for line in analyzed.explain().splitlines():
            assert "actual rows=" in line or "[never executed]" in line

    def test_estimates_and_q_error_are_annotated(self, small_db):
        text = execute_analyzed(JOIN_SQL, small_db).explain()
        assert "est rows=" in text
        assert "q-error=" in text

    def test_host_variables_are_honoured(self, small_db):
        analyzed = execute_analyzed(
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :N",
            small_db,
            params={"N": 3},
        )
        assert analyzed.result.rows == [(3,)]

    def test_to_dict_mirrors_the_plan_tree(self, small_db):
        import json

        payload = execute_analyzed(JOIN_SQL, small_db).to_dict()
        json.dumps(payload)  # must not raise
        assert payload["wall_ms"] > 0
        plan = payload["plan"]
        assert plan["loops"] == 1
        assert "children" in plan
        assert payload["stats"]["rows_scanned"] > 0

    def test_spans_attach_when_tracing(self, small_db):
        previous = set_tracing(True)
        TRACER.clear()
        try:
            execute_analyzed(JOIN_SQL, small_db)
            root = TRACER.last_root()
            names = [span.name for span in root.walk()]
            assert root.name == "analyze.execute"
            assert any(name.startswith("operator.") for name in names)
        finally:
            set_tracing(previous)
            TRACER.clear()

    def test_explain_analyze_one_shot(self, small_db):
        text = explain_analyze(JOIN_SQL, small_db)
        assert "actual rows=" in text


class TestCloneIsolation:
    def test_instrumentation_never_touches_the_source_plan(self, small_db):
        plan = Planner(small_db.catalog).plan(parse_query(JOIN_SQL))
        execute_analyzed(JOIN_SQL, small_db)
        # The counting wrapper is an *instance* attribute on clones; the
        # original nodes keep their bare class method.
        for node in _walk(plan):
            assert "rows" not in vars(node)

    def test_clone_rewires_children_but_shares_leaf_state(self, small_db):
        plan = Planner(small_db.catalog).plan(parse_query(JOIN_SQL))
        clone = clone_plan(plan)
        originals = {id(node) for node in _walk(plan)}
        for node in _walk(clone):
            assert id(node) not in originals
        assert clone.label() == plan.label()


class TestNodeStats:
    def test_q_error_is_symmetric_and_floored(self):
        stats = NodeStats(label="x", loops=1, rows=10, est_rows=5.0)
        assert stats.q_error == 2.0
        stats = NodeStats(label="x", loops=1, rows=5, est_rows=10.0)
        assert stats.q_error == 2.0
        # Zero actual rows floor at one: q-error never divides by zero.
        stats = NodeStats(label="x", loops=1, rows=0, est_rows=1.0)
        assert stats.q_error == 1.0

    def test_q_error_uses_per_loop_actuals(self):
        stats = NodeStats(label="x", loops=4, rows=40, est_rows=10.0)
        assert stats.q_error == 1.0

    def test_unexecuted_nodes_annotate_as_never_executed(self):
        class FakeNode:
            def label(self):
                return "Fake"

            def children(self):
                return []

        analysis = PlanAnalysis()
        node = FakeNode()
        analysis.register(node)
        assert analysis.annotate(node) == "  [never executed]"
        assert analysis.for_node(object()) is None
        assert analysis.annotate(object()) == ""


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
