"""Trace spans: nesting, stats deltas, budgets, and the disabled path."""

import pytest

from repro.observe.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    TRACER,
    set_tracing,
    tracing_enabled,
)


class FakeStats:
    """Duck-typed stats sink (snapshot/sub/describe/as_dict)."""

    def __init__(self, value=0):
        self.value = value

    def snapshot(self):
        return FakeStats(self.value)

    def __sub__(self, other):
        return FakeStats(self.value - other.value)

    def describe(self):
        return f"value={self.value}" if self.value else "(no work recorded)"

    def as_dict(self):
        return {"value": self.value}


def enabled_tracer(**kwargs) -> Tracer:
    tracer = Tracer(**kwargs)
    tracer.enabled = True
    return tracer


class TestSpanNesting:
    def test_children_attach_to_the_enclosing_span(self):
        tracer = enabled_tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [child.name for child in root.children] == [
            "inner.a", "inner.b",
        ]

    def test_elapsed_is_positive_and_walk_is_preorder(self):
        tracer = enabled_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        root = tracer.last_root()
        assert root.elapsed > 0
        assert [span.name for span in root.walk()] == ["a", "b"]

    def test_separate_top_level_spans_become_separate_roots(self):
        tracer = enabled_tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]


class TestStatsDelta:
    def test_span_records_the_counter_delta(self):
        tracer = enabled_tracer()
        stats = FakeStats(10)
        with tracer.span("work", stats=stats):
            stats.value += 7
        assert tracer.last_root().stats_delta.value == 7

    def test_delta_excludes_work_outside_the_span(self):
        tracer = enabled_tracer()
        stats = FakeStats()
        stats.value += 100
        with tracer.span("work", stats=stats):
            stats.value += 1
        stats.value += 100
        assert tracer.last_root().stats_delta.value == 1


class TestErrors:
    def test_exception_is_recorded_and_not_suppressed(self):
        tracer = enabled_tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        root = tracer.last_root()
        assert root.attributes["error"] == "ValueError"
        assert root.ended > 0  # the span still closed

    def test_exception_unwinds_past_open_children(self):
        tracer = enabled_tracer()
        outer_cm = tracer.span("outer")
        inner_cm = tracer.span("inner")
        outer_cm.__enter__()
        inner_cm.__enter__()
        # Exit the outer span without exiting the inner one, as an
        # exception raised between the two __exit__ calls would.
        outer_cm.__exit__(RuntimeError, RuntimeError("x"), None)
        assert tracer._stack == []
        assert tracer.last_root().name == "outer"


class TestDisabledPath:
    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything") is NULL_SPAN

    def test_null_span_enters_to_none(self):
        with NULL_SPAN as span:
            assert span is None

    def test_set_tracing_returns_the_previous_state(self):
        previous = set_tracing(True)
        try:
            assert tracing_enabled()
            assert set_tracing(False) is True
            assert not tracing_enabled()
        finally:
            set_tracing(previous)
            TRACER.clear()


class TestBudgets:
    def test_span_budget_truncates_instead_of_growing(self):
        tracer = enabled_tracer(max_spans=2)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert tracer.span("three") is NULL_SPAN
        assert tracer.truncated == 1
        assert "dropped over budget" in tracer.render()

    def test_clear_resets_spans_and_budget(self):
        tracer = enabled_tracer(max_spans=1)
        with tracer.span("one"):
            pass
        tracer.clear()
        assert tracer.roots == []
        with tracer.span("again"):
            pass
        assert tracer.last_root().name == "again"

    def test_attach_adopts_a_finished_subtree(self):
        tracer = enabled_tracer()
        synthetic = Span("operator.SeqScan")
        synthetic.children.append(Span("operator.Filter"))
        with tracer.span("execute"):
            tracer.attach(synthetic)
        root = tracer.last_root()
        assert [span.name for span in root.walk()] == [
            "execute", "operator.SeqScan", "operator.Filter",
        ]

    def test_attach_respects_the_span_budget(self):
        tracer = enabled_tracer(max_spans=1)
        with tracer.span("execute"):
            subtree = Span("a")
            subtree.children.append(Span("b"))
            tracer.attach(subtree)
        assert tracer.truncated == 2
        assert tracer.last_root().children == []


class TestRendering:
    def test_render_includes_attributes_and_stats(self):
        tracer = enabled_tracer()
        stats = FakeStats()
        with tracer.span("query", stats=stats, sql="SELECT 1") as span:
            stats.value += 3
            span.attributes["rows"] = 3
        text = tracer.render()
        assert "query" in text
        assert "sql=SELECT 1" in text
        assert "rows=3" in text
        assert "value=3" in text

    def test_render_without_spans(self):
        assert Tracer().render() == "(no spans recorded)"

    def test_to_dicts_is_json_ready(self):
        import json

        tracer = enabled_tracer()
        stats = FakeStats()
        with tracer.span("outer", stats=stats):
            stats.value += 1
            with tracer.span("inner"):
                pass
        (payload,) = tracer.to_dicts()
        json.dumps(payload)  # must not raise
        assert payload["name"] == "outer"
        assert payload["stats"] == {"value": 1}
        assert payload["children"][0]["name"] == "inner"
