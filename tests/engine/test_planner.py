"""Physical planner: operator choice, pushdown, interpreter agreement."""

import pytest

from repro.engine import (
    Database,
    Planner,
    PlannerOptions,
    Stats,
    execute,
    execute_planned,
)
from repro.engine.operators import (
    Filter,
    HashDistinct,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortDistinct,
    SortMergeJoin,
    SortSetOp,
)


DDL = """
CREATE TABLE R (A INT, B INT, PRIMARY KEY (A));
CREATE TABLE S (C INT, D INT, PRIMARY KEY (C));
INSERT INTO R VALUES (1, 10), (2, 20), (3, NULL), (4, 10);
INSERT INTO S VALUES (5, 10), (6, 20), (7, NULL), (8, 10);
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


def plan_for(db, sql, **options):
    planner = Planner(db.catalog, PlannerOptions(**options) if options else None)
    return planner.plan(sql)


def nodes_of(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


class TestOperatorChoice:
    def test_equi_join_uses_hash_join_by_default(self, db):
        plan = plan_for(db, "SELECT A, C FROM R, S WHERE R.B = S.D")
        assert nodes_of(plan, HashJoin)

    def test_merge_join_option(self, db):
        plan = plan_for(
            db, "SELECT A, C FROM R, S WHERE R.B = S.D", join_method="merge"
        )
        assert nodes_of(plan, SortMergeJoin)

    def test_nested_option_forces_nested_loops(self, db):
        plan = plan_for(
            db, "SELECT A, C FROM R, S WHERE R.B = S.D", join_method="nested"
        )
        assert nodes_of(plan, NestedLoopJoin)
        assert not nodes_of(plan, HashJoin)

    def test_cross_product_is_nested_loop(self, db):
        plan = plan_for(db, "SELECT A, C FROM R, S")
        assert nodes_of(plan, NestedLoopJoin)

    def test_non_equi_join_predicate_is_not_hash_joined(self, db):
        plan = plan_for(db, "SELECT A, C FROM R, S WHERE R.B < S.D")
        assert not nodes_of(plan, HashJoin)

    def test_distinct_methods(self, db):
        assert nodes_of(
            plan_for(db, "SELECT DISTINCT B FROM R"), SortDistinct
        )
        assert nodes_of(
            plan_for(db, "SELECT DISTINCT B FROM R", distinct_method="hash"),
            HashDistinct,
        )

    def test_single_table_filter_pushdown(self, db):
        # B is not indexed, so the local conjunct is a Filter pushed
        # below the join, directly over the R scan.
        plan = plan_for(db, "SELECT A, C FROM R, S WHERE R.A = S.C AND R.B = 10")
        join = nodes_of(plan, HashJoin)[0]
        left_filters = nodes_of(join.left, Filter)
        assert left_filters and "R.B = 10" in left_filters[0].label()

    def test_key_equality_becomes_index_scan(self, db):
        # A is R's primary key: the local conjunct turns into a hash
        # index probe instead of SeqScan+Filter.
        plan = plan_for(db, "SELECT A, C FROM R, S WHERE R.B = S.D AND R.A = 1")
        join = nodes_of(plan, HashJoin)[0]
        scans = nodes_of(join.left, IndexScan)
        assert scans and scans[0].key_columns == ("A",)
        assert not nodes_of(join.left, Filter)

    def test_index_scans_can_be_disabled(self, db):
        plan = plan_for(
            db,
            "SELECT A, C FROM R, S WHERE R.B = S.D AND R.A = 1",
            index_scans=False,
        )
        assert not nodes_of(plan, IndexScan)
        join = nodes_of(plan, HashJoin)[0]
        left_filters = nodes_of(join.left, Filter)
        assert left_filters and "R.A = 1" in left_filters[0].label()

    def test_setop_plan(self, db):
        plan = plan_for(db, "SELECT B FROM R INTERSECT SELECT D FROM S")
        assert isinstance(plan, SortSetOp)

    def test_order_by_adds_sort(self, db):
        plan = plan_for(db, "SELECT A FROM R ORDER BY A")
        assert isinstance(plan, Sort)

    def test_explain_renders_tree(self, db):
        plan = plan_for(db, "SELECT DISTINCT A, C FROM R, S WHERE R.B = S.D")
        text = plan.explain()
        assert "Distinct(sort)" in text
        assert "HashJoin" in text
        assert "SeqScan(R)" in text


QUERIES = [
    "SELECT * FROM R",
    "SELECT A, C FROM R, S WHERE R.B = S.D",
    "SELECT A, C FROM R, S WHERE R.B = S.D AND R.A > 1",
    "SELECT DISTINCT B FROM R, S",
    "SELECT A, C FROM R, S WHERE R.B < S.D",
    "SELECT A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.D = R.B)",
    "SELECT A FROM R WHERE B IN (SELECT D FROM S)",
    "SELECT B FROM R INTERSECT ALL SELECT D FROM S",
    "SELECT B FROM R EXCEPT SELECT D FROM S",
    "SELECT DISTINCT A FROM R ORDER BY A DESC",
    "SELECT A FROM R WHERE B = 10 OR B = 20",
    "SELECT R.A, X.A FROM R, R X WHERE R.B = X.B",
]


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("join_method", ["hash", "merge", "nested"])
def test_planner_agrees_with_interpreter(db, sql, join_method):
    """Differential test: every physical strategy must equal the
    reference interpreter on every supported query shape."""
    reference = execute(sql, db)
    planned = execute_planned(
        sql, db, options=PlannerOptions(join_method=join_method)
    )
    assert reference.same_rows(planned)


def test_hash_join_skips_null_keys(db):
    stats = Stats()
    result = execute_planned(
        "SELECT A, C FROM R, S WHERE R.B = S.D", db, stats=stats
    )
    # rows with NULL join keys match nothing
    assert all(row[0] != 3 for row in result.rows)
    assert stats.hash_probes > 0


def test_subquery_runs_through_interpreter(db):
    stats = Stats()
    execute_planned(
        "SELECT A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.D = R.B)",
        db,
        stats=stats,
    )
    assert stats.subquery_executions == 4  # once per R row


def test_invalid_planner_options_rejected():
    with pytest.raises(ValueError):
        PlannerOptions(join_method="quantum")
    with pytest.raises(ValueError):
        PlannerOptions(distinct_method="psychic")


class TestNullSafeJoins:
    """The planner recognizes (a IS NULL AND b IS NULL) OR a = b as a
    null-safe join key (SQL's IS NOT DISTINCT FROM)."""

    SQL = (
        "SELECT R.A, S.C FROM R, S "
        "WHERE (R.B IS NULL AND S.D IS NULL) OR R.B = S.D"
    )

    def test_pattern_becomes_hash_join(self, db):
        plan = plan_for(db, self.SQL)
        joins = nodes_of(plan, HashJoin)
        assert joins and joins[0].null_safe == [True]

    def test_null_keys_match_under_null_safe_join(self, db):
        result = execute_planned(self.SQL, db)
        # rows (3, NULL) and (7, NULL) must pair up
        assert (3, 7) in result.rows

    def test_agrees_with_interpreter(self, db):
        reference = execute(self.SQL, db)
        for join_method in ("hash", "merge", "nested"):
            planned = execute_planned(
                self.SQL, db, options=PlannerOptions(join_method=join_method)
            )
            assert reference.same_rows(planned)

    def test_plain_equality_keys_stay_null_rejecting(self, db):
        plan = plan_for(db, "SELECT R.A, S.C FROM R, S WHERE R.B = S.D")
        joins = nodes_of(plan, HashJoin)
        assert joins and joins[0].null_safe == [False]

    def test_unrelated_disjunction_not_misdetected(self, db):
        plan = plan_for(
            db,
            "SELECT R.A, S.C FROM R, S "
            "WHERE (R.A IS NULL AND S.C IS NULL) OR R.B = S.D",
        )
        # null tests cover different columns than the equality: no key
        assert not nodes_of(plan, HashJoin)
