"""Plan caching: hits, misses, and fingerprint-based invalidation.

The cache key is ``(database.fingerprint(), sql_text, options)``, so a
stale plan can never be returned — DDL bumps the catalog version and any
row mutation bumps a table's data version, which both move the
fingerprint and turn the next lookup into a miss.  Host-variable values
are deliberately *not* part of the key: plans are parameterized and
resolve bindings at execution time.
"""

import pytest

from repro import Database, Stats, clear_all_caches, execute_planned, set_caches_enabled
from repro.engine import GLOBAL_PLAN_CACHE, PlanCache, PlannerOptions

DDL = """
CREATE TABLE S (
    SNO INT NOT NULL,
    CITY VARCHAR(20),
    PRIMARY KEY (SNO)
);
INSERT INTO S VALUES (1, 'LONDON');
INSERT INTO S VALUES (2, 'PARIS');
"""

SQL = "SELECT SNO, CITY FROM S WHERE SNO = :N"


@pytest.fixture
def db():
    return Database.from_script(DDL)


def test_repeated_statement_hits_the_cache(db):
    cache = PlanCache()
    stats = Stats()
    first = execute_planned(SQL, db, params={"N": 1}, stats=stats, plan_cache=cache)
    second = execute_planned(SQL, db, params={"N": 1}, stats=stats, plan_cache=cache)
    assert first.same_rows(second)
    assert (cache.misses, cache.hits) == (1, 1)
    assert (stats.plan_cache_misses, stats.plan_cache_hits) == (1, 1)


def test_host_variable_values_are_not_part_of_the_key(db):
    cache = PlanCache()
    london = execute_planned(SQL, db, params={"N": 1}, plan_cache=cache)
    paris = execute_planned(SQL, db, params={"N": 2}, plan_cache=cache)
    # One plan, two correct parameterized executions.
    assert (cache.misses, cache.hits) == (1, 1)
    assert [row[1] for row in london.rows] == ["LONDON"]
    assert [row[1] for row in paris.rows] == ["PARIS"]


def test_planner_options_are_part_of_the_key(db):
    cache = PlanCache()
    sql = "SELECT SNO FROM S"
    execute_planned(sql, db, plan_cache=cache)
    execute_planned(
        sql, db, plan_cache=cache, options=PlannerOptions(join_method="nested")
    )
    assert cache.misses == 2  # different options, different plans


def test_data_mutation_invalidates_cached_plans(db):
    cache = PlanCache()
    sql = "SELECT SNO FROM S WHERE CITY = 'OSLO'"
    before = execute_planned(sql, db, plan_cache=cache)
    assert before.rows == []
    db.load("S", [(3, "OSLO")])
    after = execute_planned(sql, db, plan_cache=cache)
    assert [row[0] for row in after.rows] == [3]
    assert (cache.misses, cache.hits) == (2, 0)


def test_ddl_invalidates_cached_plans(db):
    cache = PlanCache()
    sql = "SELECT SNO FROM S"
    execute_planned(sql, db, plan_cache=cache)
    db.run_script("CREATE TABLE UNRELATED (X INT, PRIMARY KEY (X))")
    execute_planned(sql, db, plan_cache=cache)
    assert (cache.misses, cache.hits) == (2, 0)


def test_disabled_caches_neither_store_nor_serve(db):
    cache = PlanCache()
    previous = set_caches_enabled(False)
    try:
        first = execute_planned(SQL, db, params={"N": 1}, plan_cache=cache)
        second = execute_planned(SQL, db, params={"N": 1}, plan_cache=cache)
    finally:
        set_caches_enabled(previous)
    assert first.same_rows(second)
    assert (cache.hits, cache.misses) == (0, 0)


def test_global_plan_cache_is_the_default(db):
    clear_all_caches()
    hits, misses = GLOBAL_PLAN_CACHE.hits, GLOBAL_PLAN_CACHE.misses
    stats = Stats()
    execute_planned(SQL, db, params={"N": 1}, stats=stats)
    execute_planned(SQL, db, params={"N": 2}, stats=stats)
    assert GLOBAL_PLAN_CACHE.misses == misses + 1
    assert GLOBAL_PLAN_CACHE.hits == hits + 1
    assert (stats.plan_cache_misses, stats.plan_cache_hits) == (1, 1)


def test_cached_plans_are_reexecutable_and_stateless(db):
    cache = PlanCache()
    sql = "SELECT SNO FROM S WHERE SNO = 1"
    runs = [execute_planned(sql, db, plan_cache=cache) for _ in range(3)]
    assert all(run.same_rows(runs[0]) for run in runs)
    assert [row[0] for row in runs[0].rows] == [1]
    assert cache.hits == 2
