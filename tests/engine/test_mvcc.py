"""MVCC snapshot isolation: visibility, conflicts, and invalidation.

The contract under test: readers pinned to their begin snapshot never
block and never see uncommitted or later-committed writes; the first
committer of two conflicting writers wins and the loser gets a typed
:class:`~repro.errors.WriteConflictError`; a commit bumps the data
version of exactly the tables it touched, which is what the scoped
plan-cache / statistics / correction keys build on.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.errors import (
    TransactionError,
    UniquenessViolationError,
    WriteConflictError,
)
from repro.observe.metrics import PROCESS_METRICS


def fresh_db() -> Database:
    return Database.from_script(
        """
CREATE TABLE T (A INT NOT NULL, B INT, PRIMARY KEY (A));
CREATE TABLE OTHER (X INT NOT NULL, PRIMARY KEY (X));
INSERT INTO T VALUES (1, 10), (2, 20);
INSERT INTO OTHER VALUES (7);
"""
    )


def rows(db: Database, table: str = "T"):
    return sorted(tuple(r) for r in db.table(table).rows)


def txn_rows(txn, table: str = "T"):
    view = txn.view()
    return sorted(tuple(r) for r in view.table(table).rows)


class TestSnapshotVisibility:
    def test_uncommitted_insert_invisible_to_others(self):
        db = fresh_db()
        writer = db.begin()
        writer.insert_row("T", (3, 30))
        reader = db.begin()
        assert txn_rows(reader) == [(1, 10), (2, 20)]
        assert txn_rows(writer) == [(1, 10), (2, 20), (3, 30)]
        writer.commit()
        # The reader stays pinned to its begin snapshot even after the
        # writer commits.
        assert txn_rows(reader) == [(1, 10), (2, 20)]
        reader.rollback()
        assert rows(db) == [(1, 10), (2, 20), (3, 30)]

    def test_reader_pinned_across_delete(self):
        db = fresh_db()
        reader = db.begin()
        writer = db.begin()
        (version,) = [
            v for v in writer.visible_versions("T") if v.row[0] == 1
        ]
        writer.delete_version("T", version)
        writer.commit()
        assert txn_rows(reader) == [(1, 10), (2, 20)]
        reader.rollback()
        assert rows(db) == [(2, 20)]

    def test_transaction_started_after_commit_sees_it(self):
        db = fresh_db()
        writer = db.begin()
        writer.insert_row("T", (3, 30))
        writer.commit()
        late = db.begin()
        assert txn_rows(late) == [(1, 10), (2, 20), (3, 30)]
        late.rollback()

    def test_rollback_discards_everything(self):
        db = fresh_db()
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        (version,) = [v for v in txn.visible_versions("T") if v.row[0] == 2]
        txn.delete_version("T", version)
        txn.rollback()
        assert rows(db) == [(1, 10), (2, 20)]

    def test_commit_after_rollback_rejected(self):
        db = fresh_db()
        txn = db.begin()
        txn.rollback()
        with pytest.raises(TransactionError):
            txn.commit()


class TestConflicts:
    def test_first_committer_wins(self):
        db = fresh_db()
        one, two = db.begin(), db.begin()
        for txn in (one, two):
            (version,) = [
                v for v in txn.visible_versions("T") if v.row[0] == 1
            ]
            txn.delete_version("T", version)
            txn.insert_row("T", (1, 99 if txn is one else 77))
        one.commit()
        with pytest.raises(WriteConflictError):
            two.commit()
        # The loser aborted: its writes are gone, the winner's stand.
        assert rows(db) == [(1, 99), (2, 20)]

    def test_loser_rollback_is_safe_noop(self):
        db = fresh_db()
        one, two = db.begin(), db.begin()
        for txn in (one, two):
            (version,) = [
                v for v in txn.visible_versions("T") if v.row[0] == 2
            ]
            txn.delete_version("T", version)
        one.commit()
        with pytest.raises(WriteConflictError):
            two.commit()
        two.rollback()  # must not raise

    def test_disjoint_writers_both_commit(self):
        db = fresh_db()
        one, two = db.begin(), db.begin()
        one.insert_row("T", (3, 30))
        two.insert_row("T", (4, 40))
        one.commit()
        two.commit()
        assert rows(db) == [(1, 10), (2, 20), (3, 30), (4, 40)]


class TestUniqueness:
    def test_online_duplicate_detected_at_buffer_time(self):
        db = fresh_db()
        txn = db.begin()
        with pytest.raises(UniquenessViolationError):
            txn.insert_row("T", (1, 0))
        txn.rollback()

    def test_duplicate_within_transaction(self):
        db = fresh_db()
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        with pytest.raises(UniquenessViolationError):
            txn.insert_row("T", (3, 31))
        txn.rollback()

    def test_delete_frees_key_for_reinsert(self):
        db = fresh_db()
        txn = db.begin()
        (version,) = [v for v in txn.visible_versions("T") if v.row[0] == 1]
        txn.delete_version("T", version)
        txn.insert_row("T", (1, 11))  # key freed by the buffered delete
        txn.commit()
        assert rows(db) == [(1, 11), (2, 20)]

    def test_concurrent_committed_duplicate_caught_at_commit(self):
        db = fresh_db()
        one, two = db.begin(), db.begin()
        one.insert_row("T", (5, 1))
        two.insert_row("T", (5, 2))  # not visible to each other yet
        one.commit()
        with pytest.raises(UniquenessViolationError):
            two.commit()
        assert rows(db) == [(1, 10), (2, 20), (5, 1)]


class TestScopedInvalidation:
    def test_commit_bumps_only_touched_tables(self):
        db = fresh_db()
        before_t = db.table("T").version
        before_other = db.table("OTHER").version
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        txn.commit()
        assert db.table("T").version == before_t + 1
        assert db.table("OTHER").version == before_other

    def test_invalidation_counters_prove_precision(self):
        db = fresh_db()
        scoped = PROCESS_METRICS.value("invalidation_scoped_total")
        total = PROCESS_METRICS.value("invalidation_total")
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        txn.commit()
        # One commit touching one of two tables: scoped moves by 1,
        # total by 2 — the gap is the savings scoping buys.
        assert PROCESS_METRICS.value("invalidation_scoped_total") == scoped + 1
        assert PROCESS_METRICS.value("invalidation_total") == total + 2

    def test_commit_and_rollback_counters(self):
        db = fresh_db()
        commits = PROCESS_METRICS.value("txn_commits_total")
        rollbacks = PROCESS_METRICS.value("txn_rollbacks_total")
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        txn.commit()
        other = db.begin()
        other.insert_row("T", (4, 40))
        other.rollback()
        assert PROCESS_METRICS.value("txn_commits_total") == commits + 1
        assert PROCESS_METRICS.value("txn_rollbacks_total") == rollbacks + 1


class TestSavepoints:
    def test_restore_rewinds_partial_statement(self):
        db = fresh_db()
        txn = db.begin()
        txn.insert_row("T", (3, 30))
        state = txn.savepoint()
        txn.insert_row("T", (4, 40))
        txn.restore(state)
        txn.commit()
        assert rows(db) == [(1, 10), (2, 20), (3, 30)]
