"""Partition-parallel execution: byte-identical results and gating.

The contract under test: with a parallel execution context, eligible
operators split work into row-range morsels, and the output **sequence**
(not just the multiset) is identical to the serial operator's — plus
all the conservative-gating rules that keep ineligible paths serial.
"""

import pytest

from repro import Stats, execute_planned
from repro.engine import ParallelOptions
from repro.engine.parallel import (
    MorselPool,
    ParallelExecution,
    parallel_execution,
    shared_pool,
)
from repro.resilience import FAULTS, SITE_OPERATOR
from repro.workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_database,
    generate,
)

#: Aggressive options: tiny morsels, no cost gate — forces the parallel
#: paths even on the small worked-example instance.
FORCED = ParallelOptions(workers=4, morsel_size=7, min_parallel_rows=1)


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=12, parts_per_supplier=4, agents_per_supplier=2))
    )


@pytest.fixture(scope="module")
def big_db():
    return build_database(
        generate(SupplierScale(suppliers=300, parts_per_supplier=10, agents_per_supplier=3))
    )


@pytest.mark.parametrize(
    "query", PAPER_QUERIES, ids=lambda q: f"E{q.example}"
)
def test_paper_examples_byte_identical(db, query):
    """E1-E11: the parallel row *sequence* equals the serial one."""
    serial = execute_planned(query.sql, db, params=query.params)
    parallel = execute_planned(
        query.sql, db, params=query.params, parallel=FORCED
    )
    assert parallel.columns == serial.columns
    assert parallel.rows == serial.rows  # sequence, not just multiset


def test_large_join_byte_identical_and_actually_parallel(big_db):
    sql = (
        "SELECT S.SNAME, P.PNAME FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
    )
    serial_stats, parallel_stats = Stats(), Stats()
    serial = execute_planned(sql, big_db, stats=serial_stats)
    parallel = execute_planned(
        sql,
        big_db,
        stats=parallel_stats,
        parallel=ParallelOptions(workers=4, morsel_size=128, min_parallel_rows=256),
    )
    assert parallel.rows == serial.rows
    assert parallel_stats.parallel_joins >= 1
    assert parallel_stats.parallel_morsels > 1
    # Work accounting is thread-count independent.  parallel_* and
    # vectorized_* counters describe which code path ran (parallel joins
    # delegate to the tuple machinery), so they legitimately differ.
    for name, value in serial_stats.as_dict().items():
        if (
            name.startswith("parallel")
            or name.startswith("plan_cache")
            or name.startswith("vectorized")
        ):
            continue
        assert getattr(parallel_stats, name) == value, name


def test_small_inputs_stay_serial(db):
    """The cost gate: inputs below min_parallel_rows never go parallel."""
    stats = Stats()
    execute_planned(
        "SELECT SNO FROM SUPPLIER WHERE BUDGET > 0",
        db,
        stats=stats,
        parallel=ParallelOptions(workers=4, min_parallel_rows=1_000_000),
    )
    assert stats.parallel_scans == 0
    assert stats.parallel_joins == 0
    assert stats.parallel_morsels == 0


def test_armed_faults_disable_parallelism(big_db):
    """With any fault armed, per-row trigger opportunities must be
    preserved — so execution stays serial."""
    stats = Stats()
    # probability=0.0: armed but never fires, isolating the gating test.
    with FAULTS.inject(SITE_OPERATOR, probability=0.0):
        execute_planned(
            "SELECT S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            big_db,
            stats=stats,
            parallel=ParallelOptions(workers=4, morsel_size=64, min_parallel_rows=1),
        )
    assert stats.parallel_scans == 0
    assert stats.parallel_joins == 0


def test_workers_one_normalizes_to_serial():
    assert parallel_execution(ParallelOptions(workers=1)) is None
    assert parallel_execution(None) is None
    live = parallel_execution(ParallelOptions(workers=2))
    assert isinstance(live, ParallelExecution)
    assert parallel_execution(live) is live


def test_morsel_ranges_cover_input_exactly():
    par = ParallelExecution(
        ParallelOptions(workers=2, morsel_size=10), shared_pool(2)
    )
    morsels = par.morsels(35)
    assert morsels == [(0, 10), (10, 20), (20, 30), (30, 35)]
    assert par.morsels(0) == []


def test_parallel_options_validation():
    with pytest.raises(ValueError):
        ParallelOptions(workers=0)
    with pytest.raises(ValueError):
        ParallelOptions(morsel_size=0)
    with pytest.raises(ValueError):
        ParallelOptions(min_parallel_rows=-1)


def test_pool_run_ordered_preserves_order_and_propagates():
    pool = MorselPool(workers=4)
    try:
        items = list(range(50))
        assert pool.run_ordered(lambda x: x * 2, items) == [
            x * 2 for x in items
        ]
        collected = []
        pool.run_ordered(lambda x: x, items, collect=collected.append)
        assert collected == items

        def boom(x):
            if x == 3:
                raise RuntimeError("worker died")
            return x

        with pytest.raises(RuntimeError):
            pool.run_ordered(boom, items)
    finally:
        pool.shutdown()
