"""Three-valued predicate evaluation."""

import pytest

from repro.engine import Evaluator, RelSchema, Scope
from repro.engine.schema import ColumnInfo
from repro.errors import (
    AmbiguousColumnError,
    ExecutionError,
    MissingHostVariableError,
    UnknownColumnError,
)
from repro.sql import parse_condition
from repro.types import FALSE, NULL, TRUE, UNKNOWN


SCHEMA = RelSchema(
    [
        ColumnInfo("T", "A"),
        ColumnInfo("T", "B"),
        ColumnInfo("S", "C"),
    ]
)


def scope(a, b, c):
    return Scope(SCHEMA, (a, b, c))


def evaluate(text, row=(1, 2, 3), params=None):
    return Evaluator(params=params).predicate(
        parse_condition(text), scope(*row)
    )


class TestComparisons:
    def test_true_false(self):
        assert evaluate("T.A = 1") is TRUE
        assert evaluate("T.A = 2") is FALSE

    def test_null_comparison_unknown(self):
        assert evaluate("T.A = 1", row=(NULL, 2, 3)) is UNKNOWN
        assert evaluate("T.A <> 1", row=(NULL, 2, 3)) is UNKNOWN

    def test_column_to_column(self):
        assert evaluate("T.A = S.C", row=(3, 0, 3)) is TRUE

    def test_unqualified_resolution(self):
        assert evaluate("B = 2") is TRUE

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            evaluate("T.NOPE = 1")

    def test_ambiguous_column_raises(self):
        ambiguous = RelSchema([ColumnInfo("T", "X"), ColumnInfo("S", "X")])
        with pytest.raises(AmbiguousColumnError):
            Evaluator().predicate(
                parse_condition("X = 1"), Scope(ambiguous, (1, 2))
            )


class TestConnectives:
    def test_and_short_circuit_false(self):
        assert evaluate("T.A = 99 AND T.B = 2") is FALSE

    def test_unknown_propagates_through_and(self):
        assert evaluate("T.A = 1 AND S.C = 1", row=(1, 2, NULL)) is UNKNOWN

    def test_or_true_wins_over_unknown(self):
        assert evaluate("T.A = 1 OR S.C = 1", row=(1, 2, NULL)) is TRUE

    def test_not_unknown_is_unknown(self):
        assert evaluate("NOT S.C = 1", row=(1, 2, NULL)) is UNKNOWN


class TestSpecialPredicates:
    def test_is_null(self):
        assert evaluate("S.C IS NULL", row=(1, 2, NULL)) is TRUE
        assert evaluate("S.C IS NOT NULL", row=(1, 2, NULL)) is FALSE
        assert evaluate("S.C IS NULL") is FALSE

    def test_between(self):
        assert evaluate("T.B BETWEEN 1 AND 3") is TRUE
        assert evaluate("T.B BETWEEN 3 AND 9") is FALSE
        assert evaluate("T.B NOT BETWEEN 3 AND 9") is TRUE
        assert evaluate("S.C BETWEEN 1 AND 9", row=(1, 2, NULL)) is UNKNOWN

    def test_in_list(self):
        assert evaluate("T.B IN (1, 2, 3)") is TRUE
        assert evaluate("T.B IN (8, 9)") is FALSE
        assert evaluate("T.B NOT IN (8, 9)") is TRUE

    def test_in_list_with_null_member_unknown_when_no_match(self):
        # 2 IN (8, NULL) is UNKNOWN (the NULL could be 2).
        assert evaluate("T.B IN (8, NULL)") is UNKNOWN
        # 2 IN (2, NULL) is TRUE.
        assert evaluate("T.B IN (2, NULL)") is TRUE

    def test_null_literal_condition_is_unknown(self):
        assert evaluate("T.A = 1 AND S.C = NULL") is UNKNOWN


class TestHostVariables:
    def test_bound_host_var(self):
        assert evaluate("T.A = :X", params={"X": 1}) is TRUE

    def test_host_var_names_case_insensitive(self):
        assert evaluate("T.A = :x", params={"x": 1}) is TRUE

    def test_missing_host_var_raises(self):
        with pytest.raises(MissingHostVariableError):
            evaluate("T.A = :MISSING")

    def test_null_host_var_gives_unknown(self):
        assert evaluate("T.A = :X", params={"X": NULL}) is UNKNOWN


class TestErrors:
    def test_subquery_without_runner_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("EXISTS (SELECT * FROM T)")

    def test_qualifies_is_false_interpreted(self):
        evaluator = Evaluator()
        assert evaluator.qualifies(parse_condition("T.A = 1"), scope(1, 2, 3))
        assert not evaluator.qualifies(
            parse_condition("S.C = 1"), scope(1, 2, NULL)
        )

    def test_qualifies_counts_predicate_evals(self):
        evaluator = Evaluator()
        evaluator.qualifies(parse_condition("T.A = 1"), scope(1, 2, 3))
        assert evaluator.stats.predicate_evals == 1


class TestOuterScopes:
    def test_inner_frame_shadows_outer(self):
        outer = Scope(RelSchema([ColumnInfo("O", "X")]), (10,))
        inner = outer.child(RelSchema([ColumnInfo("I", "X")]), (20,))
        evaluator = Evaluator()
        assert evaluator.predicate(parse_condition("X = 20"), inner) is TRUE
        assert evaluator.predicate(parse_condition("O.X = 10"), inner) is TRUE
