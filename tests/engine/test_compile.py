"""Compiled predicates must agree with the interpretive Evaluator.

The compiler's contract is "identical by construction": anything it
cannot reproduce exactly (subqueries, outer references, unbound host
variables, ambiguous names) aborts compilation, and everything it does
compile returns the same three-valued verdict as
:meth:`Evaluator.predicate` — including on NULL-heavy rows, where the
short-circuit and folding rules are easiest to get wrong.
"""

import itertools

import pytest

from repro.engine import compile_filter, compile_predicate, set_compilation_enabled
from repro.engine.evaluator import Evaluator
from repro.engine.schema import RelSchema, Scope
from repro.sql import parse_condition
from repro.types import NULL, FALSE, TRUE, UNKNOWN

SCHEMA = RelSchema.for_table("T", ["A", "B", "C"])

# Every combination of NULL/low/high over two numeric columns and a
# string column: 27 rows exercising all three truth values.
ROWS = [
    (a, b, c)
    for a, b, c in itertools.product(
        (NULL, 1, 2), (NULL, 1, 2), (NULL, "X", "Y")
    )
]

CONDITIONS = [
    "A = B",
    "A < B",
    "A <> B",
    "A = 1 AND B = 2",
    "A = 1 OR B IS NULL",
    "NOT A = B",
    "A BETWEEN 0 AND B",
    "A NOT BETWEEN B AND 2",
    "A IN (1, 2, B)",
    "B NOT IN (A, 2)",
    "C = 'X' OR C IS NOT NULL",
    "(A = 1 OR B = 2) AND NOT C = 'Y'",
    "A IS NULL AND B IS NULL AND C IS NULL",
    "A = :P AND C <> :Q",
    "A = 1 AND 1 = 1",
    "A = 1 OR 1 = 0",
]

PARAMS = {"P": 1, "Q": "X"}


@pytest.mark.parametrize("text", CONDITIONS)
def test_compiled_verdicts_match_interpreter_on_null_heavy_rows(text):
    expr = parse_condition(text)
    evaluator = Evaluator(params=PARAMS)
    predicate = compile_predicate(expr, SCHEMA, PARAMS)
    row_test = compile_filter(expr, SCHEMA, PARAMS)
    assert predicate is not None and row_test is not None
    for row in ROWS:
        scope = Scope(SCHEMA, row)
        expected = evaluator.predicate(expr, scope)
        assert predicate(row) is expected, f"{text} on {row}"
        # compile_filter applies the false-interpretation ⌊P⌋.
        assert row_test(row) == evaluator.qualifies(expr, scope)


@pytest.mark.parametrize(
    "text, verdict",
    [
        ("5 = 5", TRUE),
        ("1 = 0", FALSE),
        ("NULL = NULL", UNKNOWN),
        ("1 = 0 AND A = 1", FALSE),  # absorbing FALSE folds the AND
        ("1 = 1 OR A = 1", TRUE),  # absorbing TRUE folds the OR
        (":P = 1", TRUE),  # host variables fold to constants
        ("2 BETWEEN 1 AND 3", TRUE),
        ("'X' IN ('Y', 'Z')", FALSE),
        ("NULL IS NULL", TRUE),
    ],
)
def test_constant_subtrees_fold_at_compile_time(text, verdict):
    predicate = compile_predicate(parse_condition(text), SCHEMA, PARAMS)
    assert predicate is not None
    # A folded predicate never reads the row: the empty tuple would
    # raise IndexError on any surviving column access.
    assert predicate(()) is verdict


@pytest.mark.parametrize(
    "text",
    [
        "EXISTS (SELECT * FROM T)",  # subqueries need the interpreter
        "A IN (SELECT A FROM T)",
        "X.A = 1",  # outer (unknown-qualifier) reference
        "D = 1",  # unknown column
        ":MISSING = A",  # unbound host variable
    ],
)
def test_uncompilable_expressions_fall_back(text):
    expr = parse_condition(text)
    assert compile_predicate(expr, SCHEMA, PARAMS) is None
    assert compile_filter(expr, SCHEMA, PARAMS) is None


def test_ambiguous_unqualified_column_falls_back():
    # Both inputs expose an A; the interpreter raises on resolution, so
    # the compiler must decline rather than guess.
    joined = RelSchema.for_table("R", ["A"]).concat(
        RelSchema.for_table("S", ["A"])
    )
    assert compile_predicate(parse_condition("A = 1"), joined) is None
    # A qualified reference stays compilable.
    qualified = compile_predicate(parse_condition("R.A = 1"), joined)
    assert qualified is not None
    assert qualified((1, 2)) is TRUE


def test_compile_filter_none_expr_means_no_test():
    assert compile_filter(None, SCHEMA) is None


def test_compilation_toggle_disables_and_restores():
    expr = parse_condition("A = 1")
    previous = set_compilation_enabled(False)
    try:
        assert compile_predicate(expr, SCHEMA) is None
        assert compile_filter(expr, SCHEMA) is None
    finally:
        assert set_compilation_enabled(previous) is False
    assert compile_predicate(expr, SCHEMA) is not None
