"""Reference-interpreter semantics."""

import pytest

from repro.engine import Database, Stats, execute
from repro.errors import ExecutionError, UnknownTableError
from repro.types import NULL


DDL = """
CREATE TABLE R (A INT, B INT, PRIMARY KEY (A));
CREATE TABLE S (C INT, D INT, PRIMARY KEY (C));
INSERT INTO R VALUES (1, 10), (2, 20), (3, NULL);
INSERT INTO S VALUES (5, 10), (6, 20), (7, NULL);
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


class TestSelection:
    def test_where_filters_unknown(self, db):
        result = execute("SELECT A FROM R WHERE B = 10", db)
        assert result.rows == [(1,)]
        # the NULL-B row is dropped, not retained

    def test_no_where_returns_all(self, db):
        assert len(execute("SELECT * FROM R", db)) == 3

    def test_cartesian_product(self, db):
        result = execute("SELECT A, C FROM R, S", db)
        assert len(result) == 9

    def test_join_predicate(self, db):
        result = execute("SELECT A, C FROM R, S WHERE R.B = S.D", db)
        assert sorted(result.rows) == [(1, 5), (2, 6)]
        # NULL B never matches NULL D

    def test_duplicate_correlation_name_rejected(self, db):
        with pytest.raises(ExecutionError):
            execute("SELECT * FROM R X, S X", db)

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            execute("SELECT * FROM NOPE", db)


class TestProjection:
    def test_star_expansion_order(self, db):
        result = execute("SELECT * FROM R", db)
        assert result.columns == ["A", "B"]

    def test_qualified_star(self, db):
        result = execute("SELECT S.* FROM R, S WHERE R.A = 1", db)
        assert result.columns == ["C", "D"]

    def test_alias_in_output(self, db):
        result = execute("SELECT A AS RENAMED FROM R", db)
        assert result.columns == ["RENAMED"]

    def test_projection_keeps_duplicates_without_distinct(self, db):
        result = execute("SELECT B FROM R, S", db)
        assert len(result) == 9

    def test_distinct_collapses_nulls(self, db):
        db.insert("R", (4, NULL))
        result = execute("SELECT DISTINCT B FROM R", db)
        values = result.column_values("B")
        assert sum(1 for value in values if value is NULL) == 1


class TestOrderBy:
    def test_order_by_output_column(self, db):
        result = execute("SELECT A FROM R ORDER BY A DESC", db)
        assert result.rows == [(3,), (2,), (1,)]

    def test_order_by_nulls_first(self, db):
        result = execute("SELECT B FROM R ORDER BY B", db)
        assert result.rows[0] == (NULL,)

    def test_order_by_unknown_column_rejected(self, db):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            execute("SELECT A FROM R ORDER BY NOPE", db)

    def test_order_by_unprojected_source_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            execute("SELECT A FROM R ORDER BY R.B", db)


class TestSetOperations:
    def test_intersect_all_min_counts(self, db):
        # R.B multiset {10,20,NULL}; build S side with duplicates
        result = execute(
            "SELECT B FROM R INTERSECT ALL SELECT D FROM S", db
        )
        # NULL matches NULL under set-operation semantics
        assert sorted(result.multiset().values()) == [1, 1, 1]

    def test_intersect_distinct(self, db):
        db.insert("R", (4, 10))
        result = execute("SELECT B FROM R INTERSECT SELECT D FROM S", db)
        assert not result.has_duplicates()
        assert len(result) == 3

    def test_except_all_max_counts(self, db):
        db.insert("R", (4, 10))  # B now {10, 10, 20, NULL}
        result = execute("SELECT B FROM R EXCEPT ALL SELECT D FROM S", db)
        assert result.rows == [(10,)]  # 2 - 1 copies survive

    def test_except_distinct_drops_matched(self, db):
        db.insert("R", (4, 10))
        result = execute("SELECT B FROM R EXCEPT SELECT D FROM S", db)
        assert result.rows == []

    def test_union_all_concatenates(self, db):
        result = execute("SELECT B FROM R UNION ALL SELECT D FROM S", db)
        assert len(result) == 6

    def test_union_distinct(self, db):
        result = execute("SELECT B FROM R UNION SELECT D FROM S", db)
        assert len(result) == 3  # {10, 20, NULL}

    def test_union_incompatible_arity_rejected(self, db):
        with pytest.raises(ExecutionError):
            execute("SELECT A, B FROM R UNION SELECT C FROM S", db)


class TestSubqueries:
    def test_correlated_exists(self, db):
        result = execute(
            "SELECT A FROM R WHERE EXISTS "
            "(SELECT * FROM S WHERE S.D = R.B)",
            db,
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_not_exists(self, db):
        result = execute(
            "SELECT A FROM R WHERE NOT EXISTS "
            "(SELECT * FROM S WHERE S.D = R.B)",
            db,
        )
        assert result.rows == [(3,)]

    def test_in_subquery(self, db):
        result = execute(
            "SELECT A FROM R WHERE B IN (SELECT D FROM S)", db
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_in_subquery_requires_one_column(self, db):
        with pytest.raises(ExecutionError):
            execute("SELECT A FROM R WHERE B IN (SELECT C, D FROM S)", db)

    def test_subquery_executions_counted(self, db):
        stats = Stats()
        execute(
            "SELECT A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.D = R.B)",
            db,
            stats=stats,
        )
        assert stats.subquery_executions == 3  # once per R row


class TestStats:
    def test_distinct_charges_sort(self, db):
        stats = Stats()
        execute("SELECT DISTINCT B FROM R, S", db, stats=stats)
        assert stats.sorts == 1
        assert stats.sort_rows == 9
        assert stats.duplicates_removed > 0

    def test_all_charges_no_sort(self, db):
        stats = Stats()
        execute("SELECT B FROM R, S", db, stats=stats)
        assert stats.sorts == 0

    def test_rows_output(self, db):
        stats = Stats()
        execute("SELECT * FROM R", db, stats=stats)
        assert stats.rows_output == 3

    def test_stats_arithmetic(self):
        a = Stats(rows_scanned=2)
        b = Stats(rows_scanned=3, sorts=1)
        assert (a + b).rows_scanned == 5
        assert (b - a).rows_scanned == 1
        snap = b.snapshot()
        b.reset()
        assert snap.sorts == 1 and b.sorts == 0
        assert "rows_scanned" in snap.describe()
