"""Individual physical operators."""

import pytest

from repro.engine import Database, Stats
from repro.engine.operators import (
    ExecContext,
    Filter,
    HashDistinct,
    HashJoin,
    HashSemiJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    SortDistinct,
    SortMergeJoin,
)
from repro.sql import parse_condition
from repro.types import NULL


DDL = """
CREATE TABLE L (K INT, V INT, PRIMARY KEY (K));
CREATE TABLE R (K INT, W INT, PRIMARY KEY (K));
INSERT INTO L VALUES (1, 7), (2, 8), (3, NULL), (4, 7);
INSERT INTO R VALUES (10, 7), (11, 8), (12, NULL), (13, 7);
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


def ctx_for(db):
    return ExecContext(db, stats=Stats())


def scan(db, table, alias=None):
    schema = db.catalog.table(table)
    return SeqScan(schema.name, alias or schema.name, schema.column_names)


def run(node, ctx):
    return list(node.rows(ctx))


class TestScanAndFilter:
    def test_scan_counts_rows(self, db):
        ctx = ctx_for(db)
        rows = run(scan(db, "L"), ctx)
        assert len(rows) == 4
        assert ctx.stats.rows_scanned == 4

    def test_filter_false_interpretation(self, db):
        ctx = ctx_for(db)
        node = Filter(scan(db, "L"), parse_condition("V = 7"))
        rows = run(node, ctx)
        assert [row[0] for row in rows] == [1, 4]  # NULL V row dropped


class TestJoins:
    def equi_rows(self, db, node_cls):
        ctx = ctx_for(db)
        left = scan(db, "L")
        right = scan(db, "R")
        left_key = left.schema.index_of("L", "V")
        right_key = right.schema.index_of("R", "W")
        node = node_cls(left, right, [left_key], [right_key])
        return sorted((row[0], row[2]) for row in run(node, ctx)), ctx.stats

    def test_hash_join_matches(self, db):
        rows, stats = self.equi_rows(db, HashJoin)
        assert rows == [(1, 10), (1, 13), (2, 11), (4, 10), (4, 13)]
        assert stats.hash_builds == 3  # NULL key not built
        assert stats.hash_probes == 3  # NULL key not probed

    def test_merge_join_equals_hash_join(self, db):
        hash_rows, _ = self.equi_rows(db, HashJoin)
        merge_rows, merge_stats = self.equi_rows(db, SortMergeJoin)
        assert hash_rows == merge_rows
        assert merge_stats.sorts == 2

    def test_nested_loop_join_with_predicate(self, db):
        ctx = ctx_for(db)
        node = NestedLoopJoin(
            scan(db, "L"), scan(db, "R"), parse_condition("L.V = R.W")
        )
        rows = sorted((row[0], row[2]) for row in run(node, ctx))
        hash_rows, _ = self.equi_rows(db, HashJoin)
        assert rows == hash_rows
        assert ctx.stats.rows_joined == 16  # full product examined

    def test_cross_product_without_predicate(self, db):
        ctx = ctx_for(db)
        node = NestedLoopJoin(scan(db, "L"), scan(db, "R"))
        assert len(run(node, ctx)) == 16

    def test_residual_predicate_on_hash_join(self, db):
        ctx = ctx_for(db)
        left, right = scan(db, "L"), scan(db, "R")
        node = HashJoin(
            left,
            right,
            [left.schema.index_of("L", "V")],
            [right.schema.index_of("R", "W")],
            residual=parse_condition("R.K = 10"),
        )
        rows = run(node, ctx)
        assert all(row[2] == 10 for row in rows)

    def test_key_list_validation(self, db):
        with pytest.raises(ValueError):
            HashJoin(scan(db, "L"), scan(db, "R"), [], [])
        with pytest.raises(ValueError):
            SortMergeJoin(scan(db, "L"), scan(db, "R"), [0], [0, 1])


class TestSemiJoin:
    def test_semi_join_emits_left_once(self, db):
        ctx = ctx_for(db)
        left, right = scan(db, "L"), scan(db, "R")
        node = HashSemiJoin(
            left,
            right,
            [left.schema.index_of("L", "V")],
            [right.schema.index_of("R", "W")],
        )
        rows = run(node, ctx)
        assert sorted(row[0] for row in rows) == [1, 2, 4]

    def test_anti_join(self, db):
        ctx = ctx_for(db)
        left, right = scan(db, "L"), scan(db, "R")
        node = HashSemiJoin(
            left,
            right,
            [left.schema.index_of("L", "V")],
            [right.schema.index_of("R", "W")],
            negated=True,
        )
        rows = run(node, ctx)
        # NULL-keyed left row never matches, so it *is* emitted by anti-join
        assert sorted(row[0] for row in rows) == [3]


class TestDistinct:
    def test_sort_and_hash_distinct_agree(self, db):
        ctx1, ctx2 = ctx_for(db), ctx_for(db)
        base1 = Project(scan(db, "L"), [1], ["V"])
        base2 = Project(scan(db, "L"), [1], ["V"])
        sorted_rows = run(SortDistinct(base1), ctx1)
        hashed_rows = run(HashDistinct(base2), ctx2)
        assert sorted(map(repr, sorted_rows)) == sorted(map(repr, hashed_rows))
        assert ctx1.stats.sorts == 1 and ctx2.stats.sorts == 0

    def test_distinct_counts_duplicates_removed(self, db):
        ctx = ctx_for(db)
        node = SortDistinct(Project(scan(db, "L"), [1], ["V"]))
        rows = run(node, ctx)
        assert len(rows) == 3  # 7, 8, NULL
        assert ctx.stats.duplicates_removed == 1
