"""The Result container and its comparison semantics."""

import pytest

from repro.engine import Result
from repro.types import NULL


class TestEquality:
    def test_multiset_equality_ignores_order(self):
        a = Result(["X"], [(1,), (2,), (1,)])
        b = Result(["X"], [(1,), (1,), (2,)])
        assert a == b

    def test_counts_matter(self):
        a = Result(["X"], [(1,), (1,)])
        b = Result(["X"], [(1,)])
        assert a != b

    def test_column_names_matter_for_eq(self):
        a = Result(["X"], [(1,)])
        b = Result(["Y"], [(1,)])
        assert a != b
        assert a.same_rows(b)  # ... but not for same_rows

    def test_nulls_compare_equal(self):
        a = Result(["X"], [(NULL,)])
        b = Result(["X"], [(NULL,)])
        assert a == b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Result(["X"], []))

    def test_eq_against_other_types(self):
        assert Result(["X"], []) != 42


class TestAccessors:
    def test_len_and_iter(self):
        result = Result(["X"], [(1,), (2,)])
        assert len(result) == 2
        assert list(result) == [(1,), (2,)]

    def test_column_values(self):
        result = Result(["A", "B"], [(1, "x"), (2, "y")])
        assert result.column_values("B") == ["x", "y"]
        with pytest.raises(ValueError):
            result.column_values("NOPE")

    def test_has_duplicates(self):
        assert Result(["X"], [(1,), (1,)]).has_duplicates()
        assert not Result(["X"], [(1,), (2,)]).has_duplicates()

    def test_sorted_rows_nulls_first(self):
        result = Result(["X"], [(2,), (NULL,), (1,)])
        assert result.sorted_rows()[0] == (NULL,)

    def test_repr(self):
        assert "2 rows" in repr(Result(["A", "B"], [(1, 2), (3, 4)]))


class TestToTable:
    def test_renders_header_and_rows(self):
        text = Result(["ID", "NAME"], [(1, "ann")]).to_table()
        lines = text.splitlines()
        assert "ID" in lines[0] and "NAME" in lines[0]
        assert "'ann'" in lines[2]

    def test_truncation_note(self):
        result = Result(["X"], [(i,) for i in range(30)])
        text = result.to_table(limit=5)
        assert "(30 rows total)" in text
        assert text.count("\n") < 12

    def test_no_limit(self):
        result = Result(["X"], [(i,) for i in range(30)])
        assert "rows total" not in result.to_table(limit=None)

    def test_null_rendering(self):
        assert "NULL" in Result(["X"], [(NULL,)]).to_table()
