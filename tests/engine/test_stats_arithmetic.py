"""Stats arithmetic: add/sub/snapshot/reset and the merging invariant.

The invariant under test: counter arithmetic is field-generic
(``fields(self)``) and type-preserving (``type(self)()``), so a counter
added later — in :class:`Stats` itself or in a subclass — participates
in ``+``/``-``/``snapshot`` automatically instead of being silently
dropped.  Span stats deltas and bench report merging both rely on it.
"""

from dataclasses import dataclass, fields

from repro.engine import Stats


def numbered_stats(offset: int = 0) -> Stats:
    """A Stats whose counters are distinct, field-order-derived values."""
    stats = Stats()
    for index, f in enumerate(fields(stats), start=1):
        setattr(stats, f.name, index + offset)
    return stats


class TestArithmetic:
    def test_add_sums_every_field(self):
        total = numbered_stats() + numbered_stats(offset=100)
        for index, f in enumerate(fields(total), start=1):
            assert getattr(total, f.name) == 2 * index + 100, f.name

    def test_sub_is_the_inverse_of_add(self):
        a, b = numbered_stats(), numbered_stats(offset=100)
        assert (a + b) - b == a

    def test_delta_pattern_isolates_work(self):
        # The span-delta idiom: snapshot, work, snapshot-subtract.
        stats = numbered_stats()
        before = stats.snapshot()
        stats.rows_scanned += 5
        stats.sorts += 1
        delta = stats.snapshot() - before
        assert delta.rows_scanned == 5
        assert delta.sorts == 1
        assert all(
            getattr(delta, f.name) == 0
            for f in fields(delta)
            if f.name not in ("rows_scanned", "sorts")
        )


class TestSnapshotAndReset:
    def test_snapshot_is_an_independent_copy(self):
        stats = numbered_stats()
        copy = stats.snapshot()
        stats.rows_scanned += 99
        assert copy.rows_scanned == 1
        assert copy == numbered_stats()

    def test_reset_zeroes_every_field(self):
        stats = numbered_stats()
        stats.reset()
        assert stats == Stats()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_as_dict_covers_every_field(self):
        stats = numbered_stats()
        assert set(stats.as_dict()) == {f.name for f in fields(stats)}


class TestDescribe:
    def test_describe_lists_nonzero_counters_only(self):
        stats = Stats(rows_scanned=2, sorts=1)
        assert stats.describe() == "rows_scanned=2, sorts=1"

    def test_describe_of_idle_stats(self):
        assert Stats().describe() == "(no work recorded)"


@dataclass
class ExtendedStats(Stats):
    """A Stats with a counter the base class has never heard of."""

    warp_drives_engaged: int = 0


class TestMergingInvariant:
    """Counters added later must not be silently dropped."""

    def test_subclass_arithmetic_preserves_the_new_counter(self):
        a = ExtendedStats(rows_scanned=1, warp_drives_engaged=2)
        b = ExtendedStats(rows_scanned=10, warp_drives_engaged=5)
        total = a + b
        assert type(total) is ExtendedStats
        assert total.rows_scanned == 11
        assert total.warp_drives_engaged == 7
        delta = b - a
        assert delta.warp_drives_engaged == 3

    def test_subclass_snapshot_round_trips_the_new_counter(self):
        stats = ExtendedStats(warp_drives_engaged=4)
        copy = stats.snapshot()
        assert type(copy) is ExtendedStats
        assert copy.warp_drives_engaged == 4
        stats.reset()
        assert stats.warp_drives_engaged == 0

    def test_subclass_describe_and_as_dict_see_the_new_counter(self):
        stats = ExtendedStats(warp_drives_engaged=1)
        assert stats.as_dict()["warp_drives_engaged"] == 1
        assert "warp_drives_engaged=1" in stats.describe()
