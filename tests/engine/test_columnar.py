"""Columnar execution: batch mechanics, mask kernels, and the
byte-identity contract.

Three layers under test:

* :class:`ColumnBatch` value mechanics — transpose round-trips, byte-lane
  mask selection, null bitmaps, column slicing, canonical key vectors;
* batch predicate compilation — every mask-pair kernel must agree with
  the interpretive :class:`Evaluator` lane for lane, including the
  NULL-heavy rows where Kleene folds are easiest to get wrong;
* the engine_mode contract — vectorized execution is byte-identical to
  the tuple interpreter across every paper example (serial and
  parallel), shares its work accounting, and demotes to the interpreter
  under injected ``vectorized_eval`` faults without changing a row.
"""

import itertools

import pytest

from repro.engine import (
    ColumnBatch,
    DEFAULT_BATCH_ROWS,
    ParallelOptions,
    default_engine_mode,
    execute_planned,
    set_default_engine_mode,
)
from repro.engine.columnar import (
    batches_from_rows,
    compile_batch_filter,
    compile_batch_predicate,
    resolve_engine_mode,
)
from repro.engine.evaluator import Evaluator
from repro.engine.schema import RelSchema, Scope
from repro.engine.stats import Stats
from repro.resilience import FAULTS, SITE_VECTORIZED_EVAL
from repro.sql import parse_condition
from repro.types import NULL, FALSE, TRUE, UNKNOWN
from repro.types.values import row_sort_key
from repro.workloads import PAPER_QUERIES

# ----------------------------------------------------------------------
# ColumnBatch mechanics


def test_from_rows_to_rows_round_trip():
    rows = [(1, "a", NULL), (2, NULL, 3.5), (NULL, "c", True)]
    batch = ColumnBatch.from_rows(rows, 3)
    assert batch.length == len(batch) == 3
    assert batch.to_rows() == rows
    assert list(batch.iter_rows()) == rows


def test_null_masks_mark_exactly_the_null_lanes():
    batch = ColumnBatch.from_rows([(1, NULL), (NULL, 2), (3, 4)], 2)
    # Row i occupies byte i (little-endian): lane values are 0x00/0x01.
    assert batch.null_masks[0].to_bytes(3, "little") == b"\x00\x01\x00"
    assert batch.null_masks[1].to_bytes(3, "little") == b"\x01\x00\x00"
    assert batch.ones.to_bytes(3, "little") == b"\x01\x01\x01"


def test_select_keeps_order_and_null_lanes():
    rows = [(1, NULL), (2, "b"), (NULL, "c"), (4, NULL)]
    batch = ColumnBatch.from_rows(rows, 2)
    mask = int.from_bytes(b"\x01\x00\x01\x01", "little")  # rows 0, 2, 3
    picked = batch.select(mask)
    assert picked.to_rows() == [rows[0], rows[2], rows[3]]
    assert picked.null_masks[0].to_bytes(3, "little") == b"\x00\x01\x00"
    assert picked.null_masks[1].to_bytes(3, "little") == b"\x01\x00\x01"


def test_select_full_mask_returns_self_and_empty_mask_empties():
    batch = ColumnBatch.from_rows([(1,), (2,)], 1)
    assert batch.select(batch.ones) is batch
    empty = batch.select(0)
    assert empty.length == 0 and empty.to_rows() == []


def test_project_slices_reorders_and_duplicates_columns():
    batch = ColumnBatch.from_rows([(1, "a", NULL), (2, "b", 9)], 3)
    projected = batch.project([2, 0, 0])
    assert projected.to_rows() == [(NULL, 1, 1), (9, 2, 2)]
    assert projected.null_masks[0] == batch.null_masks[2]


def test_sort_keys_match_row_sort_key():
    rows = [(1, "a"), (NULL, "b"), (2, NULL)]
    batch = ColumnBatch.from_rows(rows, 2)
    assert batch.sort_keys() == [row_sort_key(row) for row in rows]
    assert batch.sort_keys([1]) == [row_sort_key((row[1],)) for row in rows]


def test_zero_width_batches_carry_row_counts():
    batch = ColumnBatch.from_rows([(), (), ()], 0)
    assert batch.length == 3
    assert batch.to_rows() == [(), (), ()]


def test_batches_from_rows_chunks_to_morsel_size():
    rows = [(i,) for i in range(10)]
    batches = list(batches_from_rows(rows, 1, 4))
    assert [b.length for b in batches] == [4, 4, 2]
    assert [row for b in batches for row in b.to_rows()] == rows
    assert list(batches_from_rows([], 1, 4)) == []


# ----------------------------------------------------------------------
# batch predicate kernels vs the interpreter

SCHEMA = RelSchema.for_table("T", ["A", "B", "C"])

#: All NULL/low/high combinations over two numeric and a string column —
#: the same 27-row grid the row-compiler tests use.
ROWS = [
    (a, b, c)
    for a, b, c in itertools.product(
        (NULL, 1, 2), (NULL, 1, 2), (NULL, "X", "Y")
    )
]

CONDITIONS = [
    "A = B",
    "A < B",
    "A <> B",
    "A <= B",
    "2 > A",
    "A = 1 AND B = 2",
    "A = 1 OR B IS NULL",
    "NOT A = B",
    "A BETWEEN 0 AND B",
    "A NOT BETWEEN B AND 2",
    "A IN (1, 2, B)",
    "B NOT IN (A, 2)",
    "C = 'X' OR C IS NOT NULL",
    "(A = 1 OR B = 2) AND NOT C = 'Y'",
    "A IS NULL AND B IS NULL AND C IS NULL",
    "A = :P AND C <> :Q",
    "A = 1 AND 1 = 1",
    "A = 1 OR 1 = 0",
    "NULL = NULL OR A = 1",
]

PARAMS = {"P": 1, "Q": "X"}


def _lanes(mask: int, n: int) -> list[bool]:
    return [byte == 1 for byte in mask.to_bytes(n, "little")]


@pytest.mark.parametrize("text", CONDITIONS)
def test_mask_kernels_match_interpreter_lane_for_lane(text):
    expr = parse_condition(text)
    evaluator = Evaluator(params=PARAMS)
    predicate = compile_batch_predicate(expr, SCHEMA, PARAMS)
    selector = compile_batch_filter(expr, SCHEMA, PARAMS)
    assert predicate is not None and selector is not None

    batch = ColumnBatch.from_rows(ROWS, 3)
    true_mask, unknown_mask = predicate(batch)
    assert true_mask & unknown_mask == 0  # lanes are disjoint
    select_mask = selector(batch)
    for i, row in enumerate(ROWS):
        expected = evaluator.predicate(expr, Scope(SCHEMA, row))
        lane = (
            TRUE if _lanes(true_mask, len(ROWS))[i]
            else UNKNOWN if _lanes(unknown_mask, len(ROWS))[i]
            else FALSE
        )
        assert lane is expected, f"{text} on {row}"
    # The filter mask is the false-interpretation ⌊P⌋: TRUE lanes only.
    assert select_mask == true_mask


def test_mixed_type_columns_route_through_the_exact_lane():
    """A column mixing ints and strings defeats the native fast lane;
    the kernel must still produce reference verdicts per lane."""
    expr = parse_condition("A < 2")
    rows = [(1, 0, 0), ("zzz", 0, 0), (NULL, 0, 0)]
    batch = ColumnBatch.from_rows(rows, 3)
    predicate = compile_batch_predicate(expr, SCHEMA, {})
    evaluator = Evaluator()
    true_mask, unknown_mask = predicate(batch)
    for i, row in enumerate(rows):
        expected = evaluator.predicate(expr, Scope(SCHEMA, row))
        lane = (
            TRUE if _lanes(true_mask, 3)[i]
            else UNKNOWN if _lanes(unknown_mask, 3)[i]
            else FALSE
        )
        assert lane is expected, row


def test_subqueries_are_interpreter_territory():
    expr = parse_condition("EXISTS (SELECT * FROM T WHERE A = 1)")
    assert compile_batch_predicate(expr, SCHEMA, {}) is None


def test_unbound_host_variable_rejects_compilation():
    expr = parse_condition("A = :MISSING")
    assert compile_batch_predicate(expr, SCHEMA, {}) is None


# ----------------------------------------------------------------------
# engine_mode resolution


def test_engine_mode_resolution_and_default_override():
    assert resolve_engine_mode("vectorized") == "vectorized"
    with pytest.raises(ValueError):
        resolve_engine_mode("simd")
    with pytest.raises(ValueError):
        set_default_engine_mode("simd")
    previous = set_default_engine_mode("auto")
    try:
        assert default_engine_mode() == "auto"
        assert resolve_engine_mode(None) == "auto"
        assert resolve_engine_mode("tuple") == "tuple"  # explicit wins
    finally:
        set_default_engine_mode(previous)


# ----------------------------------------------------------------------
# byte-identity across the paper examples


def _run(query, db, mode, parallel=None, stats=None):
    return execute_planned(
        query.sql,
        db,
        params=query.params,
        engine_mode=mode,
        parallel=parallel,
        stats=stats,
    )


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: f"ex{q.example}")
def test_paper_examples_byte_identical_serial(query, small_db):
    tuple_stats, vec_stats = Stats(), Stats()
    reference = _run(query, small_db, "tuple", stats=tuple_stats)
    vectorized = _run(query, small_db, "vectorized", stats=vec_stats)
    assert vectorized.columns == reference.columns
    assert vectorized.rows == reference.rows  # sequence, not just multiset
    # Work accounting is mode-independent; only the path-descriptive
    # vectorized_*/parallel_* counters (and cache warmth between the
    # two runs) may differ.
    for name, value in tuple_stats.as_dict().items():
        if (
            name.startswith("vectorized")
            or name.startswith("parallel")
            or name.startswith("plan_cache")
        ):
            continue
        assert getattr(vec_stats, name) == value, name


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: f"ex{q.example}")
def test_paper_examples_byte_identical_parallel(query, small_db):
    reference = _run(query, small_db, "tuple")
    vectorized = _run(
        query,
        small_db,
        "vectorized",
        parallel=ParallelOptions(workers=4, morsel_size=16, min_parallel_rows=8),
    )
    assert vectorized.rows == reference.rows


def test_auto_mode_vectorizes_when_faults_are_unarmed(small_db):
    stats = Stats()
    execute_planned(
        "SELECT P.PNO, P.PNAME FROM PARTS P WHERE P.COLOR = 'RED'",
        small_db,
        engine_mode="auto",
        stats=stats,
    )
    assert stats.vectorized_batches > 0


def test_auto_mode_defers_to_armed_faults(small_db):
    stats = Stats()
    with FAULTS.inject(SITE_VECTORIZED_EVAL, after=1_000_000):
        execute_planned(
            "SELECT P.PNO, P.PNAME FROM PARTS P WHERE P.COLOR = 'RED'",
            small_db,
            engine_mode="auto",
            stats=stats,
        )
    assert stats.vectorized_batches == 0


# ----------------------------------------------------------------------
# demotion: the verified fallback


def test_vectorized_fault_demotes_to_interpreter_mid_stream(small_db):
    sql = "SELECT P.PNO, P.PNAME FROM PARTS P WHERE P.COLOR = 'RED'"
    expected = execute_planned(sql, small_db, engine_mode="tuple")

    stats = Stats()
    with FAULTS.inject(SITE_VECTORIZED_EVAL, after=0, times=1):
        result = execute_planned(
            sql, small_db, engine_mode="vectorized", stats=stats,
            batch_rows=8,
        )
    assert result.rows == expected.rows
    assert stats.vectorized_fallbacks >= 1


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: f"ex{q.example}")
def test_paper_examples_byte_identical_under_vectorized_faults(query, small_db):
    reference = _run(query, small_db, "tuple")
    with FAULTS.inject(SITE_VECTORIZED_EVAL, after=1, times=2):
        faulted = _run(query, small_db, "vectorized")
    assert faulted.rows == reference.rows


def test_small_batch_rows_chunk_the_stream(small_db):
    stats = Stats()
    result = execute_planned(
        "SELECT P.PNO FROM PARTS P",
        small_db,
        engine_mode="vectorized",
        batch_rows=7,
        stats=stats,
    )
    assert stats.vectorized_batches >= len(result.rows) // 7
    assert stats.vectorized_rows >= len(result.rows)
    assert 7 != DEFAULT_BATCH_ROWS  # the knob really overrode the default
