"""Foreign-key (inclusion dependency) enforcement on insert."""

import pytest

from repro.engine import Database
from repro.errors import ConstraintViolation
from repro.types import NULL


DDL = """
CREATE TABLE PARENT (K INT, V INT, PRIMARY KEY (K));
CREATE TABLE CHILD (
  ID INT, FK INT,
  PRIMARY KEY (ID),
  FOREIGN KEY (FK) REFERENCES PARENT (K));
INSERT INTO PARENT VALUES (1, 10), (2, 20);
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


class TestEnforcement:
    def test_matching_reference_accepted(self, db):
        db.insert("CHILD", (100, 1))

    def test_dangling_reference_rejected(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("CHILD", (100, 99))

    def test_null_fk_exempt(self, db):
        # SQL simple match: a NULL component exempts the row.
        db.insert("CHILD", (100, NULL))

    def test_rejected_insert_leaves_no_trace(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("CHILD", (100, 99))
        # the key slot must be reusable: the failed row was rolled back
        db.insert("CHILD", (100, 1))
        assert len(db.table("CHILD")) == 1

    def test_script_inserts_enforced(self):
        with pytest.raises(ConstraintViolation):
            Database.from_script(DDL + "INSERT INTO CHILD VALUES (1, 42);")

    def test_fk_without_explicit_ref_columns_uses_primary_key(self):
        database = Database.from_script(
            """CREATE TABLE P2 (K INT, PRIMARY KEY (K));
               CREATE TABLE C2 (ID INT, FK INT, PRIMARY KEY (ID),
                                FOREIGN KEY (FK) REFERENCES P2);
               INSERT INTO P2 VALUES (7);"""
        )
        database.insert("C2", (1, 7))
        with pytest.raises(ConstraintViolation):
            database.insert("C2", (2, 8))

    def test_reference_to_missing_table_unenforced(self):
        # a dangling REFERENCES target degrades to unenforced, not error
        database = Database.from_script(
            """CREATE TABLE LONELY (ID INT, FK INT, PRIMARY KEY (ID),
                                    FOREIGN KEY (FK) REFERENCES NOWHERE);"""
        )
        database.insert("LONELY", (1, 99))

    def test_non_key_reference_falls_back_to_scan(self):
        database = Database.from_script(
            """CREATE TABLE P3 (K INT, V INT, PRIMARY KEY (K));
               CREATE TABLE C3 (ID INT, FK INT, PRIMARY KEY (ID),
                                FOREIGN KEY (FK) REFERENCES P3 (V));
               INSERT INTO P3 VALUES (1, 50);"""
        )
        database.insert("C3", (1, 50))
        with pytest.raises(ConstraintViolation):
            database.insert("C3", (2, 51))
