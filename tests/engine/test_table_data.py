"""Constraint enforcement on insert."""

import pytest

from repro.engine import Database
from repro.errors import ConstraintViolation
from repro.types import NULL


DDL = """
CREATE TABLE T (
  A INT, B INT, C VARCHAR(10),
  PRIMARY KEY (A),
  UNIQUE (B),
  CHECK (A BETWEEN 1 AND 9),
  CHECK (B <> 0 OR C = 'zero'));
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


class TestNotNull:
    def test_primary_key_rejects_null(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("T", (NULL, 1, "x"))

    def test_unique_column_accepts_null(self, db):
        db.insert("T", (1, NULL, "x"))


class TestCheckConstraints:
    def test_violating_row_rejected(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("T", (99, 1, "x"))

    def test_unknown_check_passes(self, db):
        # B is NULL, so (B <> 0 OR C = 'zero') is UNKNOWN: SQL2 only
        # rejects a definite FALSE.
        db.insert("T", (1, NULL, "x"))

    def test_disjunctive_check(self, db):
        db.insert("T", (1, 0, "zero"))
        with pytest.raises(ConstraintViolation):
            db.insert("T", (2, 0, "nope"))


class TestKeyUniqueness:
    def test_duplicate_primary_key_rejected(self, db):
        db.insert("T", (1, 1, "x"))
        with pytest.raises(ConstraintViolation):
            db.insert("T", (1, 2, "y"))

    def test_duplicate_candidate_key_rejected(self, db):
        db.insert("T", (1, 5, "x"))
        with pytest.raises(ConstraintViolation):
            db.insert("T", (2, 5, "y"))

    def test_null_is_a_single_special_key_value(self, db):
        # SQL2 (as the paper adopts it): at most one row may carry a NULL
        # candidate key.
        db.insert("T", (1, NULL, "x"))
        with pytest.raises(ConstraintViolation):
            db.insert("T", (2, NULL, "y"))


class TestLoadingApi:
    def test_wrong_arity_rejected(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("T", (1, 2))

    def test_mapping_insert_defaults_to_null(self, db):
        row = db.insert("T", {"A": 1, "C": "x"})
        assert row == (1, NULL, "x")

    def test_mapping_insert_rejects_unknown_column(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("T", {"A": 1, "NOPE": 2})

    def test_enforce_false_bypasses_validation(self, db):
        table = db.table("T")
        table.insert((1, 1, "x"))
        table.insert((1, 1, "x"), enforce=False)  # deliberate duplicate
        assert len(table) == 2

    def test_clear_resets_indexes(self, db):
        db.insert("T", (1, 1, "x"))
        db.table("T").clear()
        db.insert("T", (1, 1, "x"))  # no phantom duplicate error
        assert len(db.table("T")) == 1

    def test_run_script_inserts(self):
        database = Database.from_script(
            DDL + "INSERT INTO T VALUES (1, 1, 'x'), (2, 2, 'y');"
        )
        assert database.row_counts() == {"T": 2}

    def test_insert_with_column_list_script(self):
        database = Database.from_script(
            DDL + "INSERT INTO T (A, C) VALUES (3, 'z');"
        )
        assert database.table("T").rows[0] == (3, NULL, "z")
