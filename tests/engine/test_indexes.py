"""Hash-index access paths: TableData maintenance and engine probes.

Covers the three layers separately: the index structure itself (lazy
build, incremental maintenance under insert/remove/clear), the
interpreter's correlated-probe fast path, and the planner's IndexScan —
each asserted to return exactly the rows the scan path returns.
"""

import pytest

from repro import Database, Stats, execute, execute_planned
from repro.errors import MissingHostVariableError
from repro.types import NULL

DDL = """
CREATE TABLE S (
    SNO INT NOT NULL,
    CITY VARCHAR(20),
    PRIMARY KEY (SNO)
);
CREATE TABLE P (
    PNO INT NOT NULL,
    SNO INT,
    COLOR VARCHAR(10),
    PRIMARY KEY (PNO),
    FOREIGN KEY (SNO) REFERENCES S (SNO)
);
INSERT INTO S VALUES (1, 'LONDON');
INSERT INTO S VALUES (2, 'PARIS');
INSERT INTO S VALUES (3, 'OSLO');
INSERT INTO P VALUES (10, 1, 'RED');
INSERT INTO P VALUES (11, 1, 'BLUE');
INSERT INTO P VALUES (12, 2, 'RED');
INSERT INTO P VALUES (13, NULL, 'GREEN');
"""


@pytest.fixture
def db():
    return Database.from_script(DDL)


# ----------------------------------------------------------------------
# TableData: the index structure


def test_indexable_columns_are_key_and_fk_columns(db):
    assert db.table("S").indexable_columns() == {"SNO"}
    assert db.table("P").indexable_columns() == {"PNO", "SNO"}
    # COLOR is neither a key nor a foreign key — never auto-indexed.
    assert "COLOR" not in db.table("P").indexable_columns()


def test_index_is_built_lazily_then_reused(db):
    parts = db.table("P")
    assert not parts.has_hash_index(("SNO",))
    matches = parts.index_lookup(("SNO",), (1,))
    assert sorted(row[0] for row in matches) == [10, 11]
    assert parts.has_hash_index(("SNO",))


def test_inserts_maintain_existing_indexes_incrementally(db):
    parts = db.table("P")
    parts.index_lookup(("SNO",), (1,))  # materialize the index
    version = parts.version
    db.load("P", [(14, 1, "WHITE")])
    assert parts.version > version  # mutation bumps the fingerprint
    matches = parts.index_lookup(("SNO",), (1,))
    assert sorted(row[0] for row in matches) == [10, 11, 14]


def test_remove_last_unindexes_the_row(db):
    parts = db.table("P")
    parts.index_lookup(("SNO",), (2,))
    db.load("P", [(14, 2, "WHITE")])
    removed = parts.remove_last()
    assert removed[0] == 14
    assert [row[0] for row in parts.index_lookup(("SNO",), (2,))] == [12]


def test_clear_empties_the_indexes(db):
    parts = db.table("P")
    parts.index_lookup(("PNO",), (10,))
    parts.clear()
    assert parts.index_lookup(("PNO",), (10,)) == []
    assert len(parts) == 0


def test_null_probe_returns_no_rows(db):
    # Part 13 has SNO NULL, but a WHERE-clause equality with NULL is
    # never TRUE, so a NULL probe must not find it.
    parts = db.table("P")
    assert parts.index_lookup(("SNO",), (NULL,)) == []
    # The row is still stored and reachable by its key.
    assert [row[0] for row in parts.index_lookup(("PNO",), (13,))] == [13]


def test_composite_probe_uses_all_columns(db):
    parts = db.table("P")
    matches = parts.index_lookup(("SNO", "COLOR"), (1, "RED"))
    assert [row[0] for row in matches] == [10]
    assert parts.index_lookup(("SNO", "COLOR"), (1, "GREEN")) == []


# ----------------------------------------------------------------------
# interpreter: key lookups and correlated probes


def test_interpreter_key_lookup_probes_instead_of_scanning(db):
    sql = "SELECT CITY FROM S WHERE SNO = 2"
    probe_stats, scan_stats = Stats(), Stats()
    probed = execute(sql, db, stats=probe_stats, use_indexes=True)
    scanned = execute(sql, db, stats=scan_stats, use_indexes=False)
    assert probed.same_rows(scanned)
    assert [row[0] for row in probed.rows] == ["PARIS"]
    assert probe_stats.index_probes == 1
    assert probe_stats.index_rows == 1  # the one matching row only
    assert probe_stats.rows_joined == 0  # the table product never ran
    assert probe_stats.predicate_evals == 1
    assert scan_stats.index_probes == 0
    assert scan_stats.rows_joined == 3
    assert scan_stats.predicate_evals == 3


def test_interpreter_correlated_exists_probes_fk_index(db):
    sql = (
        "SELECT S.SNO FROM S WHERE EXISTS "
        "(SELECT * FROM P WHERE P.SNO = S.SNO)"
    )
    probe_stats, scan_stats = Stats(), Stats()
    probed = execute(sql, db, stats=probe_stats, use_indexes=True)
    scanned = execute(sql, db, stats=scan_stats, use_indexes=False)
    assert probed.same_rows(scanned)
    assert sorted(row[0] for row in probed.rows) == [1, 2]
    # Same naive strategy — one subquery execution per outer row — but
    # each execution touches a bucket instead of the whole inner table.
    assert probe_stats.subquery_executions == scan_stats.subquery_executions == 3
    assert probe_stats.index_probes >= probe_stats.subquery_executions
    assert scan_stats.index_probes == 0
    assert probe_stats.predicate_evals < scan_stats.predicate_evals


def test_missing_host_variable_raises_on_both_paths(db):
    sql = "SELECT CITY FROM S WHERE SNO = :N"
    for use_indexes in (True, False):
        with pytest.raises(MissingHostVariableError):
            execute(sql, db, use_indexes=use_indexes)


# ----------------------------------------------------------------------
# planner: IndexScan


def test_planned_index_scan_matches_seq_scan(db):
    sql = "SELECT PNO, COLOR FROM P WHERE SNO = 1 AND COLOR = 'RED'"
    probe_stats, scan_stats = Stats(), Stats()
    probed = execute_planned(sql, db, stats=probe_stats, use_indexes=True)
    scanned = execute_planned(sql, db, stats=scan_stats, use_indexes=False)
    assert probed.same_rows(scanned)
    assert [tuple(row) for row in probed.rows] == [(10, "RED")]
    assert probe_stats.index_probes == 1
    assert scan_stats.index_probes == 0


def test_planned_index_scan_with_host_variable(db):
    sql = "SELECT CITY FROM S WHERE SNO = :N"
    for n, city in [(1, "LONDON"), (3, "OSLO")]:
        stats = Stats()
        result = execute_planned(sql, db, params={"N": n}, stats=stats)
        assert [row[0] for row in result.rows] == [city]
        assert stats.index_probes == 1
