"""Object store and the Example 11 navigation strategies."""

import pytest

from repro.errors import OodbError
from repro.oodb import (
    ObjectStats,
    ObjectStore,
    OoClass,
    forward_join,
    full_scan_join,
    selective_exists,
)
from repro.workloads import SupplierScale, build_object_store, generate


@pytest.fixture()
def store():
    return build_object_store(
        generate(SupplierScale(suppliers=30, parts_per_supplier=5))
    )


class TestModel:
    def test_key_attribute_must_exist(self):
        with pytest.raises(OodbError):
            OoClass("C", ["A"], key_attribute="B")

    def test_reference_target_must_be_defined(self):
        s = ObjectStore()
        with pytest.raises(OodbError):
            s.define_class(OoClass("C", ["A"], references={"R": "MISSING"}))

    def test_duplicate_class_rejected(self):
        s = ObjectStore()
        s.define_class(OoClass("C", ["A"]))
        with pytest.raises(OodbError):
            s.define_class(OoClass("C", ["A"]))

    def test_missing_attributes_rejected(self):
        s = ObjectStore()
        s.define_class(OoClass("C", ["A", "B"]))
        with pytest.raises(OodbError):
            s.create("C", {"A": 1})

    def test_unknown_reference_rejected(self):
        s = ObjectStore()
        s.define_class(OoClass("C", ["A"]))
        obj = s.create("C", {"A": 1})
        with pytest.raises(OodbError):
            s.create("C", {"A": 2}, refs={"NOPE": obj.oid})


class TestStore:
    def test_deref_counts_fetch(self, store):
        stats = store.stats
        stats.reset()
        oids = store.index_lookup("SUPPLIER", "SNO", 1)
        assert len(oids) == 1
        store.deref(oids[0])
        assert stats.fetches_of("SUPPLIER") == 1
        assert stats.pointer_derefs == 1
        assert stats.index_lookups == 1

    def test_scan_counts_every_object(self, store):
        store.stats.reset()
        count = sum(1 for _ in store.scan("PARTS"))
        assert count == store.extent_size("PARTS")
        assert store.stats.fetches_of("PARTS") == count

    def test_index_range(self, store):
        oids = store.index_range("SUPPLIER", "SNO", 10, 20)
        assert len(oids) == 11

    def test_index_built_retroactively(self, store):
        store.create_index("SUPPLIER", "SCITY")
        assert store.has_index("SUPPLIER", "SCITY")
        assert store.index_lookup("SUPPLIER", "SCITY", "Toronto")

    def test_missing_index_raises(self, store):
        with pytest.raises(OodbError):
            store.index_lookup("PARTS", "PNAME", "x")

    def test_dangling_oid(self, store):
        from repro.oodb import Oid

        with pytest.raises(OodbError):
            store.deref(Oid("SUPPLIER", 999_999))

    def test_child_parent_pointer(self, store):
        part_oid = store.index_lookup("PARTS", "PNO", 1)[0]
        part = store.deref(part_oid)
        parent = store.deref(part.ref("SUPPLIER"))
        assert parent.oid.class_name == "SUPPLIER"

    def test_stats_describe(self, store):
        store.stats.reset()
        store.index_lookup("SUPPLIER", "SNO", 1)
        assert "index_lookups=1" in store.stats.describe()


class TestExample11Strategies:
    """Both navigations must produce the same suppliers."""

    def run_both(self, store, lo, hi, pno):
        in_range = lambda s: lo <= s.get("SNO") <= hi

        store.stats = ObjectStats()
        forward = forward_join(
            store, "PARTS", "PNO", pno, "SUPPLIER", in_range
        )
        forward_stats = store.stats

        store.stats = ObjectStats()
        rewritten = selective_exists(
            store, "SUPPLIER", "SNO", lo, hi, "PARTS", "PNO", pno, "SUPPLIER"
        )
        rewritten_stats = store.stats
        return forward, forward_stats, rewritten, rewritten_stats

    def test_strategies_agree(self, store):
        forward, _, rewritten, _ = self.run_both(store, 10, 20, 2)
        assert sorted(o.get("SNO") for o in forward) == sorted(
            o.get("SNO") for o in rewritten
        )
        assert len(forward) == 11

    def test_selective_range_fetches_fewer_suppliers(self, store):
        # 30 suppliers all supply part 2; range 10..12 keeps 3.
        _, forward_stats, _, rewritten_stats = self.run_both(store, 10, 12, 2)
        # forward dereferences every part's parent: 30 supplier fetches
        assert forward_stats.fetches_of("SUPPLIER") == 30
        # rewritten fetches only the ranged suppliers
        assert rewritten_stats.fetches_of("SUPPLIER") == 3

    def test_full_scan_baseline_agrees(self, store):
        in_range = lambda s: 10 <= s.get("SNO") <= 20
        store.stats = ObjectStats()
        scanned = full_scan_join(
            store, "SUPPLIER", in_range, "PARTS", "PNO", 2, "SUPPLIER"
        )
        assert len(scanned) == 11
        # the baseline touches the entire PARTS extent
        assert store.stats.fetches_of("PARTS") == store.extent_size("PARTS")

    def test_exists_semantics_deduplicates(self, store):
        # PNO=2 appears once per supplier, so join and exists agree on
        # cardinality here; a supplier with two matching parts would
        # still appear once under selective_exists.
        data = generate(SupplierScale(suppliers=3, parts_per_supplier=2))
        small = build_object_store(data)
        supplier_oid = small.index_lookup("SUPPLIER", "SNO", 1)[0]
        small.create(
            "PARTS",
            {"PNO": 77, "PNAME": "x", "OEM-PNO": 999, "COLOR": "RED"},
            refs={"SUPPLIER": supplier_oid},
        )
        small.create(
            "PARTS",
            {"PNO": 77, "PNAME": "y", "OEM-PNO": 998, "COLOR": "RED"},
            refs={"SUPPLIER": supplier_oid},
        )
        result = selective_exists(
            small, "SUPPLIER", "SNO", 1, 3, "PARTS", "PNO", 77, "SUPPLIER"
        )
        assert len(result) == 1  # one supplier, despite two matching parts
        joined = forward_join(
            small, "PARTS", "PNO", 77, "SUPPLIER", lambda s: True
        )
        assert len(joined) == 2  # the ALL join keeps both pairs
