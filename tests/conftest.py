"""Shared fixtures: the paper's schema and a small populated instance."""

from __future__ import annotations

import pytest

from repro import Catalog, Database
from repro.workloads import SupplierScale, build_database, generate


PAPER_DDL = """
CREATE TABLE SUPPLIER (
  SNO INT, SNAME VARCHAR(30), SCITY VARCHAR(20), BUDGET INT, STATUS VARCHAR(10),
  PRIMARY KEY (SNO),
  CHECK (SNO BETWEEN 1 AND 499),
  CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
  CHECK (BUDGET <> 0 OR STATUS = 'Inactive'));

CREATE TABLE PARTS (
  SNO INT, PNO INT, PNAME VARCHAR(30), OEM-PNO INT, COLOR VARCHAR(10),
  PRIMARY KEY (SNO, PNO),
  UNIQUE (OEM-PNO),
  CHECK (SNO BETWEEN 1 AND 499),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));

CREATE TABLE AGENTS (
  SNO INT, ANO INT, ANAME VARCHAR(30), ACITY VARCHAR(20),
  PRIMARY KEY (ANO),
  CHECK (SNO BETWEEN 1 AND 499),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));
"""


@pytest.fixture(scope="session")
def paper_catalog() -> Catalog:
    """The Figure 1 schema, CHECK constraints included."""
    return Catalog.from_ddl(PAPER_DDL)


@pytest.fixture(scope="session")
def small_db() -> Database:
    """A small deterministic supplier instance (shared, read-only)."""
    return build_database(
        generate(SupplierScale(suppliers=12, parts_per_supplier=4, agents_per_supplier=2))
    )


@pytest.fixture()
def tiny_db() -> Database:
    """A hand-written instance with known rows (fresh per test)."""
    return Database.from_script(
        PAPER_DDL
        + """
INSERT INTO SUPPLIER VALUES
  (1, 'Acme', 'Toronto', 100, 'Active'),
  (2, 'Baker', 'Chicago', 50, 'Active'),
  (3, 'Acme', 'Toronto', 0, 'Inactive'),
  (4, 'Delta', 'New York', 75, 'Active');
INSERT INTO PARTS VALUES
  (1, 10, 'bolt', 100, 'RED'),
  (1, 11, 'nut', 101, 'BLUE'),
  (2, 10, 'bolt', 102, 'RED'),
  (3, 12, 'cam', NULL, 'RED'),
  (4, 13, 'rod', 104, 'GREEN');
INSERT INTO AGENTS VALUES
  (1, 100, 'ann', 'Ottawa'),
  (1, 101, 'bob', 'Hull'),
  (2, 102, 'cid', 'Toronto'),
  (3, 103, 'dot', 'Ottawa');
"""
    )
