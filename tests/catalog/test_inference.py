"""Domain narrowing from CHECK constraints."""

from repro.catalog import Catalog, narrow_domains


def domains_for(ddl: str):
    catalog = Catalog.from_ddl(ddl)
    table = next(iter(catalog))
    return narrow_domains(table)


def test_between_narrows_to_range():
    domains = domains_for(
        "CREATE TABLE T (A INT, CHECK (A BETWEEN 5 AND 9))"
    )
    assert domains["A"].low == 5 and domains["A"].high == 9


def test_in_list_narrows_to_enumeration():
    domains = domains_for(
        "CREATE TABLE T (C VARCHAR(10), CHECK (C IN ('a', 'b')))"
    )
    assert domains["C"].values == ("a", "b")


def test_equality_narrows_to_singleton():
    domains = domains_for("CREATE TABLE T (A INT, CHECK (A = 7))")
    assert domains["A"].values == (7,)


def test_inequalities_narrow_bounds():
    domains = domains_for(
        "CREATE TABLE T (A INT, CHECK (A >= 3), CHECK (A < 10))"
    )
    assert domains["A"].low == 3 and domains["A"].high == 9


def test_flipped_comparison_handled():
    domains = domains_for("CREATE TABLE T (A INT, CHECK (3 = A))")
    assert domains["A"].values == (3,)


def test_multi_column_disjunction_does_not_narrow():
    # The paper's BUDGET <> 0 OR STATUS = 'Inactive' constrains no single
    # column's domain.
    domains = domains_for(
        "CREATE TABLE T (B INT, S VARCHAR(10), "
        "CHECK (B <> 0 OR S = 'Inactive'))"
    )
    assert domains["B"].low is None and domains["B"].values is None
    assert domains["S"].values is None


def test_conjoined_checks_intersect():
    domains = domains_for(
        "CREATE TABLE T (A INT, CHECK (A BETWEEN 1 AND 100 AND A BETWEEN 50 AND 200))"
    )
    assert domains["A"].low == 50 and domains["A"].high == 100


def test_negated_between_ignored():
    domains = domains_for(
        "CREATE TABLE T (A INT, CHECK (A NOT BETWEEN 1 AND 5))"
    )
    assert domains["A"].low is None


def test_not_null_column_domain_excludes_null():
    catalog = Catalog.from_ddl(
        "CREATE TABLE T (A INT, PRIMARY KEY (A), CHECK (A BETWEEN 1 AND 3))"
    )
    domain = catalog.table("T").column("A").effective_domain()
    assert not domain.nullable
