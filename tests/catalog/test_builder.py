"""Fluent catalog builder."""

import pytest

from repro.catalog import CatalogBuilder
from repro.errors import CatalogError


def build_supplier():
    return (
        CatalogBuilder()
        .table("SUPPLIER")
        .column("SNO", "INT")
        .column("SNAME", "VARCHAR")
        .primary_key("SNO")
        .check("SNO BETWEEN 1 AND 499")
        .finish()
        .table("PARTS")
        .column("SNO")
        .column("PNO")
        .column("OEM_PNO")
        .primary_key("SNO", "PNO")
        .unique("OEM_PNO")
        .foreign_key("SNO", "SUPPLIER", "SNO")
        .finish()
        .build()
    )


def test_builder_round_trip():
    catalog = build_supplier()
    supplier = catalog.table("SUPPLIER")
    assert supplier.primary_key.columns == ("SNO",)
    assert not supplier.column("SNO").nullable
    assert supplier.column("SNO").domain.high == 499


def test_builder_lowercase_names_normalized():
    catalog = (
        CatalogBuilder()
        .table("t")
        .column("a")
        .primary_key("a")
        .finish()
        .build()
    )
    assert catalog.has_table("T")
    assert catalog.table("T").has_column("A")


def test_builder_foreign_key_recorded():
    parts = build_supplier().table("PARTS")
    fk = parts.foreign_keys[0]
    assert fk.ref_table == "SUPPLIER"
    assert fk.columns == ("SNO",)


def test_builder_rejects_second_primary_key():
    table = CatalogBuilder().table("T").column("A").column("B").primary_key("A")
    with pytest.raises(CatalogError):
        table.primary_key("B")


def test_builder_check_narrows_domain():
    catalog = (
        CatalogBuilder()
        .table("T")
        .column("C", "VARCHAR")
        .check("C IN ('x', 'y')")
        .finish()
        .build()
    )
    assert catalog.table("T").column("C").domain.values == ("x", "y")
