"""Catalog and DDL ingestion behaviour."""

import pytest

from repro.catalog import Catalog, CheckConstraint, KeyConstraint, TableSchema, Column
from repro.errors import (
    CatalogError,
    UnknownColumnError,
    UnknownTableError,
)


def make_catalog():
    return Catalog.from_ddl(
        """CREATE TABLE SUPPLIER (
             SNO INT, SNAME VARCHAR(30),
             PRIMARY KEY (SNO),
             CHECK (SNO BETWEEN 1 AND 499));
           CREATE TABLE PARTS (
             SNO INT, PNO INT, OEM-PNO INT,
             PRIMARY KEY (SNO, PNO),
             UNIQUE (OEM-PNO));"""
    )


class TestDdlIngestion:
    def test_tables_registered(self):
        catalog = make_catalog()
        assert catalog.table_names() == ["PARTS", "SUPPLIER"]
        assert "supplier" in catalog  # case-insensitive

    def test_primary_key_columns_become_not_null(self):
        catalog = make_catalog()
        parts = catalog.table("PARTS")
        assert not parts.column("SNO").nullable
        assert not parts.column("PNO").nullable
        assert parts.column("OEM-PNO").nullable  # UNIQUE stays nullable

    def test_candidate_keys_primary_first(self):
        parts = make_catalog().table("PARTS")
        keys = parts.candidate_keys
        assert keys[0].is_primary and keys[0].columns == ("SNO", "PNO")
        assert not keys[1].is_primary and keys[1].columns == ("OEM-PNO",)

    def test_check_constraint_narrows_domain(self):
        supplier = make_catalog().table("SUPPLIER")
        domain = supplier.column("SNO").domain
        assert domain.low == 1 and domain.high == 499

    def test_duplicate_table_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.load_ddl("CREATE TABLE SUPPLIER (X INT)")

    def test_two_primary_keys_rejected(self):
        with pytest.raises(CatalogError):
            Catalog.from_ddl(
                "CREATE TABLE T (A INT, B INT, PRIMARY KEY (A), PRIMARY KEY (B))"
            )

    def test_key_over_unknown_column_rejected(self):
        with pytest.raises(UnknownColumnError):
            Catalog.from_ddl("CREATE TABLE T (A INT, PRIMARY KEY (NOPE))")

    def test_insert_statement_rejected_in_ddl(self):
        with pytest.raises(CatalogError):
            Catalog.from_ddl("INSERT INTO T VALUES (1)")


class TestLookup:
    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            make_catalog().table("MISSING")

    def test_drop(self):
        catalog = make_catalog()
        catalog.drop("PARTS")
        assert not catalog.has_table("PARTS")
        with pytest.raises(UnknownTableError):
            catalog.drop("PARTS")

    def test_column_index(self):
        parts = make_catalog().table("PARTS")
        assert parts.column_index("PNO") == 1
        with pytest.raises(UnknownColumnError):
            parts.column_index("NOPE")

    def test_describe_mentions_constraints(self):
        text = make_catalog().describe()
        assert "PRIMARY KEY (SNO, PNO)" in text
        assert "CHECK (SNO BETWEEN 1 AND 499)" in text


class TestTableSchemaValidation:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("T", [Column("A"), Column("A")])

    def test_key_constraint_requires_columns(self):
        with pytest.raises(ValueError):
            KeyConstraint(())

    def test_key_constraint_rejects_duplicates(self):
        with pytest.raises(ValueError):
            KeyConstraint(("A", "A"))

    def test_has_key(self):
        schema = TableSchema("T", [Column("A")])
        assert not schema.has_key()
        keyed = TableSchema(
            "T", [Column("A")], keys=[KeyConstraint(("A",), is_primary=True)]
        )
        assert keyed.has_key()
        assert keyed.primary_key is keyed.keys[0]
