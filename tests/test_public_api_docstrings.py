"""Every public name must carry a docstring.

``repro.__all__`` is the published API; a name without a docstring is
an undocumented contract.  ``inspect.getdoc`` follows the MRO, so a
class inheriting a meaningful docstring passes — but module-level
singletons (FAULTS, TRACER, ...) resolve to their class docstring,
which must therefore exist too.
"""

import inspect

import repro


def test_every_public_name_has_a_docstring():
    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        doc = inspect.getdoc(obj)
        if not (doc or "").strip():
            missing.append(name)
    assert missing == [], f"public names without docstrings: {missing}"


def test_public_modules_have_docstrings():
    import repro.engine
    import repro.errors
    import repro.observe
    import repro.resilience
    import repro.service
    import repro.sql

    for module in (
        repro,
        repro.engine,
        repro.errors,
        repro.observe,
        repro.resilience,
        repro.service,
        repro.sql,
    ):
        assert (module.__doc__ or "").strip(), module.__name__
