"""King-style join elimination via declared inclusion dependencies."""

import pytest

from repro.core.rewrite import JoinElimination, RewriteContext
from repro.engine import execute
from repro.sql import parse_query, to_sql


def apply(sql, catalog):
    outcome = JoinElimination().apply(parse_query(sql), RewriteContext(catalog))
    return None if outcome is None else outcome[0]


class TestEliminates:
    def test_parts_supplier_join_dropped(self, paper_catalog):
        rewritten = apply(
            "SELECT P.PNO, P.SNO FROM PARTS P, SUPPLIER S "
            "WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
            paper_catalog,
        )
        assert rewritten is not None
        assert to_sql(rewritten) == (
            "SELECT P.PNO, P.SNO FROM PARTS P WHERE P.COLOR = 'RED'"
        )

    def test_no_null_compensation_for_not_null_fk(self, paper_catalog):
        # PARTS.SNO is part of the primary key: NOT NULL, no IS NOT NULL.
        rewritten = apply(
            "SELECT P.PNO FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO",
            paper_catalog,
        )
        assert "IS NOT NULL" not in to_sql(rewritten)

    def test_nullable_fk_gets_compensation(self, paper_catalog):
        rewritten = apply(
            "SELECT A.ANO FROM AGENTS A, SUPPLIER S WHERE A.SNO = S.SNO",
            paper_catalog,
        )
        assert "A.SNO IS NOT NULL" in to_sql(rewritten)

    def test_flipped_equality_recognized(self, paper_catalog):
        rewritten = apply(
            "SELECT P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            paper_catalog,
        )
        assert rewritten is not None
        assert [t.name for t in rewritten.tables] == ["PARTS"]


class TestDeclines:
    def test_filtered_target_kept(self, paper_catalog):
        assert (
            apply(
                "SELECT P.PNO FROM PARTS P, SUPPLIER S "
                "WHERE P.SNO = S.SNO AND S.SCITY = 'Toronto'",
                paper_catalog,
            )
            is None
        )

    def test_projected_target_kept(self, paper_catalog):
        assert (
            apply(
                "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S "
                "WHERE P.SNO = S.SNO",
                paper_catalog,
            )
            is None
        )

    def test_no_foreign_key_no_elimination(self, paper_catalog):
        # SUPPLIER does not reference AGENTS.
        assert (
            apply(
                "SELECT S.SNO FROM SUPPLIER S, AGENTS A WHERE S.SNO = A.SNO",
                paper_catalog,
            )
            is None
        )

    def test_join_on_wrong_columns_kept(self, paper_catalog):
        assert (
            apply(
                "SELECT P.PNO FROM PARTS P, SUPPLIER S WHERE P.PNO = S.SNO",
                paper_catalog,
            )
            is None
        )

    def test_cross_product_kept(self, paper_catalog):
        assert (
            apply("SELECT P.PNO FROM PARTS P, SUPPLIER S WHERE P.PNO = 1",
                  paper_catalog)
            is None
        )

    def test_subqueries_block_the_rule(self, paper_catalog):
        assert (
            apply(
                "SELECT P.PNO FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO "
                "AND EXISTS (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO)",
                paper_catalog,
            )
            is None
        )


class TestSemantics:
    def test_results_preserved(self, tiny_db):
        sql = (
            "SELECT P.PNO, P.SNO FROM PARTS P, SUPPLIER S "
            "WHERE P.SNO = S.SNO AND P.COLOR = 'RED'"
        )
        rewritten = apply(sql, tiny_db.catalog)
        assert execute(sql, tiny_db).same_rows(execute(rewritten, tiny_db))

    def test_nullable_fk_results_preserved(self, tiny_db):
        from repro import NULL

        # add an agent with NULL SNO: it must stay excluded after rewrite
        tiny_db.insert("AGENTS", {"SNO": NULL, "ANO": 999, "ANAME": "zed",
                                  "ACITY": "Hull"})
        sql = "SELECT A.ANO FROM AGENTS A, SUPPLIER S WHERE A.SNO = S.SNO"
        rewritten = apply(sql, tiny_db.catalog)
        before = execute(sql, tiny_db)
        after = execute(rewritten, tiny_db)
        assert before.same_rows(after)
        assert (999,) not in after.rows
