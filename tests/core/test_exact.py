"""Bounded exact Theorem 1 checker."""

import pytest

from repro.catalog import Catalog
from repro.core import ExactOptions, check_theorem1, test_uniqueness
from repro.errors import UnsupportedQueryError


@pytest.fixture(scope="module")
def small_catalog():
    """A deliberately small schema so the search space stays tiny."""
    return Catalog.from_ddl(
        """CREATE TABLE SUPPLIER (
             SNO INT, SNAME VARCHAR(10), SCITY VARCHAR(10),
             PRIMARY KEY (SNO), CHECK (SNO BETWEEN 1 AND 3));
           CREATE TABLE PARTS (
             SNO INT, PNO INT, PNAME VARCHAR(10), COLOR VARCHAR(10),
             PRIMARY KEY (SNO, PNO),
             CHECK (SNO BETWEEN 1 AND 3), CHECK (PNO BETWEEN 1 AND 3));"""
    )


class TestPaperExamples:
    def test_example1_no_counterexample(self, small_catalog):
        result = check_theorem1(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            small_catalog,
        )
        assert result.unique is True
        assert result.combinations_checked > 0

    def test_example2_finds_counterexample(self, small_catalog):
        result = check_theorem1(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            small_catalog,
        )
        assert result.unique is False
        witness = result.counterexample
        assert witness is not None
        # The witness shows two suppliers sharing a name...
        s1, s2 = witness.tuples["S"]
        assert s1[1] == s2[1] and s1[0] != s2[0]
        # ...and both parts RED (the predicate holds for both tuples).
        p1, p2 = witness.tuples["P"]
        assert p1[3] == "RED" and p2[3] == "RED"
        assert "S:" in witness.describe()


class TestSemantics:
    def test_check_constraints_rule_out_counterexamples(self):
        # SNAME is pinned by a CHECK to a single value... duplicates on
        # (SNAME) still possible since keys differ; but pinning SNO's
        # domain to one value forces a single supplier.
        catalog = Catalog.from_ddl(
            """CREATE TABLE S1 (
                 SNO INT, SNAME VARCHAR(10),
                 PRIMARY KEY (SNO), CHECK (SNO = 7));"""
        )
        result = check_theorem1("SELECT DISTINCT SNAME FROM S1", catalog)
        assert result.unique is True

    def test_without_check_duplicates_possible(self):
        catalog = Catalog.from_ddl(
            "CREATE TABLE S2 (SNO INT, SNAME VARCHAR(10), PRIMARY KEY (SNO))"
        )
        result = check_theorem1("SELECT DISTINCT SNAME FROM S2", catalog)
        assert result.unique is False

    def test_host_variable_binding(self, small_catalog):
        result = check_theorem1(
            "SELECT DISTINCT P.PNO, P.PNAME FROM PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO",
            small_catalog,
        )
        assert result.unique is True

    def test_unique_candidate_key_with_nulls(self):
        # UNIQUE treats NULL as a single value (SQL2), so projecting the
        # candidate key is enough even when it is nullable.
        catalog = Catalog.from_ddl(
            """CREATE TABLE U (
                 A INT, B INT, PRIMARY KEY (A), UNIQUE (B),
                 CHECK (A BETWEEN 1 AND 3))"""
        )
        result = check_theorem1("SELECT DISTINCT B FROM U", catalog)
        assert result.unique is True

    def test_keyless_table_fails_fast(self):
        catalog = Catalog.from_ddl("CREATE TABLE H (X INT)")
        result = check_theorem1("SELECT DISTINCT X FROM H", catalog)
        assert result.unique is False
        assert result.counterexample is None  # precondition failure


class TestLimits:
    def test_budget_exhaustion_is_inconclusive(self, small_catalog):
        result = check_theorem1(
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P "
            "WHERE S.SNAME = P.PNAME",
            small_catalog,
            ExactOptions(domain_size=3, max_assignments=5),
        )
        assert result.unique in (None, False)
        if result.unique is None:
            assert "budget" in result.reason

    def test_subqueries_unsupported(self, small_catalog):
        with pytest.raises(UnsupportedQueryError):
            check_theorem1(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE EXISTS "
                "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
                small_catalog,
            )

    def test_setop_unsupported(self, small_catalog):
        with pytest.raises(UnsupportedQueryError):
            check_theorem1(
                "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM PARTS",
                small_catalog,
            )


class TestAgreementWithAlgorithm1:
    """Algorithm 1 YES must imply the exact checker finds nothing."""

    QUERIES = [
        "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO",
        "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNAME = 'x'",
        "SELECT DISTINCT P.PNO, P.SNO FROM PARTS P",
        "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.PNAME = :N",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_yes_is_confirmed_exactly(self, small_catalog, sql):
        algo = test_uniqueness(sql, small_catalog)
        assert algo.unique, "test precondition: Algorithm 1 says YES"
        exact = check_theorem1(sql, small_catalog)
        assert exact.unique is True
