"""Algorithm 1 behaviour, including the paper's worked examples."""

import pytest

from repro.catalog import Catalog
from repro.core import UniquenessOptions, is_duplicate_free, test_uniqueness
from repro.errors import UnsupportedQueryError


def verdict(sql, catalog, **options):
    opts = UniquenessOptions(**options) if options else None
    return test_uniqueness(sql, catalog, opts)


class TestPaperExamples:
    def test_example1_distinct_unnecessary(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            paper_catalog,
        )
        assert result.unique

    def test_example2_distinct_required(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            paper_catalog,
        )
        assert not result.unique
        assert "S" in result.reason  # SUPPLIER's key is not bound

    def test_example4_host_variable_binds_key(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            paper_catalog,
        )
        assert result.unique

    def test_example5_trace_matches_paper(self, paper_catalog):
        # Example 5 traces Algorithm 1 on Example 4's query: V must grow
        # from A = {S.SNO, SNAME, P.PNO, PNAME} to include P.SNO.
        result = verdict(
            "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            paper_catalog,
        )
        assert len(result.terms) == 1
        bound = {str(a) for a in result.terms[0].bound}
        assert bound == {"S.SNO", "S.SNAME", "P.PNO", "P.PNAME", "P.SNO"}

    def test_example6_nonkey_selection(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR "
            "FROM SUPPLIER S, PARTS P "
            "WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO",
            paper_catalog,
        )
        assert result.unique


class TestCandidateKeys:
    def test_unique_constraint_counts_as_key(self, paper_catalog):
        # OEM-PNO is a candidate key of PARTS: binding it suffices.
        result = verdict(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
            "WHERE P.OEM-PNO = :X AND S.SNO = P.SNO",
            paper_catalog,
        )
        assert result.unique

    def test_keyless_table_fails(self):
        catalog = Catalog.from_ddl(
            "CREATE TABLE K (A INT, PRIMARY KEY (A));"
            "CREATE TABLE HEAP (X INT)"
        )
        result = verdict(
            "SELECT DISTINCT K.A, H.X FROM K, HEAP H WHERE K.A = H.X",
            catalog,
        )
        assert not result.unique
        assert "HEAP" in result.reason

    def test_single_table_key_in_projection(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT SNO, SNAME FROM SUPPLIER", paper_catalog
        )
        assert result.unique

    def test_single_table_key_missing(self, paper_catalog):
        result = verdict("SELECT DISTINCT SNAME FROM SUPPLIER", paper_catalog)
        assert not result.unique


class TestDisjunctionHandling:
    def test_same_column_disjunction_dropped(self, paper_catalog):
        # X = 5 OR X = 10 binds nothing (the paper's line 8 example):
        # two rows can pick different branches.
        result = verdict(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S "
            "WHERE S.SNO = 5 OR S.SNO = 10",
            paper_catalog,
        )
        assert not result.unique
        assert result.dropped_clauses

    def test_in_list_treated_as_same_column_disjunction(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE S.SNO IN (5, 10)",
            paper_catalog,
        )
        assert not result.unique

    def test_cross_column_disjunction_checked_per_term(self, paper_catalog):
        # (SNO = 1 OR SNAME = 'x'): the SNAME branch leaves SNO unbound.
        result = verdict(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S "
            "WHERE S.SNO = 1 OR S.SNAME = 'x'",
            paper_catalog,
        )
        assert not result.unique
        assert len(result.terms) >= 1

    def test_cross_column_disjunction_can_succeed(self, paper_catalog):
        # Keys are projected anyway; a kept disjunction must not break it.
        result = verdict(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S "
            "WHERE S.SNAME = 'x' OR S.SCITY = 'y'",
            paper_catalog,
        )
        assert result.unique
        assert len(result.terms) == 2

    def test_conservative_mode_drops_all_disjunctions(self, paper_catalog):
        sql = (
            "SELECT DISTINCT S.SNO FROM SUPPLIER S "
            "WHERE S.SNAME = 'x' OR S.SCITY = 'y'"
        )
        liberal = verdict(sql, paper_catalog)
        conservative = verdict(
            sql, paper_catalog, disjunction_handling="conservative"
        )
        # Both answer YES here (key projected), but the conservative mode
        # must have dropped the clause rather than analyzed it.
        assert liberal.unique and conservative.unique
        assert conservative.dropped_clauses and not liberal.dropped_clauses

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            UniquenessOptions(disjunction_handling="yolo")


class TestOptions:
    def test_paper_strict_returns_no_on_empty_condition(self, paper_catalog):
        sql = "SELECT DISTINCT SNO FROM SUPPLIER"
        default = verdict(sql, paper_catalog)
        strict = verdict(sql, paper_catalog, paper_strict=True)
        assert default.unique
        assert not strict.unique
        assert "line 10" in strict.reason

    def test_paper_strict_unaffected_when_conditions_survive(
        self, paper_catalog
    ):
        sql = (
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO"
        )
        assert verdict(sql, paper_catalog, paper_strict=True).unique

    def test_is_null_binding_extension(self, paper_catalog):
        # OEM-PNO IS NULL pins the candidate key to the single NULL value.
        sql = (
            "SELECT DISTINCT P.PNAME FROM PARTS P WHERE P.OEM-PNO IS NULL"
        )
        assert not verdict(sql, paper_catalog).unique
        assert verdict(
            sql, paper_catalog, treat_is_null_as_binding=True
        ).unique

    def test_clause_budget_gives_conservative_no(self, paper_catalog):
        sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE " + " AND ".join(
            f"(S.SNO = {i} OR S.SNAME = 'n{i}')" for i in range(12)
        )
        result = verdict(sql, paper_catalog, clause_budget=16)
        assert not result.unique
        assert "budget" in result.reason


class TestNonEqualityAtoms:
    def test_range_predicate_binds_nothing(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S "
            "WHERE S.SNO BETWEEN 1 AND 1",
            paper_catalog,
        )
        # Even though the range pins SNO to one value, Algorithm 1 only
        # uses equality atoms (a documented source of conservatism).
        assert not result.unique

    def test_subquery_conjunct_dropped(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S "
            "WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            paper_catalog,
        )
        assert result.unique  # key projected; EXISTS conjunct ignored


class TestIsDuplicateFree:
    def test_distinct_query_always(self, paper_catalog):
        assert is_duplicate_free(
            "SELECT DISTINCT SNAME FROM SUPPLIER", paper_catalog
        )

    def test_all_query_uses_algorithm1(self, paper_catalog):
        assert is_duplicate_free("SELECT SNO FROM SUPPLIER", paper_catalog)
        assert not is_duplicate_free(
            "SELECT SNAME FROM SUPPLIER", paper_catalog
        )

    def test_distinct_set_operations(self, paper_catalog):
        assert is_duplicate_free(
            "SELECT SNAME FROM SUPPLIER INTERSECT SELECT ANAME FROM AGENTS",
            paper_catalog,
        )

    def test_intersect_all_needs_one_unique_side(self, paper_catalog):
        assert is_duplicate_free(
            "SELECT SNAME FROM SUPPLIER INTERSECT ALL SELECT SNO FROM SUPPLIER",
            paper_catalog,
        )
        assert not is_duplicate_free(
            "SELECT SNAME FROM SUPPLIER INTERSECT ALL "
            "SELECT ANAME FROM AGENTS",
            paper_catalog,
        )

    def test_except_all_needs_left_unique(self, paper_catalog):
        assert is_duplicate_free(
            "SELECT SNO FROM SUPPLIER EXCEPT ALL SELECT ANO FROM AGENTS",
            paper_catalog,
        )
        assert not is_duplicate_free(
            "SELECT SNAME FROM SUPPLIER EXCEPT ALL SELECT SNO FROM SUPPLIER",
            paper_catalog,
        )

    def test_union_all_never_provable(self, paper_catalog):
        assert not is_duplicate_free(
            "SELECT SNO FROM SUPPLIER UNION ALL SELECT ANO FROM AGENTS",
            paper_catalog,
        )

    def test_setop_rejected_by_test_uniqueness(self, paper_catalog):
        with pytest.raises(UnsupportedQueryError):
            test_uniqueness(
                "SELECT SNO FROM SUPPLIER UNION SELECT ANO FROM AGENTS",
                paper_catalog,
            )


class TestExplain:
    def test_explain_mentions_terms_and_decision(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            paper_catalog,
        )
        text = result.explain()
        assert "YES" in text
        assert "term E1" in text
        assert "projection A" in text

    def test_explain_shows_dropped_clauses(self, paper_catalog):
        result = verdict(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.BUDGET > 5",
            paper_catalog,
        )
        assert "dropped clause" in result.explain()

    def test_result_is_truthy(self, paper_catalog):
        assert verdict("SELECT DISTINCT SNO FROM SUPPLIER", paper_catalog)
        assert not verdict(
            "SELECT DISTINCT SNAME FROM SUPPLIER", paper_catalog
        )


class TestCheckConstraintExploitation:
    """§8 extension: true-interpreted CHECK predicates (opt-in)."""

    DDL = """
    CREATE TABLE ORDERS (
      OID INT, REGION VARCHAR(10) NOT NULL, NOTE VARCHAR(20),
      PRIMARY KEY (OID),
      CHECK (REGION = 'EU'));
    CREATE TABLE HQ (
      REGION VARCHAR(10) NOT NULL, CITY VARCHAR(20),
      PRIMARY KEY (REGION));
    """

    SQL = (
        "SELECT DISTINCT O.OID, H.CITY FROM ORDERS O, HQ H "
        "WHERE O.REGION = H.REGION"
    )

    def catalog(self):
        return Catalog.from_ddl(self.DDL)

    def test_default_misses_the_constraint(self):
        assert not verdict(self.SQL, self.catalog()).unique

    def test_option_exploits_equality_check(self):
        # CHECK (REGION = 'EU') on a NOT NULL column pins O.REGION, which
        # chains to H.REGION — HQ's key — through the join predicate.
        result = verdict(self.SQL, self.catalog(), use_check_constraints=True)
        assert result.unique

    def test_nullable_check_column_not_exploited(self):
        catalog = Catalog.from_ddl(
            """CREATE TABLE T (
                 A INT, B VARCHAR(10),
                 PRIMARY KEY (A),
                 CHECK (B = 'x'));
               CREATE TABLE U (
                 B VARCHAR(10) NOT NULL, C INT,
                 PRIMARY KEY (B));"""
        )
        # B is nullable: CHECK (B = 'x') is also satisfied by NULL, so it
        # must NOT be treated as a binding — exploiting it would wrongly
        # pin T.B (and through the join, U's key B).
        result = verdict(
            "SELECT DISTINCT T.A, U.C FROM T, U WHERE T.B = U.B",
            catalog,
            use_check_constraints=True,
        )
        assert not result.unique

    def test_multi_column_check_conjunct_not_exploited(self):
        catalog = Catalog.from_ddl(
            """CREATE TABLE W (
                 A INT, B INT NOT NULL, C INT,
                 PRIMARY KEY (A),
                 CHECK (B = 1 AND C >= 0))"""
        )
        # Only the B = 1 conjunct qualifies (C is nullable); it must be
        # usable independently of the rest of the CHECK.
        result = verdict(
            "SELECT DISTINCT W.C FROM W WHERE W.A = W.B",
            catalog,
            use_check_constraints=True,
        )
        # B = 1 binds B; A = B chains to the key A.
        assert result.unique
