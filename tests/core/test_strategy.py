"""Cost model and cost-based strategy selection."""

import pytest

from repro.core import StrategySelector
from repro.engine import CostModel, Planner, execute, execute_planned
from repro.workloads import SupplierScale, build_database, generate


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=60, parts_per_supplier=8))
    )


class TestCostModel:
    def plan_estimate(self, db, sql):
        plan = Planner(db.catalog).plan(sql)
        return CostModel(db).estimate(plan)

    def test_scan_cardinality_from_database(self, db):
        estimate = self.plan_estimate(db, "SELECT SNO FROM SUPPLIER")
        assert estimate.rows == 60

    def test_filter_reduces_cardinality(self, db):
        unfiltered = self.plan_estimate(db, "SELECT SNO FROM SUPPLIER")
        filtered = self.plan_estimate(
            db, "SELECT SNO FROM SUPPLIER WHERE SCITY = 'Toronto'"
        )
        assert filtered.rows < unfiltered.rows

    def test_distinct_costs_more_than_all(self, db):
        plain = self.plan_estimate(db, "SELECT SCITY FROM SUPPLIER")
        distinct = self.plan_estimate(db, "SELECT DISTINCT SCITY FROM SUPPLIER")
        assert distinct.cost > plain.cost

    def test_correlated_subquery_is_expensive(self, db):
        nested = self.plan_estimate(
            db,
            "SELECT SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
        )
        flat = self.plan_estimate(
            db,
            "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE P.SNO = S.SNO",
        )
        assert nested.cost > flat.cost

    def test_nested_loop_costs_more_than_hash_join(self, db):
        from repro.engine import PlannerOptions

        sql = "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"
        hash_est = CostModel(db).estimate(Planner(db.catalog).plan(sql))
        nested_est = CostModel(db).estimate(
            Planner(db.catalog, PlannerOptions(join_method="nested")).plan(sql)
        )
        assert nested_est.cost > hash_est.cost

    def test_disjunction_selectivity_below_one(self, db):
        estimate = self.plan_estimate(
            db,
            "SELECT SNO FROM SUPPLIER WHERE SCITY = 'x' OR SCITY = 'y'",
        )
        assert estimate.rows < 60

    def test_estimate_str(self, db):
        estimate = self.plan_estimate(db, "SELECT SNO FROM SUPPLIER")
        assert "rows" in str(estimate) and "cost" in str(estimate)


class TestStrategySelector:
    def test_prefers_flattened_join_over_nested_exists(self, db):
        selector = StrategySelector(db)
        choice = selector.choose(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :N)"
        )
        assert "EXISTS" not in choice.sql
        assert len(choice.candidates) == 2
        original, rewritten = choice.candidates
        assert original.estimate.cost > rewritten.estimate.cost

    def test_unchanged_query_is_the_only_candidate(self, db):
        selector = StrategySelector(db)
        choice = selector.choose("SELECT SNAME FROM SUPPLIER")
        assert len(choice.candidates) == 1
        assert choice.sql == "SELECT SNAME FROM SUPPLIER"

    def test_distinct_elimination_always_wins(self, db):
        selector = StrategySelector(db)
        choice = selector.choose(
            "SELECT DISTINCT SNO, SNAME FROM SUPPLIER"
        )
        assert not choice.query.distinct

    def test_chosen_query_gives_same_results(self, db):
        sql = (
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
            "AND EXISTS (SELECT * FROM PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED')"
        )
        selector = StrategySelector(db)
        choice = selector.choose(sql)
        assert execute(sql, db).same_rows(
            execute_planned(choice.query, db)
        )

    def test_explain_marks_winner(self, db):
        selector = StrategySelector(db)
        choice = selector.choose(
            "SELECT DISTINCT SNO FROM SUPPLIER"
        )
        text = choice.explain()
        assert "->" in text and "[original]" in text
