"""The §5.3 observation: nested query -> INTERSECT (inverse of Thm 3)."""

import pytest

from repro.core.rewrite import (
    ExistsToIntersect,
    IntersectToExists,
    RewriteContext,
)
from repro.engine import execute
from repro.sql import SetOperation, SetOpKind, parse_query, to_sql


def apply(sql, catalog):
    outcome = ExistsToIntersect().apply(
        parse_query(sql), RewriteContext(catalog)
    )
    return None if outcome is None else outcome[0]


EXAMPLE9_NESTED = (
    "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' AND EXISTS "
    "(SELECT * FROM AGENTS A WHERE (A.ACITY = 'Ottawa' OR A.ACITY = 'Hull') "
    "AND S.SNO = A.SNO)"
)


class TestConvertsMembership:
    def test_example9_round_trips_to_intersect(self, paper_catalog):
        rewritten = apply(EXAMPLE9_NESTED, paper_catalog)
        assert isinstance(rewritten, SetOperation)
        assert rewritten.kind is SetOpKind.INTERSECT and not rewritten.all
        assert to_sql(rewritten) == (
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
            "INTERSECT SELECT A.SNO FROM AGENTS A "
            "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"
        )

    def test_full_round_trip_with_intersect_to_exists(self, paper_catalog):
        ctx = RewriteContext(paper_catalog)
        forward = IntersectToExists().apply(
            apply(EXAMPLE9_NESTED, paper_catalog), ctx
        )
        assert forward is not None
        # back to a nested query specification
        assert "EXISTS" in to_sql(forward[0])

    def test_null_safe_pairing_accepted(self, paper_catalog):
        rewritten = apply(
            "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 1 AND EXISTS "
            "(SELECT * FROM AGENTS A WHERE "
            "(S.SNAME IS NULL AND A.ANAME IS NULL) OR S.SNAME = A.ANAME)",
            paper_catalog,
        )
        assert isinstance(rewritten, SetOperation)

    def test_results_preserved(self, tiny_db):
        before = execute(EXAMPLE9_NESTED, tiny_db)
        rewritten = apply(EXAMPLE9_NESTED, tiny_db.catalog)
        after = execute(rewritten, tiny_db)
        assert before.same_rows(after)


class TestDeclines:
    def test_duplicate_prone_outer_blocked(self, paper_catalog):
        # SCITY is not a key: the INTERSECT would collapse duplicates the
        # nested query keeps.
        assert (
            apply(
                "SELECT S.SCITY FROM SUPPLIER S WHERE EXISTS "
                "(SELECT * FROM AGENTS A WHERE S.SNO = A.SNO)",
                paper_catalog,
            )
            is None
        )

    def test_pairing_must_cover_projection(self, paper_catalog):
        # correlation on SNO but SNAME is also projected: not membership
        assert (
            apply(
                "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
                "(SELECT * FROM AGENTS A WHERE S.SNO = A.SNO)",
                paper_catalog,
            )
            is None
        )

    def test_extra_correlation_blocked(self, paper_catalog):
        assert (
            apply(
                "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
                "(SELECT * FROM AGENTS A WHERE S.SNO = A.SNO "
                "AND A.ANAME = S.SNAME)",
                paper_catalog,
            )
            is None
        )

    def test_nullable_plain_equality_blocked(self, paper_catalog):
        # SNAME/ANAME are both nullable: plain '=' is not ≐, so the
        # INTERSECT (which matches NULLs) would differ.
        assert (
            apply(
                "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 1 AND EXISTS "
                "(SELECT * FROM AGENTS A WHERE S.SNAME = A.ANAME)",
                paper_catalog,
            )
            is None
        )

    def test_negated_exists_blocked(self, paper_catalog):
        assert (
            apply(
                "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS "
                "(SELECT * FROM AGENTS A WHERE S.SNO = A.SNO)",
                paper_catalog,
            )
            is None
        )
