"""Theorem 2 (subquery uniqueness) and Theorem 3 (null-safe matching)."""

import pytest

from repro.analysis import Attribute
from repro.core import (
    UniquenessOptions,
    correlation_predicate,
    null_safe_equality,
    projection_columns,
    subquery_matches_at_most_one,
)
from repro.errors import UnsupportedQueryError
from repro.sql import ColumnRef, Comparison, Or, parse_query, to_sql


def check_theorem2(outer_sql, catalog, **options):
    outer = parse_query(outer_sql)
    from repro.sql import Exists, conjuncts

    exists_atoms = [
        atom
        for atom in conjuncts(outer.where)
        if isinstance(atom, Exists)
    ]
    assert len(exists_atoms) == 1, "test helper expects one EXISTS"
    inner = exists_atoms[0].query
    opts = UniquenessOptions(**options) if options else None
    return subquery_matches_at_most_one(inner, outer, catalog, opts)


class TestTheorem2:
    def test_example7_at_most_one(self, paper_catalog):
        result = check_theorem2(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
            "WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)",
            paper_catalog,
        )
        assert result.at_most_one

    def test_example8_many_matches(self, paper_catalog):
        # Many red parts per supplier: the inner key (SNO, PNO) is not
        # fully bound.
        result = check_theorem2(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            paper_catalog,
        )
        assert not result.at_most_one
        assert "P" in result.reason

    def test_candidate_key_binding_suffices(self, paper_catalog):
        result = check_theorem2(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.OEM-PNO = :X AND P.SNO = S.SNO)",
            paper_catalog,
        )
        assert result.at_most_one  # OEM-PNO is a candidate key

    def test_transitive_binding_through_inner_equalities(self, paper_catalog):
        result = check_theorem2(
            "SELECT ALL A.ANO FROM AGENTS A WHERE EXISTS "
            "(SELECT * FROM PARTS P "
            "WHERE P.SNO = A.SNO AND P.PNO = P.OEM-PNO AND P.OEM-PNO = :N)",
            paper_catalog,
        )
        assert result.at_most_one

    def test_no_predicate_means_many(self, paper_catalog):
        outer = parse_query(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P)"
        )
        from repro.sql import Exists

        inner = outer.where.query if isinstance(outer.where, Exists) else None
        result = subquery_matches_at_most_one(inner, outer, paper_catalog)
        assert not result.at_most_one

    def test_keyless_inner_table(self, paper_catalog):
        from repro.catalog import Catalog

        catalog = Catalog.from_ddl(
            "CREATE TABLE R (A INT, PRIMARY KEY (A)); CREATE TABLE H (X INT)"
        )
        result = check_theorem2(
            "SELECT ALL R.A FROM R WHERE EXISTS "
            "(SELECT * FROM H WHERE H.X = R.A)",
            catalog,
        )
        assert not result.at_most_one
        assert "candidate key" in result.reason

    def test_disjunctive_correlation_per_term(self, paper_catalog):
        # (P.PNO = :A OR P.PNO = :B) is a same-column disjunction: dropped,
        # so the key is not bound.
        result = check_theorem2(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO "
            "AND (P.PNO = :A OR P.PNO = :B))",
            paper_catalog,
        )
        assert not result.at_most_one


class TestTheorem3Predicates:
    def test_nullable_pair_gets_null_test(self):
        left = ColumnRef("S", "X")
        right = ColumnRef("A", "X")
        predicate = null_safe_equality(left, right, nullable=True)
        assert isinstance(predicate, Or)
        text = to_sql(predicate)
        assert "IS NULL" in text and "S.X = A.X" in text

    def test_non_nullable_pair_plain_equality(self):
        predicate = null_safe_equality(
            ColumnRef("S", "SNO"), ColumnRef("A", "SNO"), nullable=False
        )
        assert isinstance(predicate, Comparison)

    def test_correlation_predicate_pairs_positionally(self, paper_catalog):
        left = parse_query("SELECT SNO, SNAME FROM SUPPLIER")
        right = parse_query("SELECT SNO, ANAME FROM AGENTS")
        left_columns = projection_columns(left, paper_catalog)
        right_columns = projection_columns(right, paper_catalog)
        predicate = correlation_predicate(left_columns, right_columns)
        text = to_sql(predicate)
        # SUPPLIER.SNO is NOT NULL, so even though AGENTS.SNO is nullable
        # the pair needs no null test (one NULL side can never match a
        # non-nullable side); SNAME/ANAME are both nullable and do.
        assert "SUPPLIER.SNO = AGENTS.SNO" in text
        assert "SUPPLIER.SNO IS NULL" not in text
        assert "SUPPLIER.SNAME IS NULL AND AGENTS.ANAME IS NULL" in text

    def test_union_incompatible_rejected(self, paper_catalog):
        left = parse_query("SELECT SNO, SNAME FROM SUPPLIER")
        right = parse_query("SELECT SNO FROM AGENTS")
        with pytest.raises(UnsupportedQueryError):
            correlation_predicate(
                projection_columns(left, paper_catalog),
                projection_columns(right, paper_catalog),
            )

    def test_projection_columns_star(self, paper_catalog):
        query = parse_query("SELECT * FROM AGENTS")
        columns = projection_columns(query, paper_catalog)
        assert [ref.column for ref, _ in columns] == [
            "SNO", "ANO", "ANAME", "ACITY",
        ]
        nullables = {ref.column: nullable for ref, nullable in columns}
        assert not nullables["ANO"]  # primary key
        assert nullables["SNO"]
