"""Rewrite rules and the tracing optimizer."""

import pytest

from repro.core import Optimizer, UniquenessOptions
from repro.core.rewrite import (
    DistinctElimination,
    ExceptToNotExists,
    InToExists,
    IntersectToExists,
    JoinToSubquery,
    RewriteContext,
    SubqueryToJoin,
    rename_alias,
)
from repro.sql import (
    Exists,
    Quantifier,
    SelectQuery,
    SetOperation,
    parse_query,
    to_sql,
)


def ctx_for(catalog, **options):
    opts = UniquenessOptions(**options) if options else None
    return RewriteContext(catalog, opts)


def apply_rule(rule, sql, catalog):
    outcome = rule.apply(parse_query(sql), ctx_for(catalog))
    if outcome is None:
        return None
    return outcome[0]


class TestDistinctElimination:
    def test_fires_on_redundant_distinct(self, paper_catalog):
        rewritten = apply_rule(
            DistinctElimination(),
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO",
            paper_catalog,
        )
        assert rewritten is not None
        assert rewritten.quantifier is Quantifier.ALL

    def test_keeps_necessary_distinct(self, paper_catalog):
        assert (
            apply_rule(
                DistinctElimination(),
                "SELECT DISTINCT SNAME FROM SUPPLIER",
                paper_catalog,
            )
            is None
        )

    def test_ignores_all_queries(self, paper_catalog):
        assert (
            apply_rule(
                DistinctElimination(),
                "SELECT SNO FROM SUPPLIER",
                paper_catalog,
            )
            is None
        )


class TestSubqueryToJoin:
    def test_theorem2_flatten_preserves_quantifier(self, paper_catalog):
        rewritten = apply_rule(
            SubqueryToJoin(),
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :N)",
            paper_catalog,
        )
        assert rewritten is not None
        assert rewritten.quantifier is Quantifier.ALL
        assert len(rewritten.tables) == 2
        assert "EXISTS" not in to_sql(rewritten)

    def test_corollary1_flatten_introduces_distinct(self, paper_catalog):
        rewritten = apply_rule(
            SubqueryToJoin(),
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            paper_catalog,
        )
        assert rewritten.quantifier is Quantifier.DISTINCT

    def test_distinct_outer_always_flattens(self, paper_catalog):
        rewritten = apply_rule(
            SubqueryToJoin(),
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            paper_catalog,
        )
        assert rewritten is not None
        assert rewritten.quantifier is Quantifier.DISTINCT

    def test_no_valid_justification_means_no_rewrite(self, paper_catalog):
        # ALL + non-unique inner + non-unique outer projection.
        assert (
            apply_rule(
                SubqueryToJoin(),
                "SELECT ALL S.SNAME FROM SUPPLIER S WHERE EXISTS "
                "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO "
                "AND P.COLOR = 'RED')",
                paper_catalog,
            )
            is None
        )

    def test_negated_exists_untouched(self, paper_catalog):
        assert (
            apply_rule(
                SubqueryToJoin(),
                "SELECT ALL S.SNO FROM SUPPLIER S WHERE NOT EXISTS "
                "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :N)",
                paper_catalog,
            )
            is None
        )

    def test_alias_conflict_renamed(self, paper_catalog):
        rewritten = apply_rule(
            SubqueryToJoin(),
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS S WHERE S.PNO = :N AND S.SNO = 1)",
            paper_catalog,
        )
        assert rewritten is not None
        aliases = [t.effective_name for t in rewritten.tables]
        assert len(set(aliases)) == 2
        assert "S_1" in aliases

    def test_other_conjuncts_preserved(self, paper_catalog):
        rewritten = apply_rule(
            SubqueryToJoin(),
            "SELECT ALL S.SNO FROM SUPPLIER S "
            "WHERE S.SCITY = 'Toronto' AND EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :N)",
            paper_catalog,
        )
        assert "S.SCITY = 'Toronto'" in to_sql(rewritten)


class TestInToExists:
    def test_positive_in_normalized(self, paper_catalog):
        rewritten = apply_rule(
            InToExists(),
            "SELECT S.SNO FROM SUPPLIER S "
            "WHERE S.SNO IN (SELECT P.SNO FROM PARTS P)",
            paper_catalog,
        )
        assert "EXISTS" in to_sql(rewritten)
        assert "IN (SELECT" not in to_sql(rewritten)

    def test_negated_in_untouched(self, paper_catalog):
        assert (
            apply_rule(
                InToExists(),
                "SELECT S.SNO FROM SUPPLIER S "
                "WHERE S.SNO NOT IN (SELECT P.SNO FROM PARTS P)",
                paper_catalog,
            )
            is None
        )

    def test_multi_column_inner_untouched(self, paper_catalog):
        assert (
            apply_rule(
                InToExists(),
                "SELECT S.SNO FROM SUPPLIER S "
                "WHERE S.SNO IN (SELECT * FROM PARTS P)",
                paper_catalog,
            )
            is None
        )


class TestIntersectToExists:
    def test_example9_form(self, paper_catalog):
        rewritten = apply_rule(
            IntersectToExists(),
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
            "INTERSECT "
            "SELECT ALL A.SNO FROM AGENTS A "
            "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
            paper_catalog,
        )
        assert isinstance(rewritten, SelectQuery)
        text = to_sql(rewritten)
        assert "EXISTS" in text
        # SUPPLIER.SNO is NOT NULL, so the plain equijoin suffices — the
        # paper's footnote 1.
        assert "S.SNO = A.SNO" in text
        assert "IS NULL" not in text

    def test_both_nullable_pair_gets_null_test(self, paper_catalog):
        rewritten = apply_rule(
            IntersectToExists(),
            "SELECT SNO, SNAME FROM SUPPLIER "
            "INTERSECT SELECT SNO, ANAME FROM AGENTS",
            paper_catalog,
        )
        # SNAME and ANAME are both nullable: the ≐ test is required.
        assert "IS NULL" in to_sql(rewritten)

    def test_right_side_unique_swaps_operands(self, paper_catalog):
        rewritten = apply_rule(
            IntersectToExists(),
            "SELECT SNAME FROM SUPPLIER INTERSECT SELECT SNO FROM SUPPLIER",
            paper_catalog,
        )
        assert rewritten is not None
        # the unique (right) side became the outer block
        assert rewritten.select_list[0].expr.column == "SNO"

    def test_neither_side_unique_no_rewrite(self, paper_catalog):
        assert (
            apply_rule(
                IntersectToExists(),
                "SELECT SNAME FROM SUPPLIER INTERSECT "
                "SELECT ANAME FROM AGENTS",
                paper_catalog,
            )
            is None
        )

    def test_intersect_all_with_unique_left(self, paper_catalog):
        rewritten = apply_rule(
            IntersectToExists(),
            "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM AGENTS",
            paper_catalog,
        )
        assert rewritten is not None

    def test_non_nullable_pair_uses_plain_equality(self, paper_catalog):
        rewritten = apply_rule(
            IntersectToExists(),
            "SELECT SNO FROM SUPPLIER INTERSECT SELECT ANO FROM AGENTS",
            paper_catalog,
        )
        text = to_sql(rewritten)
        assert "IS NULL" not in text  # both sides are NOT NULL keys


class TestExceptToNotExists:
    def test_unique_left_rewrites(self, paper_catalog):
        rewritten = apply_rule(
            ExceptToNotExists(),
            "SELECT SNO FROM SUPPLIER EXCEPT SELECT SNO FROM AGENTS",
            paper_catalog,
        )
        assert "NOT EXISTS" in to_sql(rewritten)

    def test_non_unique_left_blocked(self, paper_catalog):
        assert (
            apply_rule(
                ExceptToNotExists(),
                "SELECT SNAME FROM SUPPLIER EXCEPT SELECT ANAME FROM AGENTS",
                paper_catalog,
            )
            is None
        )

    def test_unique_right_does_not_help(self, paper_catalog):
        # EXCEPT is not commutative: a unique right operand is useless.
        assert (
            apply_rule(
                ExceptToNotExists(),
                "SELECT SNAME FROM SUPPLIER EXCEPT SELECT SNO FROM SUPPLIER",
                paper_catalog,
            )
            is None
        )


class TestJoinToSubquery:
    def test_example10_folds_parts(self, paper_catalog):
        rewritten = apply_rule(
            JoinToSubquery(),
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            paper_catalog,
        )
        assert rewritten is not None
        assert len(rewritten.tables) == 1
        assert "EXISTS" in to_sql(rewritten)

    def test_projected_table_not_folded(self, paper_catalog):
        assert (
            apply_rule(
                JoinToSubquery(),
                "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
                "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
                paper_catalog,
            )
            is None
        )

    def test_distinct_projection_allows_fold_without_uniqueness(
        self, paper_catalog
    ):
        rewritten = apply_rule(
            JoinToSubquery(),
            "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            paper_catalog,
        )
        assert rewritten is not None
        assert rewritten.quantifier is Quantifier.DISTINCT

    def test_all_projection_without_uniqueness_blocked(self, paper_catalog):
        assert (
            apply_rule(
                JoinToSubquery(),
                "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P "
                "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
                paper_catalog,
            )
            is None
        )


class TestOptimizer:
    def test_relational_profile_chains_rules(self, paper_catalog):
        result = Optimizer.for_relational(paper_catalog).optimize(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
            "INTERSECT "
            "SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'"
        )
        rules = [step.rule for step in result.steps]
        assert rules == ["intersect-to-exists", "subquery-to-join"]
        assert result.changed

    def test_navigational_profile_folds_joins(self, paper_catalog):
        result = Optimizer.for_navigational(paper_catalog).optimize(
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
        )
        assert [step.rule for step in result.steps] == ["join-to-subquery"]
        assert "EXISTS" in result.sql

    def test_no_rewrites_reported(self, paper_catalog):
        result = Optimizer.for_relational(paper_catalog).optimize(
            "SELECT SNAME FROM SUPPLIER"
        )
        assert not result.changed
        assert result.explain() == "(no rewrites applied)"

    def test_trace_describes_steps(self, paper_catalog):
        result = Optimizer.for_relational(paper_catalog).optimize(
            "SELECT DISTINCT SNO FROM SUPPLIER"
        )
        text = result.explain()
        assert "[distinct-elimination]" in text
        assert "before:" in text and "after:" in text

    def test_setop_operands_optimized(self, paper_catalog):
        result = Optimizer.for_relational(paper_catalog).optimize(
            "SELECT DISTINCT SNO FROM SUPPLIER UNION ALL "
            "SELECT DISTINCT ANO FROM AGENTS"
        )
        assert isinstance(result.query, SetOperation)
        rules = [step.rule for step in result.steps]
        assert rules.count("distinct-elimination") == 2

    def test_fixpoint_terminates(self, paper_catalog):
        optimizer = Optimizer.for_navigational(paper_catalog, max_passes=3)
        result = optimizer.optimize(
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P, AGENTS A "
            "WHERE S.SNO = P.SNO AND P.PNO = :N AND A.ANO = :M "
            "AND A.SNO = S.SNO"
        )
        # two foldable tables -> rule fires twice, then stops
        assert len(
            [s for s in result.steps if s.rule == "join-to-subquery"]
        ) == 2


class TestRenameAlias:
    def test_rename_rewrites_all_references(self, paper_catalog):
        query = parse_query(
            "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED' ORDER BY PNO"
        )
        renamed = rename_alias(query, "P", "Q")
        text = to_sql(renamed)
        assert "PARTS Q" in text and "Q.COLOR" in text and "P." not in text

    def test_rename_descends_into_subqueries(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)"
        )
        renamed = rename_alias(query, "S", "SUP")
        assert "SUP.SNO" in to_sql(renamed)

    def test_shadowed_alias_not_renamed(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS S WHERE S.PNO = 1)"
        )
        renamed = rename_alias(query, "S", "SUP")
        # the inner block re-declares S: its references stay put
        inner = renamed.where.query
        assert "PARTS S" in to_sql(inner)
        assert "S.PNO = 1" in to_sql(inner)
