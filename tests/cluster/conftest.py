"""Cluster test fixtures.

Spawning a worker process costs ~0.5s, so the multi-process fixtures
are module-scoped: one fleet serves every test in a module.  Tests
that mutate fleet state (kill a worker, open sessions) use their own
function-scoped fixtures or clean up after themselves.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterFrontend,
    WorkerConfig,
    WorkerSource,
)
from repro.workloads.supplier import build_database

#: The workers rebuild the replica from this deterministic factory —
#: the same one the tests build locally for expected results.
FACTORY = "repro.workloads.supplier:build_database"


def post_json(url: str, path: str, payload, timeout: float = 30.0, headers=None):
    """One raw POST; returns (status, headers, parsed_body) without
    raising on error statuses."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def get_json(url: str, path: str, timeout: float = 10.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def get_text(url: str, path: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.read().decode("utf-8")


@pytest.fixture(scope="module")
def local_db():
    """The same replica every worker builds, for expected results."""
    return build_database()


@pytest.fixture(scope="module")
def cluster():
    """A started 3-shard cluster (front end owns the fleet)."""
    coordinator = ClusterCoordinator(
        WorkerSource.from_factory(FACTORY),
        shards=3,
        config=WorkerConfig(threads=2, queue_depth=32),
    )
    frontend = ClusterFrontend(coordinator, owns_coordinator=True)
    with frontend:
        yield frontend
