"""SlicedDatabase: the read-only row-range views scatter shards run on."""

from __future__ import annotations

import pytest

from repro.api import run_with_options
from repro.engine.sliced import SlicedDatabase, _SlicedTable
from repro.options import ExecutionOptions
from repro.workloads.supplier import build_database


@pytest.fixture(scope="module")
def db():
    return build_database()


class TestSlicedTable:
    def test_rows_are_the_requested_window(self, db):
        view = SlicedDatabase(db, {"SUPPLIER": (10, 25)}).table("SUPPLIER")
        assert view.rows == db.table("SUPPLIER").rows[10:25]

    def test_len_reports_base_cardinality_for_the_cost_model(self, db):
        """Planning cardinality is deliberately the base table's: the
        cost model must pick the same hash-join build side on every
        shard or scatter output orders diverge."""
        view = SlicedDatabase(db, {"SUPPLIER": (0, 5)}).table("SUPPLIER")
        assert len(view) == len(db.table("SUPPLIER"))
        assert len(view.rows) == 5

    def test_hash_index_covers_slice_only(self, db):
        sliced = SlicedDatabase(db, {"SUPPLIER": (0, 5)})
        view = sliced.table("SUPPLIER")
        index = view.hash_index(("SNO",))
        indexed = {row for rows in index.values() for row in rows}
        assert indexed == set(view.rows)

    def test_key_probe_answers_for_slice_only(self, db):
        sliced = SlicedDatabase(db, {"SUPPLIER": (0, 5)})
        view = sliced.table("SUPPLIER")
        inside = view.rows[0]
        sno = inside[0]
        assert view.has_key_value(("SNO",), (sno,)) is True
        outside = db.table("SUPPLIER").rows[-1]
        assert view.has_key_value(("SNO",), (outside[0],)) is False

    def test_writes_refused(self, db):
        view = SlicedDatabase(db, {"SUPPLIER": (0, 5)}).table("SUPPLIER")
        with pytest.raises(TypeError, match="read-only"):
            view.insert((999, "X", "Y", 1, "Active"))


class TestSlicedDatabase:
    def test_unsliced_tables_pass_through(self, db):
        sliced = SlicedDatabase(db, {"SUPPLIER": (0, 5)})
        assert sliced.table("PARTS") is db.table("PARTS")

    def test_fingerprint_extends_base(self, db):
        sliced = SlicedDatabase(db, {"SUPPLIER": (0, 5)})
        base_fp = db.fingerprint()
        fp = sliced.fingerprint()
        assert fp[0] == base_fp
        assert fp[1][0] == "sliced"
        other = SlicedDatabase(db, {"SUPPLIER": (5, 10)})
        assert other.fingerprint() != fp

    def test_wrap_passthrough_and_double_wrap(self, db):
        assert SlicedDatabase.wrap(db, {}) is db
        sliced = SlicedDatabase.wrap(db, {"SUPPLIER": (0, 5)})
        with pytest.raises(TypeError, match="already-sliced"):
            SlicedDatabase.wrap(sliced, {"PARTS": (0, 3)})

    def test_wrap_caches_views(self, db):
        first = SlicedDatabase.wrap(db, {"SUPPLIER": (0, 7)})
        second = SlicedDatabase.wrap(db, {"SUPPLIER": (0, 7)})
        assert first is second

    def test_invalid_ranges_rejected(self, db):
        with pytest.raises(ValueError):
            SlicedDatabase(db, {"SUPPLIER": (5, 2)})
        with pytest.raises(ValueError):
            SlicedDatabase(db, [("SUPPLIER", 0, 5), ("supplier", 1, 2)])

    def test_writes_refused(self, db):
        sliced = SlicedDatabase(db, {"SUPPLIER": (0, 5)})
        with pytest.raises(TypeError):
            sliced.load("SUPPLIER", [])


class TestScanRangesOption:
    def test_option_round_trips_the_wire(self):
        options = ExecutionOptions.create(
            scan_ranges={"SUPPLIER": (0, 10), "PARTS": (3, 9)}
        )
        wire = options.to_wire()
        assert wire["scan_ranges"] == {
            "PARTS": [3, 9],
            "SUPPLIER": [0, 10],
        }
        back = ExecutionOptions.from_wire(wire)
        assert back.scan_ranges == options.scan_ranges

    def test_invalid_wire_forms_rejected(self):
        with pytest.raises(Exception):
            ExecutionOptions.from_wire({"scan_ranges": {"T": [1]}})
        with pytest.raises(Exception):
            ExecutionOptions.from_wire({"scan_ranges": {"T": [2, True]}})

    def test_sliced_executions_concat_to_full_result(self, db):
        sql = "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S"
        full = run_with_options(sql, database=db).result.rows
        total = len(db.table("SUPPLIER"))
        mid = total // 2
        first = run_with_options(
            sql,
            database=db,
            options=ExecutionOptions.create(
                scan_ranges={"SUPPLIER": (0, mid)}
            ),
        ).result.rows
        second = run_with_options(
            sql,
            database=db,
            options=ExecutionOptions.create(
                scan_ranges={"SUPPLIER": (mid, total)}
            ),
        ).result.rows
        assert first + second == full
