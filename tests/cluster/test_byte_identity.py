"""Byte-identity of cluster execution: the sharded answer IS the
single-node answer — E1–E11 over real worker processes, serial and
under seeded worker-side faults, plus the worker-kill guarantee (typed
error or clean retry, never partial rows)."""

from __future__ import annotations

import time

import pytest

from repro.api import run_with_options
from repro.cluster import (
    ClusterCoordinator,
    ClusterFrontend,
    WorkerConfig,
    WorkerSource,
)
from repro.workloads.queries import PAPER_QUERIES

from .conftest import FACTORY, get_json, post_json


def run_single(local_db, query):
    return run_with_options(
        query.sql, database=local_db, params=query.params
    ).result.rows


def run_cluster(frontend, query, stream=False):
    payload = {"sql": query.sql}
    if query.params:
        payload["params"] = query.params
    if stream:
        payload["stream"] = True
    status, headers, body = post_json(frontend.url, "/v1/query", payload)
    return status, headers, body


class TestByteIdentitySerial:
    @pytest.mark.parametrize(
        "query", PAPER_QUERIES, ids=[q.example for q in PAPER_QUERIES]
    )
    def test_examples_match_single_node(self, cluster, local_db, query):
        status, _headers, body = run_cluster(cluster, query)
        assert status == 200, body
        expected = run_single(local_db, query)
        got = [tuple(row) for row in body["rows"]]
        assert got == expected, query.example
        assert body["row_count"] == len(expected)

    def test_streamed_scatter_matches(self, cluster, local_db):
        """NDJSON framing over a scattered result reassembles to the
        same rows (the front end re-emits header/chunks/footer)."""
        import json
        import urllib.request

        query = PAPER_QUERIES[0]
        payload = {"sql": query.sql, "stream": True}
        if query.params:
            payload["params"] = query.params
        request = urllib.request.Request(
            cluster.url + "/v1/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert "ndjson" in response.headers["Content-Type"]
            lines = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
                if line
            ]
        assert lines[-1]["end"] is True
        rows = [
            tuple(row)
            for line in lines
            if "rows" in line
            for row in line["rows"]
        ]
        assert rows == run_single(local_db, query)
        assert lines[-1]["row_count"] == len(rows)


class TestByteIdentityUnderFaults:
    """Seeded transient net_read faults *inside* every worker: each
    shard's server occasionally fails a read with a retryable 503, the
    client retries, and the merged answer never changes."""

    @pytest.fixture(scope="class")
    def faulty_cluster(self):
        config = WorkerConfig(
            threads=2,
            queue_depth=32,
            fault_seed=1994,
            faults=(
                {
                    "site": "net_read",
                    "kind": "transient",
                    "probability": 0.15,
                    "status": 503,
                },
            ),
        )
        coordinator = ClusterCoordinator(
            WorkerSource.from_factory(FACTORY), shards=2, config=config
        )
        with ClusterFrontend(coordinator, owns_coordinator=True) as fe:
            yield fe

    def test_examples_survive_fault_injection(self, faulty_cluster, local_db):
        import repro

        conn = repro.connect(faulty_cluster.url)
        try:
            for query in PAPER_QUERIES:
                expected = run_single(local_db, query)
                got = conn.execute(query.sql, query.params or None).fetchall()
                assert got == expected, query.example
        finally:
            conn.close()


class TestWorkerDeath:
    """Killing a worker yields typed errors (never partial rows), the
    monitor respawns it, and the cluster heals without a restart."""

    @pytest.fixture()
    def small_cluster(self):
        coordinator = ClusterCoordinator(
            WorkerSource.from_factory(FACTORY),
            shards=2,
            config=WorkerConfig(threads=2, queue_depth=16),
            monitor_interval=0.1,
        )
        with ClusterFrontend(coordinator, owns_coordinator=True) as fe:
            yield fe

    def test_dead_shard_gives_typed_error_then_heals(self, small_cluster):
        fe = small_cluster
        coordinator = fe.coordinator
        sql = "SELECT ALL S.SNO FROM SUPPLIER S"

        status, _h, body = post_json(fe.url, "/v1/query", {"sql": sql})
        assert status == 200
        full_rows = body["rows"]

        # Suspend respawn so the dead window is observable.
        coordinator.auto_respawn = False
        killed_pid = coordinator.kill_shard(1)
        deadline = time.time() + 5.0
        while coordinator.handle(1).alive() and time.time() < deadline:
            time.sleep(0.05)

        saw_error = False
        for _ in range(10):
            status, _h, body = post_json(
                fe.url, "/v1/query", {"sql": sql}, timeout=10.0
            )
            if status == 200:
                # A route that avoided the dead shard must still be the
                # complete answer — never a partial row set.
                assert body["rows"] == full_rows
            else:
                saw_error = True
                assert "error" in body
                assert body["error"]["retryable"] is True
                assert body["error"]["status"] in (502, 503)
        assert saw_error, "scatter queries must notice a dead shard"

        # Re-enable respawn: the monitor brings a fresh worker up.
        coordinator.auto_respawn = True
        deadline = time.time() + 15.0
        while time.time() < deadline:
            handle = coordinator.handle(1)
            if handle.alive() and handle.pid != killed_pid:
                break
            time.sleep(0.1)
        handle = coordinator.handle(1)
        assert handle.alive() and handle.pid != killed_pid
        assert handle.generation >= 1
        assert coordinator.respawn_count(1) >= 1

        # Healed: queries succeed again and healthz shows the respawn.
        deadline = time.time() + 10.0
        while time.time() < deadline:
            status, _h, body = post_json(
                fe.url, "/v1/query", {"sql": sql}, timeout=10.0
            )
            if status == 200:
                break
            time.sleep(0.2)
        assert status == 200
        assert body["rows"] == full_rows

        health = get_json(fe.url, "/healthz")
        entry = next(s for s in health["shards"] if s["shard"] == 1)
        assert entry["respawns"] >= 1
        assert entry["alive"] is True

    def test_survivors_keep_balanced_ticket_ledger(self, small_cluster):
        """After a kill-and-heal episode every live worker's service
        ledger balances: every submitted ticket was completed, failed,
        drained, or abandoned — nothing stuck from the disruption."""
        import urllib.request

        fe = small_cluster
        sql = "SELECT ALL S.SNO FROM SUPPLIER S"
        for _ in range(5):
            post_json(fe.url, "/v1/query", {"sql": sql}, timeout=10.0)
        killed_pid = fe.coordinator.kill_shard(0)
        deadline = time.time() + 15.0
        while time.time() < deadline:
            handle = fe.coordinator.handle(0)
            if handle.alive() and handle.pid != killed_pid:
                break
            time.sleep(0.1)
        for _ in range(5):
            post_json(fe.url, "/v1/query", {"sql": sql}, timeout=10.0)

        def series_sum(text: str, name: str) -> float:
            total = 0.0
            for line in text.splitlines():
                if line.startswith(f"repro_{name}"):
                    total += float(line.rsplit(" ", 1)[1])
            return total

        health = get_json(fe.url, "/healthz")
        for entry in health["shards"]:
            assert entry["alive"], entry
            url = fe.coordinator.worker_url(entry["shard"])
            with urllib.request.urlopen(url + "/metrics", timeout=10.0) as r:
                text = r.read().decode("utf-8")
            submitted = series_sum(text, "service_submitted_total")
            settled = (
                series_sum(text, "service_completed_total")
                + series_sum(text, "service_failed_total")
                + series_sum(text, "service_drained_total")
                + series_sum(text, "service_abandoned_total")
            )
            assert submitted == settled, (entry["shard"], submitted, settled)
