"""Scatter classification and merge correctness, without processes.

Every classified query is executed per-slice via ``scan_ranges`` and
merged with :func:`merge_shard_rows`; the result must equal single-node
execution exactly (same rows, same order).  Queries the classifier
rejects fall back to single-shard routing, so a rejection is always
safe — these tests pin the *reasons* for the important rejections.
"""

from __future__ import annotations

import pytest

from repro.api import run_with_options
from repro.cluster.scatter import (
    classify_scatter,
    merge_shard_rows,
    partition_ranges,
)
from repro.options import ExecutionOptions
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.supplier import build_database


@pytest.fixture(scope="module")
def db():
    return build_database()


def scatter_execute(sql, db, spec, shards=3, params=None):
    total = len(db.table(spec.table).rows)
    shard_rows = []
    for start, stop in partition_ranges(total, shards):
        outcome = run_with_options(
            sql,
            database=db,
            params=params,
            options=ExecutionOptions.create(
                scan_ranges={spec.table: (start, stop)}
            ),
        )
        shard_rows.append(outcome.result.rows)
    return merge_shard_rows(spec, shard_rows)


class TestPartitionRanges:
    def test_covers_every_row_exactly_once(self):
        for total in (0, 1, 7, 100):
            for shards in (1, 2, 3, 7):
                ranges = partition_ranges(total, shards)
                assert len(ranges) == shards
                covered = [
                    i for start, stop in ranges for i in range(start, stop)
                ]
                assert covered == list(range(total))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_ranges(10, 0)


class TestClassification:
    def test_every_paper_query_classifies(self, db):
        """All of E1–E11 scatter (this is what makes E19 meaningful)."""
        for query in PAPER_QUERIES:
            spec = classify_scatter(query.sql, db)
            assert spec is not None, query.example
            assert spec.mode in ("concat", "concat_dedup", "set")

    def test_union_root_falls_back(self, db):
        sql = (
            "SELECT S.SNO FROM SUPPLIER S "
            "UNION SELECT P.SNO FROM PARTS P"
        )
        # Both operands reference distinct tables once; the sorted
        # UNION root still cannot recombine per-slice outputs by
        # concatenation, and the classifier must refuse.
        assert classify_scatter(sql, db) is None

    def test_table_referenced_twice_falls_back(self, db):
        sql = (
            "SELECT S1.SNO FROM SUPPLIER S1, SUPPLIER S2 "
            "WHERE S1.SNO = S2.SNO"
        )
        assert classify_scatter(sql, db) is None

    def test_table_inside_subquery_falls_back(self, db):
        """A driving table referenced from a subquery would be silently
        sliced inside the subquery too, changing its meaning."""
        sql = (
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM SUPPLIER T WHERE T.SNO = S.SNO)"
        )
        spec = classify_scatter(sql, db)
        assert spec is None or spec.table != "SUPPLIER"

    def test_order_by_becomes_merge_keys(self, db):
        sql = (
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
            "ORDER BY SNAME DESC, SNO"
        )
        spec = classify_scatter(sql, db)
        assert spec is not None
        assert spec.order_keys == ((1, False), (0, True))


class TestMergeMatchesSingleNode:
    @pytest.mark.parametrize(
        "query", PAPER_QUERIES, ids=[q.example for q in PAPER_QUERIES]
    )
    def test_paper_queries_byte_identical(self, db, query):
        spec = classify_scatter(query.sql, db)
        assert spec is not None
        single = run_with_options(
            query.sql, database=db, params=query.params
        ).result.rows
        merged = scatter_execute(
            query.sql, db, spec, shards=3, params=query.params
        )
        assert merged == single, query.example

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_shard_count_does_not_change_results(self, db, shards):
        sql = (
            "SELECT ALL S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO ORDER BY PNO, SNO"
        )
        spec = classify_scatter(sql, db)
        assert spec is not None
        single = run_with_options(sql, database=db).result.rows
        assert scatter_execute(sql, db, spec, shards=shards) == single

    def test_distinct_query_dedups_across_shards(self, db):
        """Rows duplicated across slice boundaries collapse exactly as
        a single-node DISTINCT would collapse them."""
        sql = "SELECT DISTINCT S.SCITY FROM SUPPLIER S"
        spec = classify_scatter(sql, db)
        assert spec is not None
        assert spec.mode in ("set", "concat_dedup")
        single = run_with_options(sql, database=db).result.rows
        assert scatter_execute(sql, db, spec, shards=4) == single


class TestMergeSpecMechanics:
    def test_unknown_mode_rejected(self):
        from repro.cluster.scatter import MergeSpec

        with pytest.raises(ValueError):
            merge_shard_rows(
                MergeSpec(table="T", mode="bogus"), [[(1,)], [(2,)]]
            )

    def test_concat_preserves_shard_order(self):
        from repro.cluster.scatter import MergeSpec

        spec = MergeSpec(table="T", mode="concat")
        assert merge_shard_rows(spec, [[(2,)], [(1,)]]) == [(2,), (1,)]

    def test_order_keys_stable_sort(self):
        from repro.cluster.scatter import MergeSpec

        spec = MergeSpec(
            table="T", mode="concat", order_keys=((0, True),)
        )
        merged = merge_shard_rows(
            spec, [[(1, "a"), (2, "b")], [(1, "c")]]
        )
        # Stable: the tie on key 1 keeps shard order (a before c).
        assert merged == [(1, "a"), (1, "c"), (2, "b")]
