"""Front-end behaviours: Theorem 1 point routing (fan-out exactly 1),
session broadcast and replay onto respawned workers, healthz
aggregation, and resilience-header forwarding."""

from __future__ import annotations

import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterFrontend,
    WorkerConfig,
    WorkerSource,
)

from .conftest import FACTORY, get_json, get_text, post_json


def metric(text: str, name: str, labels: str = "") -> float:
    needle = f"repro_{name}{labels}"
    for line in text.splitlines():
        if line.startswith(needle + " ") or line == needle:
            return float(line.rsplit(" ", 1)[1])
    return 0.0


class TestPointRouting:
    def test_key_bound_queries_fan_out_to_exactly_one_shard(self, cluster):
        """A workload of key-bound point queries routes every request
        to a single shard: cluster_single_shard_routes_total equals the
        request count, and per-shard request counters sum to it (one
        worker request per client request — fan-out exactly 1)."""
        before_text = get_text(cluster.url, "/metrics")
        before_point = metric(before_text, "cluster_single_shard_routes_total")
        before_shard_reqs = [
            metric(
                before_text,
                "cluster_shard_requests_total",
                '{shard="%d"}' % s,
            )
            for s in range(cluster.coordinator.shards)
        ]

        requests = 12
        for sno in range(1, requests + 1):
            status, _h, body = post_json(
                cluster.url,
                "/v1/query",
                {"sql": f"SELECT SNAME FROM SUPPLIER WHERE SNO = {sno}"},
            )
            assert status == 200, body
            assert len(body["rows"]) <= 1  # Theorem 1: at most one row

        after_text = get_text(cluster.url, "/metrics")
        after_point = metric(after_text, "cluster_single_shard_routes_total")
        after_shard_reqs = [
            metric(
                after_text,
                "cluster_shard_requests_total",
                '{shard="%d"}' % s,
            )
            for s in range(cluster.coordinator.shards)
        ]
        assert after_point - before_point == requests
        fanout = sum(after_shard_reqs) - sum(before_shard_reqs)
        assert fanout == requests  # exactly one worker hop per request

    def test_point_route_result_matches_scatter(self, cluster):
        """The fast path returns the same row the scatter path would."""
        point = "SELECT SNAME FROM SUPPLIER WHERE SNO = 5"
        scan = "SELECT ALL S.SNAME FROM SUPPLIER S WHERE S.SNO = 5"
        _s1, _h1, body_point = post_json(
            cluster.url, "/v1/query", {"sql": point}
        )
        _s2, _h2, body_scan = post_json(
            cluster.url, "/v1/query", {"sql": scan}
        )
        assert body_point["rows"] == body_scan["rows"]

    def test_host_var_point_query_routes_by_param(self, cluster):
        before = metric(
            get_text(cluster.url, "/metrics"),
            "cluster_single_shard_routes_total",
        )
        status, _h, body = post_json(
            cluster.url,
            "/v1/query",
            {
                "sql": "SELECT SNAME FROM SUPPLIER WHERE SNO = :SNO",
                "params": {"SNO": 3},
            },
        )
        assert status == 200, body
        after = metric(
            get_text(cluster.url, "/metrics"),
            "cluster_single_shard_routes_total",
        )
        assert after - before == 1


class TestResilienceHeaders:
    def test_deadline_forwarded_and_enforced(self, cluster):
        """An effectively-zero deadline reaches the worker and comes
        back as the typed 504 envelope."""
        status, _h, body = post_json(
            cluster.url,
            "/v1/query",
            {"sql": "SELECT ALL S.SNO FROM SUPPLIER S"},
            headers={"X-Deadline-Ms": "0.0001"},
        )
        assert status == 504
        assert body["error"]["type"] == "DeadlineExpiredError"

    def test_priority_header_validated_by_worker(self, cluster):
        status, _h, body = post_json(
            cluster.url,
            "/v1/query",
            {"sql": "SELECT ALL S.SNO FROM SUPPLIER S"},
            headers={"X-Priority": "bogus"},
        )
        assert status == 400
        assert body["error"]["type"] == "ProtocolError"


class TestSessions:
    def test_session_open_reaches_every_shard(self, cluster):
        status, _h, body = post_json(
            cluster.url,
            "/v1/session",
            {"name": "broadcast-check", "options": {"row_budget": 100000}},
        )
        assert status == 200
        assert body["session"] == "broadcast-check"
        # Every worker knows the session: any routed query under it
        # succeeds regardless of which shard it lands on.
        for sno in range(1, 7):
            status, _h, body = post_json(
                cluster.url,
                "/v1/query",
                {
                    "sql": f"SELECT SNAME FROM SUPPLIER WHERE SNO = {sno}",
                    "session": "broadcast-check",
                },
            )
            assert status == 200, body
        status, _h, body = post_json(
            cluster.url,
            "/v1/query",
            {
                "sql": "SELECT ALL S.SNO FROM SUPPLIER S",
                "session": "broadcast-check",
            },
        )
        assert status == 200, body


class TestSessionReplayAfterRespawn:
    @pytest.fixture()
    def fleet(self):
        coordinator = ClusterCoordinator(
            WorkerSource.from_factory(FACTORY),
            shards=2,
            config=WorkerConfig(threads=2, queue_depth=16),
            monitor_interval=0.1,
        )
        with ClusterFrontend(coordinator, owns_coordinator=True) as fe:
            yield fe

    def test_respawned_worker_relearns_sessions(self, fleet):
        status, _h, _b = post_json(
            fleet.url, "/v1/session", {"name": "durable"}
        )
        assert status == 200
        killed_pid = fleet.coordinator.kill_shard(0)
        deadline = time.time() + 15.0
        while time.time() < deadline:
            handle = fleet.coordinator.handle(0)
            if handle.alive() and handle.pid != killed_pid:
                break
            time.sleep(0.1)
        # Give the replay callback a moment after the respawn.
        time.sleep(0.5)
        health = get_json(fleet.url, "/healthz")
        fresh = next(s for s in health["shards"] if s["shard"] == 0)
        assert fresh["respawns"] >= 1
        assert "durable" in fresh["health"]["sessions"]

    def test_closed_sessions_are_not_replayed(self, fleet):
        post_json(fleet.url, "/v1/session", {"name": "ephemeral"})
        import urllib.request

        request = urllib.request.Request(
            fleet.url + "/v1/session/ephemeral", method="DELETE"
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.status == 200
        killed_pid = fleet.coordinator.kill_shard(1)
        deadline = time.time() + 15.0
        while time.time() < deadline:
            handle = fleet.coordinator.handle(1)
            if handle.alive() and handle.pid != killed_pid:
                break
            time.sleep(0.1)
        time.sleep(0.5)
        health = get_json(fleet.url, "/healthz")
        fresh = next(s for s in health["shards"] if s["shard"] == 1)
        assert "ephemeral" not in fresh["health"]["sessions"]


class TestHealthAggregation:
    def test_healthz_includes_every_shard(self, cluster):
        health = get_json(cluster.url, "/healthz")
        assert health["status"] == "ok"
        assert health["shard_count"] == cluster.coordinator.shards
        assert len(health["shards"]) == cluster.coordinator.shards
        for entry in health["shards"]:
            assert entry["alive"] is True
            assert entry["reachable"] is True
            # The embedded per-shard healthz is the worker's own body.
            assert entry["health"]["status"] == "ok"
            assert "subsystems" in entry["health"]

    def test_metrics_exports_shard_gauges(self, cluster):
        text = get_text(cluster.url, "/metrics")
        for shard in range(cluster.coordinator.shards):
            assert metric(
                text, "cluster_shard_up", '{shard="%d"}' % shard
            ) == 1.0

    def test_unknown_endpoint_is_404(self, cluster):
        status, _h, body = post_json(cluster.url, "/v1/nonsense", {})
        assert status == 404
        assert body["error"]["type"] == "NotFound"
