"""Derived FDs and keys of query blocks."""

from repro.analysis import Attribute
from repro.fd import (
    derived_fds,
    derived_keys,
    is_duplicate_free_fd,
    key_dependencies,
    product_attributes,
)
from repro.sql import parse_query


class TestKeyDependencies:
    def test_each_candidate_key_contributes(self, paper_catalog):
        deps = key_dependencies(paper_catalog.table("PARTS"), "P")
        assert len(deps) == 2  # primary (SNO, PNO) and UNIQUE (OEM-PNO)
        lhs_sets = {frozenset(str(a) for a in dep.lhs) for dep in deps}
        assert frozenset({"P.SNO", "P.PNO"}) in lhs_sets
        assert frozenset({"P.OEM-PNO"}) in lhs_sets


class TestDerivedFds:
    def test_equality_conjuncts_add_fds(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        )
        fds = derived_fds(query, paper_catalog)
        color = Attribute("P", "COLOR")
        assert color in fds.closure([])  # constant
        sno_s, sno_p = Attribute("S", "SNO"), Attribute("P", "SNO")
        assert sno_p in fds.closure([sno_s])

    def test_disjunctive_predicate_contributes_nothing(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO FROM SUPPLIER S WHERE SCITY = 'x' OR SCITY = 'y'"
        )
        fds = derived_fds(query, paper_catalog)
        assert Attribute("S", "SCITY") not in fds.closure([])


class TestDerivedKeys:
    def test_example1_key(self, paper_catalog):
        # Example 1: (SNO, PNO) keys the derived table.
        query = parse_query(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        )
        keys = derived_keys(query, paper_catalog)
        assert frozenset({Attribute("S", "SNO"), Attribute("P", "PNO")}) in keys

    def test_example3_pno_keys_derived_table(self, paper_catalog):
        # Example 3's claim: PNO alone is a key of the derived table.
        query = parse_query(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO"
        )
        keys = derived_keys(query, paper_catalog)
        assert frozenset({Attribute("P", "PNO")}) in keys

    def test_example2_has_no_key(self, paper_catalog):
        query = parse_query(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        )
        assert derived_keys(query, paper_catalog) == []


class TestDuplicateFreedom:
    def test_agrees_with_paper_examples(self, paper_catalog):
        unique = parse_query(
            "SELECT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO"
        )
        duplicated = parse_query(
            "SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO"
        )
        assert is_duplicate_free_fd(unique, paper_catalog)
        assert not is_duplicate_free_fd(duplicated, paper_catalog)

    def test_keyless_table_is_never_duplicate_free(self):
        from repro.catalog import Catalog

        catalog = Catalog.from_ddl("CREATE TABLE HEAP (X INT, Y INT)")
        query = parse_query("SELECT X, Y FROM HEAP")
        assert not is_duplicate_free_fd(query, catalog)

    def test_product_attributes(self, paper_catalog):
        query = parse_query("SELECT S.SNO FROM SUPPLIER S, AGENTS A")
        attrs = product_attributes(query, paper_catalog)
        assert len(attrs) == 9
