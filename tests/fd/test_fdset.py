"""FD sets: closure, implication, candidate keys."""

from repro.analysis import Attribute
from repro.fd import FDSet, FunctionalDependency

import pytest


A = Attribute("R", "A")
B = Attribute("R", "B")
C = Attribute("R", "C")
D = Attribute("R", "D")


def fd(lhs, rhs):
    return FunctionalDependency.of(lhs, rhs)


class TestClosure:
    def test_reflexive(self):
        assert FDSet().closure([A]) == {A}

    def test_single_step(self):
        fds = FDSet([fd([A], [B])])
        assert fds.closure([A]) == {A, B}

    def test_transitive(self):
        fds = FDSet([fd([A], [B]), fd([B], [C])])
        assert fds.closure([A]) == {A, B, C}

    def test_composite_lhs_needs_all_attributes(self):
        fds = FDSet([fd([A, B], [C])])
        assert fds.closure([A]) == {A}
        assert fds.closure([A, B]) == {A, B, C}

    def test_constant_dependency(self):
        fds = FDSet()
        fds.add_constant(C)
        assert fds.closure([]) == {C}
        assert fds.closure([A]) == {A, C}

    def test_equivalence_is_bidirectional(self):
        fds = FDSet()
        fds.add_equivalence(A, B)
        assert fds.closure([A]) == {A, B}
        assert fds.closure([B]) == {A, B}


class TestImplication:
    def test_implied_fd(self):
        fds = FDSet([fd([A], [B]), fd([B], [C])])
        assert fds.implies(fd([A], [C]))

    def test_not_implied(self):
        fds = FDSet([fd([A], [B])])
        assert not fds.implies(fd([B], [A]))

    def test_trivial_fds_not_stored(self):
        fds = FDSet([fd([A, B], [A])])
        assert len(fds) == 0

    def test_duplicates_not_stored(self):
        fds = FDSet([fd([A], [B]), fd([A], [B])])
        assert len(fds) == 1

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency(frozenset({A}), frozenset())


class TestKeys:
    def test_is_superkey(self):
        fds = FDSet([fd([A], [B, C])])
        assert fds.is_superkey([A], [A, B, C])
        assert not fds.is_superkey([B], [A, B, C])

    def test_candidate_keys_minimal(self):
        fds = FDSet([fd([A], [B, C, D]), fd([B, C], [A])])
        keys = fds.candidate_keys([A, B, C, D])
        assert frozenset({A}) in keys
        assert frozenset({B, C}) in keys
        # no superset of {A} reported
        assert all(not (frozenset({A}) < key) for key in keys)

    def test_candidate_keys_within_projection(self):
        fds = FDSet([fd([A], [B, C, D])])
        keys = fds.candidate_keys([A, B, C, D], within=[B, C])
        assert keys == []  # B,C alone determine nothing

    def test_empty_set_is_key_when_all_constant(self):
        fds = FDSet()
        fds.add_constant(A)
        fds.add_constant(B)
        keys = fds.candidate_keys([A, B])
        assert keys == [frozenset()]

    def test_restricted_to(self):
        fds = FDSet([fd([A], [B]), fd([C], [D])])
        restricted = fds.restricted_to([A, B])
        assert len(restricted) == 1

    def test_describe(self):
        fds = FDSet([fd([A], [B])])
        assert "->" in fds.describe()
        assert FDSet().describe() == "(no dependencies)"
