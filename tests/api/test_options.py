"""ExecutionOptions: the one frozen value shared by the facade, the
service, and the HTTP schema — construction, layering, and the wire
round trip."""

from __future__ import annotations

import pytest

from repro.engine.parallel import ParallelOptions
from repro.errors import ProtocolError
from repro.options import DEFAULT_OPTIONS, ExecutionOptions
from repro.resilience import ResourceBudget


class TestConstruction:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.timeout is None
        assert options.row_budget is None
        assert not options.safe_mode
        assert not options.analyze
        assert options.optimize
        assert options.parallel is None
        assert options.budget() is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionOptions().safe_mode = True

    def test_create_from_budget(self):
        budget = ResourceBudget(timeout=2.0, row_budget=100)
        options = ExecutionOptions.create(budget=budget, safe_mode=True)
        assert options.timeout == 2.0
        assert options.row_budget == 100
        assert options.safe_mode
        derived = options.budget()
        assert derived.timeout == 2.0 and derived.row_budget == 100

    def test_create_int_parallel(self):
        options = ExecutionOptions.create(parallel=4)
        assert isinstance(options.parallel, ParallelOptions)
        assert options.parallel.workers == 4
        assert ExecutionOptions.create(parallel=1).parallel is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(timeout=0)
        with pytest.raises(ValueError):
            ExecutionOptions(row_budget=-1)


class TestMerging:
    def test_override_wins_on_non_defaults(self):
        base = ExecutionOptions(timeout=5.0, safe_mode=True)
        merged = base.merged(ExecutionOptions(row_budget=10))
        assert merged.timeout == 5.0
        assert merged.row_budget == 10
        assert merged.safe_mode

    def test_none_override_is_identity(self):
        base = ExecutionOptions(timeout=5.0)
        assert base.merged(None) is base

    def test_optimize_false_survives_merge(self):
        merged = DEFAULT_OPTIONS.merged(ExecutionOptions(optimize=False))
        assert not merged.optimize


class TestWire:
    def test_round_trip(self):
        options = ExecutionOptions(
            timeout=1.5,
            row_budget=42,
            safe_mode=True,
            analyze=True,
            optimize=False,
            parallel=ParallelOptions(workers=3),
        )
        assert ExecutionOptions.from_wire(options.to_wire()) == options

    def test_defaults_encode_empty(self):
        assert ExecutionOptions().to_wire() == {}
        assert ExecutionOptions.from_wire(None) == ExecutionOptions()
        assert ExecutionOptions.from_wire({}) == ExecutionOptions()

    def test_unknown_key_rejected(self):
        with pytest.raises(ProtocolError):
            ExecutionOptions.from_wire({"bogus": 1})

    def test_bad_types_rejected(self):
        with pytest.raises(ProtocolError):
            ExecutionOptions.from_wire({"timeout": "fast"})
        with pytest.raises(ProtocolError):
            ExecutionOptions.from_wire({"safe_mode": 1})
        with pytest.raises(ProtocolError):
            ExecutionOptions.from_wire({"parallel": "two"})
