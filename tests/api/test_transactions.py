"""The transactional DB-API surface on :func:`repro.connect`.

Covers the satellite contract: ``commit``/``rollback``, the
``autocommit`` flag (implicit transactions), ``Cursor.rowcount``,
``executemany``, SQL-level ``BEGIN``/``COMMIT``/``ROLLBACK``, and the
context manager that commits on clean exit and rolls back on
exception — while pre-transaction call sites keep working untouched.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.database import Database
from repro.errors import (
    TransactionError,
    UniquenessViolationError,
    WriteConflictError,
)


SCRIPT = """
CREATE TABLE T (A INT NOT NULL, B INT, PRIMARY KEY (A));
INSERT INTO T VALUES (1, 10), (2, 20);
"""


@pytest.fixture()
def db() -> Database:
    return Database.from_script(SCRIPT)


def select_all(conn):
    return conn.execute("SELECT A, B FROM T ORDER BY A").fetchall()


class TestAutocommit:
    def test_default_is_autocommit(self, db):
        conn = repro.connect(db)
        assert conn.autocommit is True
        assert not conn.in_transaction
        conn.execute("INSERT INTO T VALUES (3, 30)")
        assert not conn.in_transaction  # committed per statement
        assert select_all(conn) == [(1, 10), (2, 20), (3, 30)]

    def test_rowcounts(self, db):
        conn = repro.connect(db)
        assert conn.cursor().rowcount == -1  # before any execute
        assert conn.execute("INSERT INTO T VALUES (3, 30), (4, 40)").rowcount == 2
        assert conn.execute("UPDATE T SET B = 0 WHERE A > 2").rowcount == 2
        assert conn.execute("DELETE FROM T WHERE A = 4").rowcount == 1
        assert conn.execute("DELETE FROM T WHERE A = 99").rowcount == 0
        # Reads keep the back-compat semantics: rowcount == len(rows).
        assert conn.execute("SELECT A FROM T").rowcount == 3

    def test_autocommit_off_opens_implicit_transaction(self, db):
        conn = repro.connect(db)
        conn.autocommit = False
        conn.execute("DELETE FROM T WHERE A = 1")
        assert conn.in_transaction
        # Not published yet: a second connection still sees the row.
        other = repro.connect(db)
        assert select_all(other) == [(1, 10), (2, 20)]
        conn.commit()
        assert not conn.in_transaction
        assert select_all(other) == [(2, 20)]

    def test_flag_cannot_flip_inside_transaction(self, db):
        conn = repro.connect(db)
        conn.begin()
        with pytest.raises(TransactionError):
            conn.autocommit = False
        conn.rollback()
        conn.autocommit = False  # fine outside


class TestExplicitTransactions:
    def test_sql_level_begin_commit(self, db):
        conn = repro.connect(db)
        conn.execute("BEGIN")
        assert conn.in_transaction
        conn.execute("INSERT INTO T VALUES (3, 30)")
        conn.execute("COMMIT")
        assert not conn.in_transaction
        assert select_all(conn) == [(1, 10), (2, 20), (3, 30)]

    def test_sql_level_rollback(self, db):
        conn = repro.connect(db)
        conn.execute("BEGIN TRANSACTION")
        conn.execute("DELETE FROM T")
        conn.execute("ROLLBACK")
        assert select_all(conn) == [(1, 10), (2, 20)]

    def test_nested_begin_rejected(self, db):
        conn = repro.connect(db)
        conn.begin()
        with pytest.raises(TransactionError):
            conn.execute("BEGIN")
        conn.rollback()

    def test_commit_without_transaction_is_noop(self, db):
        conn = repro.connect(db)
        conn.commit()
        conn.rollback()
        conn.execute("COMMIT")  # SQL-level no-ops too
        conn.execute("ROLLBACK")

    def test_transaction_reads_its_own_writes(self, db):
        conn = repro.connect(db)
        conn.begin()
        conn.execute("INSERT INTO T VALUES (3, 30)")
        conn.execute("UPDATE T SET B = 31 WHERE A = 3")
        assert select_all(conn) == [(1, 10), (2, 20), (3, 31)]
        conn.rollback()
        assert select_all(conn) == [(1, 10), (2, 20)]

    def test_failed_commit_leaves_connection_usable(self, db):
        one = repro.connect(db)
        two = repro.connect(db)
        one.begin()
        two.begin()
        one.execute("UPDATE T SET B = 1 WHERE A = 1")
        two.execute("UPDATE T SET B = 2 WHERE A = 1")
        one.commit()
        with pytest.raises(WriteConflictError):
            two.commit()
        assert not two.in_transaction
        # The loser is back in autocommit mode and can retry.
        two.execute("UPDATE T SET B = 2 WHERE A = 1")
        assert select_all(two) == [(1, 2), (2, 20)]


class TestContextManager:
    def test_clean_exit_commits(self, db):
        with repro.connect(db) as conn:
            conn.begin()
            conn.execute("INSERT INTO T VALUES (3, 30)")
        check = repro.connect(db)
        assert select_all(check) == [(1, 10), (2, 20), (3, 30)]

    def test_exception_rolls_back(self, db):
        with pytest.raises(RuntimeError):
            with repro.connect(db) as conn:
                conn.begin()
                conn.execute("DELETE FROM T")
                raise RuntimeError("boom")
        check = repro.connect(db)
        assert select_all(check) == [(1, 10), (2, 20)]

    def test_close_rolls_back_abandoned_transaction(self, db):
        conn = repro.connect(db)
        conn.begin()
        conn.execute("DELETE FROM T")
        conn.close()
        check = repro.connect(db)
        assert select_all(check) == [(1, 10), (2, 20)]


class TestExecutemany:
    def test_rowcount_sums_across_sets(self, db):
        conn = repro.connect(db)
        cursor = conn.cursor().executemany(
            "INSERT INTO T VALUES (:A, :B)",
            [{"A": 3, "B": 30}, {"A": 4, "B": 40}, {"A": 5, "B": 50}],
        )
        assert cursor.rowcount == 3
        assert select_all(conn) == [
            (1, 10), (2, 20), (3, 30), (4, 40), (5, 50),
        ]

    def test_empty_sequence(self, db):
        conn = repro.connect(db)
        assert conn.cursor().executemany("DELETE FROM T", []).rowcount == 0

    def test_transactional_executemany_is_atomic(self, db):
        conn = repro.connect(db)
        conn.begin()
        with pytest.raises(UniquenessViolationError):
            conn.cursor().executemany(
                "INSERT INTO T VALUES (:A, :B)",
                [{"A": 3, "B": 30}, {"A": 1, "B": 0}],  # second one collides
            )
        conn.rollback()
        assert select_all(conn) == [(1, 10), (2, 20)]


class TestDmlErrors:
    def test_duplicate_key_is_typed(self, db):
        conn = repro.connect(db)
        with pytest.raises(UniquenessViolationError) as info:
            conn.execute("INSERT INTO T VALUES (1, 99)")
        assert "duplicate value" in str(info.value)
        # Autocommit statement failure publishes nothing.
        assert select_all(conn) == [(1, 10), (2, 20)]

    def test_update_into_duplicate_rejected(self, db):
        conn = repro.connect(db)
        with pytest.raises(UniquenessViolationError):
            conn.execute("UPDATE T SET A = 1 WHERE A = 2")
        assert select_all(conn) == [(1, 10), (2, 20)]

    def test_key_self_assignment_validates_post_state(self, db):
        # Delete-then-reinsert ordering: writing a row's key back to
        # itself must validate against the post-statement state (the
        # old version is gone), not collide with it.
        conn = repro.connect(db)
        assert conn.execute("UPDATE T SET A = 1 WHERE A = 1").rowcount == 1
        assert select_all(conn) == [(1, 10), (2, 20)]

    def test_missing_host_variable(self, db):
        from repro.errors import MissingHostVariableError

        conn = repro.connect(db)
        with pytest.raises(MissingHostVariableError):
            conn.execute("INSERT INTO T VALUES (:A, :B)", {"A": 3})
