"""The Connection facade: one entrypoint over the guarded core, with
the legacy functions reduced to warning shims."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import Connection, Cursor, connect
from repro.errors import ProtocolError, ReproError, RowBudgetExceeded
from repro.options import ExecutionOptions
from repro.types import NULL


class TestLocalConnection:
    def test_connect_database(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            assert not conn.remote
            rows = conn.execute(
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO <= 2"
            ).fetchall()
        assert rows == [(1,), (2,)]
        assert conn.closed

    def test_connect_script_path(self, tmp_path):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (ID INT, PRIMARY KEY (ID));\n"
            "INSERT INTO T VALUES (1), (2);\n"
        )
        with repro.connect(str(script)) as conn:
            assert conn.execute("SELECT T.ID FROM T").fetchall() == [
                (1,),
                (2,),
            ]

    def test_connect_rejects_other_types(self):
        with pytest.raises(ProtocolError):
            connect(42)  # type: ignore[arg-type]

    def test_closed_connection_refuses_queries(self, tiny_db):
        conn = repro.connect(tiny_db)
        conn.close()
        with pytest.raises(ReproError):
            conn.execute("SELECT S.SNO FROM SUPPLIER S")


class TestCursor:
    def test_dbapi_surface(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            cursor = conn.cursor()
            assert isinstance(cursor, Cursor)
            cursor.execute("SELECT S.SNO, S.SNAME FROM SUPPLIER S")
            assert cursor.rowcount == 4
            assert [d[0] for d in cursor.description] == ["SNO", "SNAME"]
            first = cursor.fetchone()
            rest = cursor.fetchall()
            assert len(rest) == 3 and first not in rest

    def test_iteration_and_fetchmany(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            cursor = conn.execute("SELECT S.SNO FROM SUPPLIER S")
            assert len(cursor.fetchmany(2)) == 2
            assert len(list(cursor)) == 2  # iteration drains the rest
            assert cursor.fetchone() is None

    def test_rewrite_trail_and_outcome(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            cursor = conn.execute(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1"
            )
            assert cursor.executed.rewritten
            assert cursor.outcome is not None  # local keeps the outcome
            assert "distinct-elimination" in cursor.executed.rules

    def test_per_call_overrides_layer_on_defaults(self, tiny_db):
        options = ExecutionOptions(safe_mode=True)
        with repro.connect(tiny_db, options=options) as conn:
            with pytest.raises(RowBudgetExceeded):
                conn.execute("SELECT S.SNO FROM SUPPLIER S", row_budget=1)
            # ...and the default safe_mode still applies: a rewritten
            # query gets cross-checked against the unrewritten plan.
            cursor = conn.execute(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1"
            )
            assert cursor.outcome.verified

    def test_explicit_options_replace_defaults(self, tiny_db):
        with repro.connect(
            tiny_db, options=ExecutionOptions(safe_mode=True)
        ) as conn:
            cursor = conn.execute(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1",
                options=ExecutionOptions(),  # wholesale replacement
            )
            assert not cursor.outcome.verified

    def test_analyze_attaches_plan(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            cursor = conn.execute(
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1", analyze=True
            )
            assert cursor.analysis is not None

    def test_no_optimize_runs_as_written(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            cursor = conn.execute(
                "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 1",
                optimize=False,
            )
            assert not cursor.executed.rewritten
            assert cursor.executed.rules == []

    def test_null_results(self, tiny_db):
        with repro.connect(tiny_db) as conn:
            rows = conn.execute(
                "SELECT P.OEM-PNO FROM PARTS P WHERE P.SNO = 3"
            ).fetchall()
        assert rows == [(NULL,)]


class TestDeprecatedShims:
    @pytest.mark.parametrize(
        "name,call",
        [
            ("execute", lambda db: repro.execute(
                "SELECT S.SNO FROM SUPPLIER S", db)),
            ("execute_planned", lambda db: repro.execute_planned(
                "SELECT S.SNO FROM SUPPLIER S", db)),
            ("run_guarded", lambda db: repro.run_guarded(
                "SELECT S.SNO FROM SUPPLIER S", db)),
        ],
    )
    def test_shim_warns_and_still_works(self, tiny_db, name, call):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = call(tiny_db)
        assert result is not None
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any(name in message for message in messages)
        assert any("repro.connect" in message for message in messages)

    def test_home_modules_do_not_warn(self, tiny_db):
        from repro.engine import execute_planned as home_execute_planned

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            home_execute_planned("SELECT S.SNO FROM SUPPLIER S", tiny_db)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestConnectionRepr:
    def test_describes_backend(self, tiny_db):
        conn = repro.connect(tiny_db)
        assert "local database" in repr(conn)
        conn.close()
        assert "closed" in repr(conn)
