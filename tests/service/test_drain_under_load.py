"""Drain under load: shutdown with a full queue completes in-flight
queries, fails queued ones fast with the retryable shutdown error, and
strands zero tickets — the ledger counters must balance exactly."""

from __future__ import annotations

import time

import pytest

from repro import QueryService
from repro.errors import ServiceShutdownError
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.workloads import SupplierScale, build_database, generate

SQL = "SELECT SNO FROM SUPPLIER"


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=8, parts_per_supplier=2))
    )


def metric(service, name, **labels):
    return service.metrics.value(name, **labels) or 0


def metric_sum(service, name):
    """Total over every label combination of one counter family."""
    return sum(
        value
        for family, _labels, value in service.metrics.series()
        if family == name
    )


def test_cancel_queued_drain_fails_fast_and_strands_nothing(db):
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.3):
        service = QueryService(workers=1, queue_depth=16)
        session = service.session(db)
        tickets = [service.submit(session, SQL) for _ in range(6)]
        # Wait for the worker to actually pick the first query up, so
        # "in-flight" is a fact and not a race.
        deadline = time.monotonic() + 5.0
        while tickets[0]._guard is None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tickets[0]._guard is not None
        # SIGTERM semantics: running queries finish, queued ones 503.
        service.shutdown(wait=True, cancel_queued=True)

    completed, drained = 0, 0
    for ticket in tickets:
        assert ticket.done(), "drain stranded a ticket"
        try:
            outcome = ticket.result(0.1)
        except ServiceShutdownError:
            drained += 1
        else:
            assert outcome.result is not None
            completed += 1
    # At least the in-flight query finished; at least one was drained
    # (the queue was 5 deep behind a 0.3s stall).
    assert completed >= 1
    assert drained >= 1
    assert completed + drained == len(tickets)
    # The metrics ledger tells the same story (counters carry the
    # session label).
    name = session.name
    assert metric(service, "service_submitted_total", session=name) == len(
        tickets
    )
    assert metric(service, "service_completed_total", session=name) == completed
    assert metric(service, "service_drained_total", session=name) == drained


def test_default_drain_still_executes_the_queue(db):
    """Without cancel_queued the drain is the old lossless one: every
    admitted query runs to completion before the workers exit."""
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.05):
        service = QueryService(workers=1, queue_depth=16)
        session = service.session(db)
        tickets = [service.submit(session, SQL) for _ in range(4)]
        service.shutdown(wait=True)
    for ticket in tickets:
        assert ticket.result(0.1).result is not None
    assert metric_sum(service, "service_completed_total") == len(tickets)
    assert metric_sum(service, "service_drained_total") == 0


def test_drain_is_idempotent_and_rejects_new_work(db):
    service = QueryService(workers=1)
    session = service.session(db)
    service.shutdown(wait=True, cancel_queued=True)
    service.shutdown(wait=True, cancel_queued=True)  # no-op, no error
    with pytest.raises(ServiceShutdownError):
        service.submit(session, SQL)


def test_ledger_balances_under_mixed_outcomes(db):
    """submitted == completed + failed + abandoned + drained at
    quiescence — the chaos harness's core no-stranded-work invariant,
    checked here on a deterministic miniature."""
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.2):
        service = QueryService(workers=1, queue_depth=16)
        session = service.session(db)
        tickets = [service.submit(session, SQL) for _ in range(5)]
        tickets[2].cancel("abandoned mid-queue")
        service.shutdown(wait=True, cancel_queued=True)
    for ticket in tickets:
        assert ticket.done()
        try:
            ticket.result(0.1)
        except Exception:
            pass
    submitted = metric_sum(service, "service_submitted_total")
    accounted = (
        metric_sum(service, "service_completed_total")
        + metric_sum(service, "service_failed_total")
        + metric_sum(service, "service_abandoned_total")
        + metric_sum(service, "service_drained_total")
    )
    assert submitted == len(tickets)
    assert accounted == submitted
