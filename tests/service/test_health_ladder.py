"""The degradation ladder end to end through the query service: a
storm of vectorized-kernel faults demotes the subsystem to the tuple
tier (results stay correct), queries during the demotion never touch
the sick path, and once the storm passes probation re-promotes."""

from __future__ import annotations

import time
from collections import Counter

import pytest

from repro import Connection, QueryService
from repro.options import ExecutionOptions
from repro.resilience import FAULTS, SITE_VECTORIZED_EVAL
from repro.resilience.health import (
    STATE_HEALTHY,
    SUBSYSTEM_VECTORIZED,
    HealthPolicy,
)
from repro.types.values import row_sort_key
from repro.workloads import SupplierScale, build_database, generate

SQL = "SELECT P.PNO, P.PNAME FROM PARTS P WHERE P.COLOR = 'RED'"

#: Tight budget and a short probation so the full demote → probe →
#: promote cycle fits in a fast test.
POLICY = HealthPolicy(
    budget=2,
    window=30.0,
    probation_delay=0.05,
    max_probation_delay=0.2,
    probe_every=1,
    promote_after=2,
)

VECTORIZED = ExecutionOptions.create(engine_mode="vectorized", batch_rows=8)


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=12, parts_per_supplier=4))
    )


def run_one(service, session):
    return service.submit(session, SQL, options=VECTORIZED).result(30)


def test_fault_storm_demotes_then_probation_repromotes(db):
    with Connection.local(
        db, options=ExecutionOptions.create(engine_mode="tuple")
    ) as conn:
        expected = Counter(
            row_sort_key(row) for row in conn.execute(SQL).fetchall()
        )
    with QueryService(workers=1, health_policy=POLICY) as service:
        session = service.session(db)

        # Storm: every batch kernel blows up; each query falls back to
        # the interpreter (correct answers) and burns error budget.
        with FAULTS.inject(SITE_VECTORIZED_EVAL, times=1000):
            for _ in range(POLICY.budget + 1):
                outcome = run_one(service, session)
                assert outcome.result.multiset() == expected
            assert service.health.tier(SUBSYSTEM_VECTORIZED) == "tuple"

            # Still demoted and still inside the storm: queries take the
            # tuple tier, so the armed fault never even fires.
            outcome = run_one(service, session)
            assert outcome.result.multiset() == expected
            assert outcome.stats.vectorized_batches == 0
            assert outcome.stats.vectorized_fallbacks == 0

        # Storm over: wait out probation, then clean probes re-promote.
        deadline = time.monotonic() + 10.0
        while (
            service.health.state(SUBSYSTEM_VECTORIZED) != STATE_HEALTHY
            and time.monotonic() < deadline
        ):
            run_one(service, session)
            time.sleep(0.02)
        assert service.health.state(SUBSYSTEM_VECTORIZED) == STATE_HEALTHY
        assert service.health.tier(SUBSYSTEM_VECTORIZED) == "vectorized"

        # Healthy again: the fast path actually runs.
        outcome = run_one(service, session)
        assert outcome.stats.vectorized_batches > 0
        assert outcome.result.multiset() == expected

    # The whole episode is on the metrics ledger.
    assert service.metrics.value(
        "health_demotions_total", subsystem=SUBSYSTEM_VECTORIZED
    ) >= 1
    assert service.metrics.value(
        "health_promotions_total", subsystem=SUBSYSTEM_VECTORIZED
    ) >= 1
    assert service.metrics.value(
        "health_degraded", subsystem=SUBSYSTEM_VECTORIZED
    ) == 0.0


def test_tuple_only_traffic_never_exercises_the_ladder(db):
    """Queries that cannot touch the vectorized engine must not feed
    its budget or its probation counters."""
    with QueryService(workers=1, health_policy=POLICY) as service:
        session = service.session(db)
        with FAULTS.inject(SITE_VECTORIZED_EVAL, times=1000):
            for _ in range(POLICY.budget * 3):
                service.submit(
                    session,
                    SQL,
                    options=ExecutionOptions.create(engine_mode="tuple"),
                ).result(30)
        snapshot = service.health.snapshot()[SUBSYSTEM_VECTORIZED]
        assert snapshot["state"] == STATE_HEALTHY
        assert snapshot["faults_in_window"] == 0
        assert snapshot["probes"] == 0


def test_analyze_reports_the_current_tiers(db):
    with QueryService(workers=1, health_policy=POLICY) as service:
        session = service.session(db)
        outcome = service.submit(
            session,
            SQL,
            options=ExecutionOptions.create(analyze=True),
        ).result(30)
        assert outcome.analysis is not None
        assert outcome.analysis.health is not None
        assert outcome.analysis.health[SUBSYSTEM_VECTORIZED] in (
            "vectorized",
            "tuple",
        )
        assert "health" in outcome.analysis.to_dict()
