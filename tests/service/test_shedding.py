"""Adaptive load shedding at the service's admission gate: batch
traffic is the shock absorber, interactive traffic keeps the queue."""

from __future__ import annotations

import pytest

from repro import QueryService
from repro.errors import LoadShedError
from repro.options import ExecutionOptions
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.resilience.admission import SheddingPolicy
from repro.workloads import SupplierScale, build_database, generate

SQL = "SELECT SNO FROM SUPPLIER"

#: Aggressive policy: one observed wait is enough to move the estimate,
#: and batch sheds as soon as predicted wait reaches half the (default
#: 0.2s) typical deadline.
POLICY = SheddingPolicy(
    target_delay=0.2, batch_shed_at=0.5, wait_smoothing=1.0, min_queue=1
)

BATCH = ExecutionOptions.create(priority="batch")


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=8, parts_per_supplier=2))
    )


def saturate(service, session):
    """Stall the single worker and back the queue up far enough that
    observed waits exceed the shedding threshold."""
    tickets = [service.submit(session, SQL) for _ in range(4)]
    return tickets


def test_batch_is_shed_under_predicted_delay(db):
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.3):
        with QueryService(workers=1, shedding=POLICY) as service:
            session = service.session(db)
            tickets = saturate(service, session)
            # Wait until the worker has dequeued at least one stalled
            # query, so an observed wait has fed the EWMA.
            tickets[1].result(30)
            assert service.admission.predicted_wait() >= 0.1
            with pytest.raises(LoadShedError) as caught:
                service.submit(session, SQL, options=BATCH)
            assert caught.value.priority == "batch"
            assert service.metrics.value(
                "service_shed_total", priority="batch"
            ) == 1
            # Interactive traffic is still admitted past the shedder.
            survivor = service.submit(session, SQL)
            assert survivor.result(30).result is not None
            for ticket in tickets:
                ticket.result(30)


def test_shed_error_is_retryable_backpressure(db):
    """LoadShedError must map to the 429 family so existing retrying
    clients treat shedding exactly like a full queue."""
    from repro.errors import ServiceOverloadedError
    from repro.net.protocol import status_for_error

    error = LoadShedError("batch", 0.4, 64)
    assert isinstance(error, ServiceOverloadedError)
    assert status_for_error(error) == 429


def test_batch_flows_freely_on_an_idle_service(db):
    with QueryService(workers=2, shedding=POLICY) as service:
        session = service.session(db)
        for _ in range(5):
            outcome = service.submit(session, SQL, options=BATCH).result(30)
            assert outcome.result is not None
    assert service.metrics.value("service_shed_total", priority="batch") == 0
