"""Behavioral tests for the embedded QueryService.

Covers the service contract end to end: results match serial execution,
sessions against different databases stay isolated, the bounded
admission queue applies backpressure (typed overload with ``wait=False``),
shutdown drains and then rejects, and the whole chaos matrix discipline
holds when queries run on service workers.
"""

import pytest

from repro import (
    ParallelOptions,
    QueryService,
    ResourceBudget,
    clear_all_caches,
    execute_planned,
)
from repro.cli import exit_code_for
from repro.errors import (
    ReproError,
    RowBudgetExceeded,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.resilience import (
    FAULTS,
    SITE_COMPILE,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
)
from repro.workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_database,
    generate,
)


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=12, parts_per_supplier=4, agents_per_supplier=2))
    )


@pytest.fixture(scope="module")
def other_db():
    return build_database(
        generate(SupplierScale(suppliers=5, parts_per_supplier=2, agents_per_supplier=1))
    )


@pytest.fixture(scope="module")
def baselines(db):
    clear_all_caches()
    return {
        query.example: execute_planned(
            query.sql, db, params=query.params
        ).multiset()
        for query in PAPER_QUERIES
    }


def test_service_results_match_serial(db, baselines):
    with QueryService(workers=4) as service:
        session = service.session(db)
        tickets = [
            service.submit(session, query.sql, query.params)
            for query in PAPER_QUERIES
        ]
        for query, ticket in zip(PAPER_QUERIES, tickets):
            outcome = ticket.result(timeout=30)
            assert outcome.result.multiset() == baselines[query.example], (
                f"E{query.example} served a different multiset"
            )
    snapshot = session.snapshot()
    assert snapshot["completed"] == len(PAPER_QUERIES)
    assert snapshot["failed"] == 0


def test_sessions_are_isolated(db, other_db):
    """Two sessions on different databases, same SQL: each must see its
    own data and its own counters — no cross-session poisoning through
    the shared plan cache."""
    sql = "SELECT SNO FROM SUPPLIER"
    expected_a = execute_planned(sql, db).multiset()
    expected_b = execute_planned(sql, other_db).multiset()
    assert expected_a != expected_b  # differently sized instances

    with QueryService(workers=4) as service:
        session_a = service.session(db)
        session_b = service.session(other_db)
        # Interleave submissions to maximize cross-talk opportunity.
        tickets = []
        for _ in range(10):
            tickets.append((session_a, service.submit(session_a, sql)))
            tickets.append((session_b, service.submit(session_b, sql)))
        for session, ticket in tickets:
            expected = expected_a if session is session_a else expected_b
            assert ticket.result(30).result.multiset() == expected

    assert session_a.snapshot()["completed"] == 10
    assert session_b.snapshot()["completed"] == 10
    # Counter isolation: each session accumulated only its own scans.
    assert session_a.stats.rows_output == 10 * len(expected_a)
    assert session_b.stats.rows_output == 10 * len(expected_b)


def test_parallel_service_results_match_serial(db, baselines):
    """Morsel parallelism inside service workers must not change results."""
    parallel = ParallelOptions(workers=2, morsel_size=8, min_parallel_rows=1)
    with QueryService(workers=4, parallel=parallel) as service:
        session = service.session(db)
        tickets = [
            service.submit(session, query.sql, query.params)
            for query in PAPER_QUERIES
        ]
        for query, ticket in zip(PAPER_QUERIES, tickets):
            outcome = ticket.result(timeout=30)
            assert outcome.result.multiset() == baselines[query.example]


def test_backpressure_overload_is_typed(db):
    """A full admission queue blocks `wait=True` and raises a typed
    ServiceOverloadedError for `wait=False`."""
    # Stall the single worker inside the (serial) plan-cache lookup, so
    # the queue demonstrably backs up.
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.3):
        with QueryService(workers=1, queue_depth=1) as service:
            session = service.session(db)
            sql = "SELECT SNO FROM SUPPLIER"
            first = service.submit(session, sql)  # taken by the worker
            second = service.submit(session, sql)  # fills the queue
            with pytest.raises(ServiceOverloadedError):
                service.submit(session, sql, wait=False)
            assert service.metrics.value("service_rejected_total") == 1
            assert first.result(30).result is not None
            assert second.result(30).result is not None


def test_overload_maps_to_exit_code_nine():
    assert exit_code_for(ServiceOverloadedError(8)) == 9


def test_shutdown_drains_then_rejects(db):
    service = QueryService(workers=2)
    session = service.session(db)
    tickets = session.submit_many(
        ["SELECT SNO FROM SUPPLIER", "SELECT PNO FROM PARTS"]
    )
    service.shutdown(wait=True)
    for ticket in tickets:
        assert ticket.done()
        assert ticket.result() is not None  # admitted work still ran
    with pytest.raises(ServiceShutdownError):
        service.submit(session, "SELECT SNO FROM SUPPLIER")
    with pytest.raises(ServiceShutdownError):
        service.session(db)
    service.shutdown()  # idempotent


def test_query_errors_propagate_typed(db):
    with QueryService(workers=2) as service:
        session = service.session(
            db, budget=ResourceBudget(row_budget=1)
        )
        ticket = service.submit(
            session, "SELECT S.SNO FROM SUPPLIER S, PARTS P"
        )
        with pytest.raises(RowBudgetExceeded):
            ticket.result(30)
    assert session.snapshot()["failed"] == 1


#: Chaos scenarios exercised on service workers (subset of the engine
#: matrix: one cache site, one compile site, one probabilistic operator
#: fault — the shapes with distinct fallback ladders).
SERVICE_CHAOS = [
    (SITE_PLAN_CACHE, {}),
    (SITE_COMPILE, {}),
    (SITE_OPERATOR, {"probability": 0.05}),
]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_matrix_under_service(db, baselines, seed):
    """The chaos contract holds when executions run on service workers:
    every outcome is the correct multiset or a typed ReproError."""
    for site, kwargs in SERVICE_CHAOS:
        FAULTS.seed(seed)
        clear_all_caches()
        with FAULTS.inject(site, **kwargs):
            with QueryService(workers=4) as service:
                session = service.session(db)
                tickets = [
                    service.submit(session, query.sql, query.params)
                    for query in PAPER_QUERIES
                    if query.example not in ("10", "11")
                ]
                examples = [
                    query.example
                    for query in PAPER_QUERIES
                    if query.example not in ("10", "11")
                ]
                for example, ticket in zip(examples, tickets):
                    try:
                        outcome = ticket.result(timeout=60)
                    except ReproError:
                        continue  # typed failure: acceptable outcome
                    assert outcome.result.multiset() == baselines[example], (
                        f"E{example} wrong under {site!r} fault "
                        f"(seed {seed}) on a service worker"
                    )
