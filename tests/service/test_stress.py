"""Multi-thread stress tests for the concurrency-safe shared state.

Eight threads hammer the plan cache and the lazy index builds — the two
shared structures a concurrent service leans on hardest — and the
assertions are exact, not statistical: counter accounting must balance
to the op count (no lost updates), and a races-to-build index must be
built exactly once (single-flight).
"""

import threading

import pytest

from repro import Database, PlannerOptions, Stats, execute_planned
from repro.cache import LRUCache, MISSING
from repro.engine.plan_cache import PlanCache
from repro.errors import InjectedFaultError
from repro.resilience import FAULTS, SITE_INDEX_BUILD
from repro.workloads import SupplierScale, build_database, generate

THREADS = 8
OPS = 200


def _run_threads(worker) -> list:
    """Start THREADS copies of *worker* behind a barrier; re-raise the
    first error any of them hit."""
    barrier = threading.Barrier(THREADS)
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - collected for re-raise
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return errors


def test_lru_cache_counters_balance_under_contention():
    """hits + misses must equal the exact number of lookups, and every
    stored entry must be retrievable — no lost updates, no torn LRU."""
    cache = LRUCache("stress-lru", maxsize=THREADS * OPS * 2)

    def worker(index: int) -> None:
        for op in range(OPS):
            key = (index, op)
            assert cache.get(key) is MISSING  # distinct keys: first miss
            cache.put(key, op)
            assert cache.get(key) == op  # then a guaranteed hit

    _run_threads(worker)
    stats = cache.stats()
    assert stats["misses"] == THREADS * OPS
    assert stats["hits"] == THREADS * OPS
    assert stats["entries"] == THREADS * OPS


def test_plan_cache_get_put_stress():
    """Eight threads lookup/store through the PlanCache wrapper; the
    counter ledger must balance exactly."""
    cache = PlanCache(maxsize=THREADS * OPS * 2)
    sentinel_plans = {}

    def worker(index: int) -> None:
        for op in range(OPS):
            key = ("fp", f"SELECT {index}", op)
            if cache.lookup(key) is None:
                cache.store(key, sentinel_plans.setdefault(index, object()))
            assert cache.lookup(key) is sentinel_plans[index]

    _run_threads(worker)
    # Per thread: OPS first-lookup misses + OPS verification hits.
    assert cache.misses == THREADS * OPS
    assert cache.hits == THREADS * OPS


def test_single_flight_index_build():
    """Eight threads race one lazy index build: exactly one build runs,
    everyone gets the same index object."""
    db = build_database(
        generate(SupplierScale(suppliers=200, parts_per_supplier=5))
    )
    data = db.table("PARTS")
    results: dict[int, dict] = {}

    # Slow the (single) builder down so the other threads demonstrably
    # arrive while the build is in flight and park on the event.
    with FAULTS.inject(SITE_INDEX_BUILD, kind="slow", delay=0.05, times=1):

        def worker(index: int) -> None:
            results[index] = data.hash_index(("SNO",))

        _run_threads(worker)

    assert data.index_builds == 1, "duplicate index build under race"
    first = results[0]
    assert all(results[i] is first for i in range(THREADS))
    assert data.single_flight_waits >= 1


def test_failed_index_build_does_not_wedge():
    """A builder that dies must clean up the in-flight marker so the
    next caller can build."""
    db = build_database(generate(SupplierScale(suppliers=20)))
    data = db.table("SUPPLIER")
    with FAULTS.inject(SITE_INDEX_BUILD, times=1):
        with pytest.raises(InjectedFaultError):
            data.hash_index(("SNO",))
        # Retry inside the armed window: the fault only fires once.
        index = data.hash_index(("SNO",))
    assert index is data.hash_index(("SNO",))
    assert data.index_builds == 1


def test_stats_stay_private_per_thread():
    """Concurrent executions with private Stats sinks: each execution's
    ledger must balance on its own (plan-cache hit+miss == 1 per run),
    proving no cross-thread counter bleed."""
    db = build_database(generate(SupplierScale(suppliers=30)))
    cache = PlanCache(maxsize=64)
    sql = "SELECT SNO, SNAME FROM SUPPLIER WHERE SCITY = 'Toronto'"
    per_thread: dict[int, Stats] = {}

    def worker(index: int) -> None:
        stats = Stats()
        for _ in range(20):
            execute_planned(
                sql,
                db,
                stats=stats,
                options=PlannerOptions(),
                plan_cache=cache,
            )
        per_thread[index] = stats

    _run_threads(worker)
    total = Stats()
    for stats in per_thread.values():
        assert stats.plan_cache_hits + stats.plan_cache_misses == 20
        total = total + stats
    assert total.plan_cache_hits + total.plan_cache_misses == THREADS * 20
    # The underlying shared cache saw every lookup exactly once.
    assert cache.hits + cache.misses == THREADS * 20
