"""Deadline propagation through the query service: rejection before
work at submit, rejection after queue wait, and the ledger counters
that account every rejected budget."""

from __future__ import annotations

import pytest

from repro import QueryService
from repro.errors import DeadlineExpiredError
from repro.options import ExecutionOptions
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.resilience.deadline import Deadline
from repro.workloads import SupplierScale, build_database, generate

SQL = "SELECT SNO FROM SUPPLIER"


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=8, parts_per_supplier=2))
    )


def test_live_deadline_executes_normally(db):
    with QueryService(workers=1) as service:
        session = service.session(db)
        options = ExecutionOptions.create(deadline=30.0)
        outcome = service.submit(session, SQL, options=options).result(30)
        assert len(outcome.result) > 0
    assert service.metrics.value("service_deadline_rejected_total") == 0


def test_expired_deadline_rejected_at_submit_with_zero_work(db):
    with QueryService(workers=1) as service:
        session = service.session(db)
        options = ExecutionOptions.create(deadline=Deadline.after(-1.0))
        with pytest.raises(DeadlineExpiredError):
            service.submit(session, SQL, options=options)
        # Rejected before admission: nothing was queued or executed.
        assert service.metrics.value(
            "service_deadline_rejected_total", session=session.name
        ) == 1
        assert service.metrics.value("service_submitted_total") == 0
        assert session.snapshot()["completed"] == 0


def test_queue_wait_spends_the_deadline(db):
    """A deadline that is alive at submit but dead when a worker picks
    the query up must fail without executing, with the queue wait
    annotated on the error."""
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.4):
        with QueryService(workers=1) as service:
            session = service.session(db)
            blocker = service.submit(session, SQL)  # occupies the worker
            doomed = service.submit(
                session,
                SQL,
                options=ExecutionOptions.create(deadline=0.05),
            )
            assert blocker.result(30).result is not None
            with pytest.raises(DeadlineExpiredError) as caught:
                doomed.result(30)
            assert caught.value.waited is not None
            assert caught.value.waited >= 0.05
            assert service.metrics.value(
                "service_deadline_expired_total", session=session.name
            ) == 1
            # The ledger still balances: the expiry is a failure.
            assert session.snapshot()["failed"] == 1


def test_deadline_clamps_the_execution_timeout(db):
    """Inside execution the remaining deadline acts as the timeout: a
    query slower than its budget dies with QueryTimeout mid-flight even
    though the caller's own --timeout was far looser.  The scan must
    cross the guard's 256-tick clock-check interval, hence the cross
    join and the per-operator stall."""
    from repro.errors import QueryTimeout
    from repro.resilience import SITE_OPERATOR

    big = build_database(
        generate(SupplierScale(suppliers=20, parts_per_supplier=10))
    )
    with FAULTS.inject(SITE_OPERATOR, kind="slow", delay=0.002, times=2000):
        with QueryService(workers=1) as service:
            session = service.session(big)
            ticket = service.submit(
                session,
                "SELECT S.SNO FROM SUPPLIER S, PARTS P",
                options=ExecutionOptions.create(deadline=0.15, timeout=30.0),
            )
            with pytest.raises(QueryTimeout):
                ticket.result(60)


def test_submit_feeds_the_typical_deadline_estimate(db):
    with QueryService(workers=1) as service:
        session = service.session(db)
        options = ExecutionOptions.create(deadline=5.0)
        service.submit(session, SQL, options=options).result(30)
        typical = service.admission.typical_deadline()
        assert typical == pytest.approx(5.0, abs=0.2)
