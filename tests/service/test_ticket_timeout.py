"""QueryTicket.result(timeout=...) raises the typed wait-timeout."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError, TicketWaitTimeout
from repro.resilience import FAULTS, SITE_PLAN_CACHE
from repro.service import QueryService


def test_ticket_wait_timeout_is_typed(tiny_db):
    with QueryService(workers=1) as service:
        session = service.session(tiny_db)
        with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.5, times=1):
            ticket = session.submit("SELECT S.SNO FROM SUPPLIER S", wait=True)
            with pytest.raises(TicketWaitTimeout) as excinfo:
                ticket.result(timeout=0.05)
            # The wait expired, not the query: the ticket still completes.
            outcome = ticket.result(timeout=10)
    error = excinfo.value
    assert error.timeout == 0.05
    assert "SELECT S.SNO FROM SUPPLIER S" in str(error)
    assert len(outcome.result) == 4


def test_ticket_wait_timeout_hierarchy():
    """Subclasses both ServiceError and TimeoutError, so pre-facade
    ``except TimeoutError`` handlers keep catching it."""
    error = TicketWaitTimeout(1.0, "SELECT 1")
    assert isinstance(error, ServiceError)
    assert isinstance(error, TimeoutError)
