"""Abandoned tickets must not burn workers: a cancelled-but-queued
query is dropped before execution, a cancelled-while-running query is
cooperatively stopped through its guard, and every path lands in the
metrics ledger."""

from __future__ import annotations

import threading
import time

import pytest

from repro import QueryService
from repro.errors import QueryCancelled
from repro.resilience import FAULTS, SITE_OPERATOR, SITE_PLAN_CACHE
from repro.workloads import SupplierScale, build_database, generate

SQL = "SELECT SNO FROM SUPPLIER"


@pytest.fixture(scope="module")
def db():
    return build_database(
        generate(SupplierScale(suppliers=8, parts_per_supplier=2))
    )


def test_cancel_while_queued_skips_execution(db):
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.3):
        with QueryService(workers=1) as service:
            session = service.session(db)
            blocker = service.submit(session, SQL)
            queued = service.submit(session, SQL)
            queued.cancel("client went away")
            assert queued.cancelled
            blocker.result(30)
            with pytest.raises(QueryCancelled) as caught:
                queued.result(30)
            assert "client went away" in str(caught.value)
            assert service.metrics.value(
                "service_abandoned_total", session=session.name
            ) == 1
            # The skipped query consumed no execution: only the blocker
            # completed, nothing else was recorded against the session.
            assert session.snapshot()["completed"] == 1


def test_cancel_while_running_stops_via_the_guard(db):
    """A query stalled mid-operator must die with QueryCancelled at its
    next guard tick once the ticket is cancelled — the cooperative
    cancel reaches the live execution through the attached guard."""
    with FAULTS.inject(SITE_OPERATOR, kind="slow", delay=0.05, times=200):
        with QueryService(workers=1) as service:
            session = service.session(db)
            ticket = service.submit(session, SQL)
            # Let the worker attach the guard and start executing.
            deadline = time.monotonic() + 5.0
            while ticket._guard is None and time.monotonic() < deadline:
                time.sleep(0.005)
            assert ticket._guard is not None, "worker never attached a guard"
            ticket.cancel("operator lost patience")
            with pytest.raises(QueryCancelled):
                ticket.result(30)
            assert service.metrics.value(
                "service_failed_total",
                session=session.name,
                error="QueryCancelled",
            ) == 1


def test_cancel_racing_the_attach_is_not_lost(db):
    """Cancelling concurrently with the worker picking the query up
    must never strand the ticket: whichever side wins, the ticket
    completes with either a result or QueryCancelled."""
    for _ in range(10):
        with QueryService(workers=1) as service:
            session = service.session(db)
            ticket = service.submit(session, SQL)
            canceller = threading.Thread(target=ticket.cancel, args=("race",))
            canceller.start()
            canceller.join()
            try:
                outcome = ticket.result(10)
                assert outcome.result is not None  # cancel arrived too late
            except QueryCancelled:
                pass  # cancel won
            assert ticket.done()


def test_cancel_after_completion_is_a_no_op(db):
    with QueryService(workers=1) as service:
        session = service.session(db)
        ticket = service.submit(session, SQL)
        outcome = ticket.result(30)
        ticket.cancel("too late")
        # The completed outcome is untouched and re-readable.
        assert ticket.result(0.1) is outcome
