"""Property tests: snapshot isolation under random interleaved schedules.

Hypothesis drives an arbitrary interleaving of several writer
transactions (inserts, deletes, commits, rollbacks) over one table and
checks the two load-bearing guarantees directly against an
independently maintained serial model:

* **Reader pinning** — a reader that begins at any point of the
  schedule observes exactly the committed state at its begin instant,
  no matter what commits afterwards.
* **Serial equivalence of commits** — the final committed state equals
  the serial application of the successfully committed transactions in
  commit order, and committed candidate keys are always unique.

The model never peeks at MVCC internals: it folds a transaction's
buffered effects in only when ``commit()`` returns, so a divergence
means the engine published something it should not have (or lost
something it should have kept).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.database import Database
from repro.errors import UniquenessViolationError, WriteConflictError

WRITERS = 3
KEYS = st.integers(min_value=0, max_value=5)

OP = st.one_of(
    st.tuples(st.just("put"), KEYS, st.integers(min_value=0, max_value=99)),
    st.tuples(st.just("del"), KEYS),
    st.tuples(st.just("commit")),
    st.tuples(st.just("rollback")),
)

SCHEDULE = st.lists(
    st.tuples(st.integers(min_value=0, max_value=WRITERS - 1), OP),
    min_size=1,
    max_size=30,
)


def _fresh() -> Database:
    return Database.from_script(
        """
CREATE TABLE T (K INT NOT NULL, V INT, PRIMARY KEY (K));
INSERT INTO T VALUES (0, 1000), (1, 1001);
"""
    )


def _committed(db: Database) -> dict[int, int]:
    state = {}
    for row in db.table("T").rows:
        assert row[0] not in state, "committed candidate key duplicated"
        state[row[0]] = row[1]
    return state


def _apply(db, txn, deleted, op):
    kind = op[0]
    if kind == "put":
        _, key, value = op
        try:
            txn.insert_row("T", (key, value))
        except UniquenessViolationError:
            pass  # key visible to this transaction: correctly rejected
    elif kind == "del":
        _, key = op
        for version in [
            v for v in txn.visible_versions("T") if v.row[0] == key
        ]:
            if txn.delete_version("T", version):
                deleted.append(tuple(version.row))
        for row in [r for r in txn.pending_inserts("T") if r[0] == key]:
            txn.delete_pending_insert("T", row)


def _commit(txn, deleted, model):
    """Try to commit; fold the effects into *model* only on success."""
    pending = [tuple(row) for row in txn.pending_inserts("T")]
    try:
        txn.commit()
    except (WriteConflictError, UniquenessViolationError):
        return  # loser of a race: publishes nothing
    for row in deleted:
        # No conflict was raised, so every deleted version was still
        # current — the model must agree it was there.
        assert model.get(row[0]) == row[1]
        del model[row[0]]
    for key, value in pending:
        assert key not in model, "commit published a duplicate key"
        model[key] = value


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=SCHEDULE, reader_at=st.integers(min_value=0, max_value=30))
def test_random_interleavings_are_snapshot_isolated(schedule, reader_at):
    db = _fresh()
    model = _committed(db)
    open_txns: dict[int, object] = {}
    deleted: dict[int, list] = {}
    reader = None
    reader_expected = None

    for step, (writer, op) in enumerate(schedule):
        if reader is None and step >= reader_at:
            reader = db.begin()
            reader_expected = dict(model)
        txn = open_txns.get(writer)
        if op[0] in ("commit", "rollback"):
            if txn is None:
                continue
            if op[0] == "commit":
                _commit(txn, deleted[writer], model)
            else:
                txn.rollback()
            del open_txns[writer]
            continue
        if txn is None:
            txn = open_txns[writer] = db.begin()
            deleted[writer] = []
        _apply(db, txn, deleted[writer], op)
        # Uncommitted work never leaks into the committed state.
        assert _committed(db) == model

    if reader is None:
        reader = db.begin()
        reader_expected = dict(model)
    for writer, txn in list(open_txns.items()):
        _commit(txn, deleted[writer], model)

    # Serial equivalence: the committed table is exactly the serial
    # fold of the transactions in the order their commits succeeded.
    assert _committed(db) == model

    # Reader pinning: everything committed after the reader began is
    # invisible to it; everything before remains visible.
    view = reader.view()
    observed = {row[0]: row[1] for row in view.table("T").rows}
    assert observed == reader_expected
    reader.rollback()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    keys=st.lists(KEYS, min_size=2, max_size=8),
)
def test_concurrent_inserters_never_publish_duplicates(keys):
    """Every pair of racing inserters of one key resolves to exactly
    one committed row — the other gets the typed violation at commit."""
    db = _fresh()
    txns = [db.begin() for _ in keys]
    buffered = []
    for txn, key in zip(txns, keys):
        try:
            txn.insert_row("T", (key, 7))
            buffered.append(txn)
        except UniquenessViolationError:
            txn.rollback()  # seed row already owns the key
    for txn in buffered:
        try:
            txn.commit()
        except UniquenessViolationError:
            pass
    _committed(db)  # asserts key uniqueness internally
