"""Property tests: key-bound joins never exceed Theorem 1's cap.

When the join keys cover a candidate key of one side, every row of the
other side matches at most one row — so both the *estimated* and the
*actual* join cardinality are bounded by the other side's row count,
for every database instance and every filter.  The estimator must
honour the same bound the execution provably does.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database, Planner, PlannerOptions, execute_planned
from repro.engine.operators import HashJoin, SortMergeJoin
from repro.sql import parse_query
from repro.stats import StatisticsCostModel
from repro.stats.histogram import Histogram
from repro.workloads import SupplierScale, build_database, generate

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

KEY_JOIN = (
    "SELECT P.PNAME FROM PARTS P, SUPPLIER S "
    "WHERE P.SNO = S.SNO AND S.BUDGET > {threshold}"
)


def _database(suppliers, parts_per_supplier):
    return build_database(
        generate(
            SupplierScale(
                suppliers=suppliers, parts_per_supplier=parts_per_supplier
            )
        )
    )


def _join_nodes(plan):
    found = []

    def visit(node):
        if isinstance(node, (HashJoin, SortMergeJoin)):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


@settings(max_examples=25, **COMMON)
@given(
    suppliers=st.integers(min_value=1, max_value=20),
    parts=st.integers(min_value=1, max_value=5),
    threshold=st.integers(min_value=0, max_value=1000),
)
def test_key_join_estimate_and_actual_respect_bound(
    suppliers, parts, threshold
):
    db = _database(suppliers, parts)
    db.analyze()
    sql = KEY_JOIN.format(threshold=threshold)
    planner = Planner(
        db.catalog, PlannerOptions(use_stats=True), database=db
    )
    plan = planner.plan(parse_query(sql))
    model = StatisticsCostModel(db, db.statistics)
    bound = db.statistics.table("PARTS").row_count

    for join in _join_nodes(plan):
        assert model.estimate(join).rows <= bound + 1e-9

    actual = execute_planned(sql, db)
    assert len(actual) <= bound


@settings(max_examples=25, **COMMON)
@given(
    suppliers=st.integers(min_value=1, max_value=20),
    parts=st.integers(min_value=1, max_value=5),
    city=st.sampled_from(["Chicago", "New York", "Toronto", "nowhere"]),
)
def test_filter_estimates_never_exceed_table_rows(suppliers, parts, city):
    db = _database(suppliers, parts)
    db.analyze()
    sql = f"SELECT SNO FROM SUPPLIER WHERE SCITY = '{city}'"
    plan = Planner(db.catalog).plan(parse_query(sql))
    model = StatisticsCostModel(db, db.statistics)
    rows = model.estimate(plan).rows
    assert 0.0 <= rows <= db.statistics.table("SUPPLIER").row_count


@settings(max_examples=100, **COMMON)
@given(
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200
    ),
    probe=st.integers(min_value=-1100, max_value=1100),
)
def test_histogram_cdf_is_a_distribution(values, probe):
    histogram = Histogram.build(sorted(values), buckets=8)
    at_most = histogram.fraction_at_most(probe)
    less = histogram.fraction_less(probe)
    assert 0.0 <= less <= at_most <= 1.0
    assert histogram.fraction_at_most(max(values)) == 1.0
    assert histogram.fraction_less(min(values)) == 0.0
