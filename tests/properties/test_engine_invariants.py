"""Property tests on engine invariants.

* the physical planner agrees with the reference interpreter under
  every join/distinct strategy,
* set operations honour the SQL2 multiset laws (min/max/sum of counts),
* DISTINCT-by-sort and DISTINCT-by-hash agree,
* canonical row ordering is a total order.
"""

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database, PlannerOptions, execute, execute_planned
from repro.catalog import CatalogBuilder
from repro.types import NULL, row_sort_key, sort_key
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=100, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    join_method=st.sampled_from(["hash", "merge", "nested"]),
    distinct_method=st.sampled_from(["sort", "hash"]),
)
def test_planner_agrees_with_interpreter(seed, join_method, distinct_method):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    reference = execute(query, database)
    planned = execute_planned(
        query,
        database,
        options=PlannerOptions(join_method, distinct_method),
    )
    assert reference.same_rows(planned)


def _value_lists(draw_values):
    return st.lists(draw_values, max_size=8)


VALUES = st.one_of(st.integers(min_value=0, max_value=3), st.just(NULL))


def _setop_db(left, right):
    catalog = (
        CatalogBuilder()
        .table("IDS")
        .column("PK")
        .column("V")
        .primary_key("PK")
        .finish()
        .table("JDS")
        .column("PK")
        .column("V")
        .primary_key("PK")
        .finish()
        .build()
    )
    database = Database(catalog)
    database.load("IDS", [(i, v) for i, v in enumerate(left)])
    database.load("JDS", [(i, v) for i, v in enumerate(right)])
    return database


def _counts(values):
    return Counter(row_sort_key((v,)) for v in values)


@settings(max_examples=100, **COMMON)
@given(left=_value_lists(VALUES), right=_value_lists(VALUES))
def test_intersect_all_is_min_of_counts(left, right):
    database = _setop_db(left, right)
    result = execute(
        "SELECT V FROM IDS INTERSECT ALL SELECT V FROM JDS", database
    )
    expected = Counter()
    right_counts = _counts(right)
    for key, j in _counts(left).items():
        copies = min(j, right_counts.get(key, 0))
        if copies:
            expected[key] = copies
    assert result.multiset() == expected


@settings(max_examples=100, **COMMON)
@given(left=_value_lists(VALUES), right=_value_lists(VALUES))
def test_except_all_is_truncated_difference(left, right):
    database = _setop_db(left, right)
    result = execute(
        "SELECT V FROM IDS EXCEPT ALL SELECT V FROM JDS", database
    )
    expected = Counter()
    right_counts = _counts(right)
    for key, j in _counts(left).items():
        copies = max(j - right_counts.get(key, 0), 0)
        if copies:
            expected[key] = copies
    assert result.multiset() == expected


@settings(max_examples=100, **COMMON)
@given(left=_value_lists(VALUES), right=_value_lists(VALUES))
def test_distinct_setops_produce_sets(left, right):
    database = _setop_db(left, right)
    for op in ("INTERSECT", "EXCEPT", "UNION"):
        result = execute(
            f"SELECT V FROM IDS {op} SELECT V FROM JDS", database
        )
        assert not result.has_duplicates()


@settings(max_examples=100, **COMMON)
@given(left=_value_lists(VALUES), right=_value_lists(VALUES))
def test_union_all_sums_counts(left, right):
    database = _setop_db(left, right)
    result = execute(
        "SELECT V FROM IDS UNION ALL SELECT V FROM JDS", database
    )
    assert result.multiset() == _counts(left) + _counts(right)


@settings(max_examples=100, **COMMON)
@given(values=_value_lists(VALUES))
def test_distinct_methods_agree(values):
    database = _setop_db(values, [])
    by_sort = execute_planned(
        "SELECT DISTINCT V FROM IDS",
        database,
        options=PlannerOptions(distinct_method="sort"),
    )
    by_hash = execute_planned(
        "SELECT DISTINCT V FROM IDS",
        database,
        options=PlannerOptions(distinct_method="hash"),
    )
    assert by_sort.same_rows(by_hash)
    assert not by_sort.has_duplicates()


@settings(max_examples=200, **COMMON)
@given(
    a=st.one_of(st.integers(), st.text(max_size=3), st.booleans(), st.just(NULL)),
    b=st.one_of(st.integers(), st.text(max_size=3), st.booleans(), st.just(NULL)),
    c=st.one_of(st.integers(), st.text(max_size=3), st.booleans(), st.just(NULL)),
)
def test_sort_key_is_a_total_order(a, b, c):
    keys = sorted([sort_key(a), sort_key(b), sort_key(c)])
    assert keys[0] <= keys[1] <= keys[2]
    # antisymmetry on equal keys: equal keys mean ≐-equality class
    if sort_key(a) == sort_key(b):
        assert row_sort_key((a,)) == row_sort_key((b,))
