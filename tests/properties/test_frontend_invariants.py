"""Property tests for the SQL front end and normal forms.

* printer/parser round-trip over randomly generated predicate trees,
* CNF/DNF/NNF three-valued semantic equivalence over random predicates
  (brute-forced over a small row space),
* random CREATE TABLE round-trips.
"""

import itertools
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    NormalFormOverflow,
    clauses_to_expr,
    terms_to_expr,
    to_cnf_clauses,
    to_dnf_terms,
    to_nnf,
)
from repro.engine import Evaluator, RelSchema, Scope
from repro.engine.schema import ColumnInfo
from repro.sql import parse, parse_condition, to_sql
from repro.sql.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    IsNull,
    Literal,
    Not,
    conjoin,
    disjoin,
)
from repro.types import NULL

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

COLUMNS = [ColumnRef("T", "A"), ColumnRef("T", "B"), ColumnRef("T", "C")]
SCHEMA = RelSchema([ColumnInfo("T", "A"), ColumnInfo("T", "B"), ColumnInfo("T", "C")])
DOMAIN = (0, 1, NULL)


def random_predicate(rng: random.Random, depth: int = 3) -> Expr:
    """A random predicate tree over three columns."""
    if depth <= 0 or rng.random() < 0.35:
        return _random_atom(rng)
    kind = rng.random()
    if kind < 0.35:
        return conjoin(
            [random_predicate(rng, depth - 1) for _ in range(rng.randint(2, 3))]
        )
    if kind < 0.7:
        return disjoin(
            [random_predicate(rng, depth - 1) for _ in range(rng.randint(2, 3))]
        )
    return Not(random_predicate(rng, depth - 1))


def _random_atom(rng: random.Random) -> Expr:
    column = rng.choice(COLUMNS)
    kind = rng.random()
    if kind < 0.4:
        op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
        return Comparison(op, column, Literal(rng.choice((0, 1, 2))))
    if kind < 0.6:
        return Comparison("=", column, rng.choice(COLUMNS))
    if kind < 0.75:
        return IsNull(column, negated=rng.random() < 0.5)
    if kind < 0.9:
        return Between(
            column,
            Literal(rng.choice((0, 1))),
            Literal(rng.choice((1, 2))),
            negated=rng.random() < 0.3,
        )
    return InList(
        column,
        tuple(Literal(v) for v in rng.sample((0, 1, 2), rng.randint(1, 2))),
        negated=rng.random() < 0.3,
    )


def truth_vector(expr: Expr) -> list:
    evaluator = Evaluator()
    return [
        evaluator.predicate(expr, Scope(SCHEMA, row))
        for row in itertools.product(DOMAIN, repeat=3)
    ]


@settings(max_examples=250, **COMMON)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_predicate_print_parse_round_trip(seed):
    """to_sql . parse_condition is the identity on predicate ASTs."""
    expr = random_predicate(random.Random(seed))
    assert parse_condition(to_sql(expr)) == expr


@settings(max_examples=150, **COMMON)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_normal_forms_preserve_three_valued_semantics(seed):
    """NNF/CNF/DNF agree with the original on every row, including NULLs."""
    expr = random_predicate(random.Random(seed))
    reference = truth_vector(expr)
    try:
        nnf = to_nnf(expr)
        cnf = clauses_to_expr(to_cnf_clauses(expr))
        dnf = terms_to_expr(to_dnf_terms(expr))
    except NormalFormOverflow:
        return
    assert truth_vector(nnf) == reference
    assert truth_vector(cnf) == reference
    assert truth_vector(dnf) == reference


@settings(max_examples=150, **COMMON)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_query_print_parse_round_trip(seed):
    """Full SELECT statements round-trip through the printer."""
    rng = random.Random(seed)
    from repro.sql.ast import (
        Quantifier,
        SelectItem,
        SelectQuery,
        SetOperation,
        SetOpKind,
        TableRef,
    )

    def random_select():
        where = random_predicate(rng, depth=2) if rng.random() < 0.8 else None
        if rng.random() < 0.2 and where is not None:
            where = conjoin(
                [where, Comparison("=", COLUMNS[0], HostVar("H-VAR"))]
            )
        return SelectQuery(
            quantifier=(
                Quantifier.DISTINCT if rng.random() < 0.5 else Quantifier.ALL
            ),
            select_list=tuple(
                SelectItem(rng.choice(COLUMNS))
                for _ in range(rng.randint(1, 3))
            ),
            tables=(TableRef("T"),),
            where=where,
        )

    query = random_select()
    if rng.random() < 0.4:
        query = SetOperation(
            rng.choice(list(SetOpKind)),
            rng.random() < 0.5,
            query,
            random_select(),
        )
    assert parse(to_sql(query)) == query
