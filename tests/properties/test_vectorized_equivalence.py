"""Property tests: vectorized execution ≡ the tuple interpreter.

The columnar engine's whole contract is byte-identity — same rows, same
sequence, same work accounting — so these properties drive it with
randomized schemas, NULL-bearing data, and random SPJ queries:

* vectorized output matches the interpreter row for row,
* the shared engine counters agree exactly (only the path-descriptive
  ``vectorized_*``/``parallel_*`` counters may differ),
* under seeded ``vectorized_eval`` fault schedules the demotion ladder
  lands back on the interpreter without changing a single row,
* batch size never affects results, only batch counts.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import PlannerOptions, execute_planned
from repro.engine.stats import Stats
from repro.resilience import FAULTS, SITE_VECTORIZED_EVAL
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _world(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    return database, query


@settings(max_examples=100, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    join_method=st.sampled_from(["hash", "merge", "nested"]),
    distinct_method=st.sampled_from(["sort", "hash"]),
)
def test_vectorized_is_byte_identical_to_tuple(
    seed, join_method, distinct_method
):
    database, query = _world(seed)
    options = PlannerOptions(join_method, distinct_method)
    tuple_stats, vec_stats = Stats(), Stats()
    reference = execute_planned(
        query, database, options=options, engine_mode="tuple",
        stats=tuple_stats,
    )
    vectorized = execute_planned(
        query, database, options=options, engine_mode="vectorized",
        stats=vec_stats,
    )
    assert vectorized.columns == reference.columns
    assert vectorized.rows == reference.rows  # sequence, not just multiset
    for name, value in tuple_stats.as_dict().items():
        if (
            name.startswith("vectorized")
            or name.startswith("parallel")
            or name.startswith("plan_cache")
        ):
            continue
        assert getattr(vec_stats, name) == value, name


@settings(max_examples=60, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch_rows=st.sampled_from([1, 2, 3, 5, 64]),
)
def test_batch_size_never_changes_results(seed, batch_rows):
    database, query = _world(seed)
    reference = execute_planned(query, database, engine_mode="tuple")
    vectorized = execute_planned(
        query, database, engine_mode="vectorized", batch_rows=batch_rows
    )
    assert vectorized.rows == reference.rows


@settings(max_examples=40, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2_000),
    chaos_seed=st.sampled_from([0, 1, 2]),
    after=st.integers(min_value=0, max_value=3),
)
def test_vectorized_faults_demote_without_changing_rows(
    seed, chaos_seed, after
):
    """A probabilistic vectorized_eval schedule forces mid-stream
    demotion; the interpreter fallback must reproduce the reference
    answer exactly."""
    database, query = _world(seed)
    reference = execute_planned(query, database, engine_mode="tuple")
    FAULTS.seed(chaos_seed)
    stats = Stats()
    with FAULTS.inject(
        SITE_VECTORIZED_EVAL, after=after, probability=0.5
    ):
        faulted = execute_planned(
            query, database, engine_mode="vectorized", stats=stats,
            batch_rows=2,
        )
    assert faulted.rows == reference.rows
