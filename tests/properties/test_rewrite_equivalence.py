"""Property: every rewrite the optimizer applies preserves query results.

Random queries (including synthesized EXISTS correlations and set
operations) are optimized and executed before/after on random instances;
results must be multiset-identical.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Optimizer
from repro.engine import execute
from repro.sql.ast import (
    Quantifier,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOpKind,
    Star,
    TableRef,
)
from repro.sql.expressions import ColumnRef, Comparison, Exists, Literal, conjoin
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def random_exists_query(rng, catalog):
    """An outer single-table block with a correlated EXISTS subquery."""
    names = catalog.table_names()
    outer_name = rng.choice(names)
    inner_name = rng.choice(names)
    outer_schema = catalog.table(outer_name)
    inner_schema = catalog.table(inner_name)
    outer_alias, inner_alias = "O", "I"

    correlation = Comparison(
        "=",
        ColumnRef(inner_alias, rng.choice(inner_schema.column_names)),
        ColumnRef(outer_alias, rng.choice(outer_schema.column_names)),
    )
    inner_parts = [correlation]
    if rng.random() < 0.7:
        inner_parts.append(
            Comparison(
                "=",
                ColumnRef(inner_alias, rng.choice(inner_schema.column_names)),
                Literal(rng.choice((0, 1, 2))),
            )
        )
    inner = SelectQuery(
        quantifier=Quantifier.ALL,
        select_list=(Star(),),
        tables=(TableRef(inner_name, inner_alias),),
        where=conjoin(inner_parts),
    )
    projection = rng.sample(
        outer_schema.column_names,
        rng.randint(1, len(outer_schema.column_names)),
    )
    return SelectQuery(
        quantifier=Quantifier.DISTINCT if rng.random() < 0.5 else Quantifier.ALL,
        select_list=tuple(
            SelectItem(ColumnRef(outer_alias, name)) for name in projection
        ),
        tables=(TableRef(outer_name, outer_alias),),
        where=Exists(inner),
    )


def random_setop_query(rng, catalog):
    """A set operation over two projection-compatible blocks."""
    names = catalog.table_names()
    left_name, right_name = rng.choice(names), rng.choice(names)
    left_schema, right_schema = catalog.table(left_name), catalog.table(right_name)
    width = min(
        rng.randint(1, 2),
        len(left_schema.column_names),
        len(right_schema.column_names),
    )
    left_columns = rng.sample(left_schema.column_names, width)
    right_columns = rng.sample(right_schema.column_names, width)

    def block(name, alias, columns):
        where = None
        schema = left_schema if name == left_name else right_schema
        if rng.random() < 0.5:
            where = Comparison(
                "=",
                ColumnRef(alias, rng.choice(schema.column_names)),
                Literal(rng.choice((0, 1, 2))),
            )
        return SelectQuery(
            quantifier=Quantifier.ALL,
            select_list=tuple(
                SelectItem(ColumnRef(alias, c)) for c in columns
            ),
            tables=(TableRef(name, alias),),
            where=where,
        )

    kind = rng.choice((SetOpKind.INTERSECT, SetOpKind.EXCEPT))
    return SetOperation(
        kind,
        rng.random() < 0.5,
        block(left_name, "L", left_columns),
        block(right_name, "R", right_columns),
    )


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_relational_optimizer_preserves_plain_queries(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    optimized = Optimizer.for_relational(catalog).optimize(query)
    assert execute(query, database).same_rows(
        execute(optimized.query, database)
    ), optimized.explain()


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_relational_optimizer_preserves_exists_queries(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_exists_query(rng, catalog)
    optimized = Optimizer.for_relational(catalog).optimize(query)
    assert execute(query, database).same_rows(
        execute(optimized.query, database)
    ), optimized.explain()


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_relational_optimizer_preserves_set_operations(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_setop_query(rng, catalog)
    optimized = Optimizer.for_relational(catalog).optimize(query)
    assert execute(query, database).same_rows(
        execute(optimized.query, database)
    ), optimized.explain()


@settings(max_examples=80, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_navigational_optimizer_preserves_joins(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    optimized = Optimizer.for_navigational(catalog).optimize(query)
    assert execute(query, database).same_rows(
        execute(optimized.query, database)
    ), optimized.explain()


@settings(max_examples=60, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_round_trip_fold_then_flatten(seed):
    """Folding a join into EXISTS and flattening it back must both
    preserve results (checked through execution, not syntax)."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    folded = Optimizer.for_navigational(catalog).optimize(query)
    flattened = Optimizer.for_relational(catalog).optimize(folded.query)
    assert execute(query, database).same_rows(
        execute(flattened.query, database)
    )


def random_fk_join_query(rng, catalog):
    """A join between the FK pair of tables, if the catalog has one."""
    for schema in catalog:
        for fk in schema.foreign_keys:
            child, parent = schema.name, fk.ref_table
            fk_col = fk.columns[0]
            ref_col = fk.ref_columns[0] if fk.ref_columns else "C0"
            child_cols = catalog.table(child).column_names
            projection = rng.sample(
                child_cols, rng.randint(1, len(child_cols))
            )
            extra = []
            if rng.random() < 0.5:
                extra.append(
                    Comparison(
                        "=",
                        ColumnRef("C", rng.choice(child_cols)),
                        Literal(rng.choice((0, 1, 2))),
                    )
                )
            where = conjoin(
                [
                    Comparison(
                        "=", ColumnRef("C", fk_col), ColumnRef("P", ref_col)
                    )
                ]
                + extra
            )
            return SelectQuery(
                quantifier=Quantifier.ALL,
                select_list=tuple(
                    SelectItem(ColumnRef("C", name)) for name in projection
                ),
                tables=(TableRef(child, "C"), TableRef(parent, "P")),
                where=where,
            )
    return None


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_join_elimination_preserves_results(seed):
    """Targeted property: FK joins survive elimination unchanged."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    query = random_fk_join_query(rng, catalog)
    if query is None:
        return
    database = random_database(rng, catalog, CONFIG)
    optimized = Optimizer.for_relational(catalog).optimize(query)
    assert execute(query, database).same_rows(
        execute(optimized.query, database)
    ), optimized.explain()


@settings(max_examples=100, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_exists_to_intersect_preserves_results(seed):
    """The §5.3 inverse rule must also be semantics-preserving."""
    from repro.core.rewrite import ExistsToIntersect, RewriteContext

    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_exists_query(rng, catalog)
    outcome = ExistsToIntersect().apply(query, RewriteContext(catalog))
    if outcome is None:
        return
    rewritten, _ = outcome
    assert execute(query, database).same_rows(execute(rewritten, database))


@settings(max_examples=80, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_strategy_selector_preserves_results(seed):
    """Whatever form the cost-based selector picks, results must match."""
    from repro.core import StrategySelector

    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = (
        random_exists_query(rng, catalog)
        if rng.random() < 0.5
        else random_query(rng, catalog, CONFIG)
    )
    choice = StrategySelector(database).choose(query)
    assert execute(query, database).same_rows(
        execute(choice.query, database)
    ), choice.explain()
