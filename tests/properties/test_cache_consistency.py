"""Property tests: the acceleration layers are semantically invisible.

Caches, compiled predicates, and index probes are performance features;
none of them may change a result multiset or an analysis verdict.  Each
property runs the same random workload with a layer on and off and
demands identical answers, including after DDL mutates the catalog a
cache key was built on.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    Catalog,
    clear_all_caches,
    execute,
    execute_planned,
    set_caches_enabled,
    test_uniqueness,
)
from repro.engine import set_compilation_enabled
from repro.errors import ReproError
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _workload(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    return catalog, database, query


@settings(max_examples=75, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_caches_and_indexes_do_not_change_results(seed):
    _, database, query = _workload(seed)

    previous = set_caches_enabled(False)
    try:
        baseline = execute(query, database, use_indexes=False)
        uncached = execute_planned(query, database)
    finally:
        set_caches_enabled(previous)

    clear_all_caches()
    cold = execute_planned(query, database)  # populates the plan cache
    warm = execute_planned(query, database)  # replays the cached plan
    probed = execute(query, database, use_indexes=True)

    assert baseline.multiset() == uncached.multiset()
    assert baseline.multiset() == cold.multiset()
    assert baseline.multiset() == warm.multiset()
    assert baseline.multiset() == probed.multiset()


@settings(max_examples=75, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_compiled_predicates_do_not_change_results(seed):
    _, database, query = _workload(seed)

    previous = set_compilation_enabled(False)
    try:
        interpreted = execute_planned(query, database)
    finally:
        set_compilation_enabled(previous)
    # Same (possibly cached) plan, now with predicate compilation on:
    # the compiled and interpretive row tests must agree.
    compiled = execute_planned(query, database)

    assert interpreted.multiset() == compiled.multiset()


def _verdict(sql, catalog):
    """The uniqueness outcome as comparable data, errors included."""
    try:
        return ("ok", test_uniqueness(sql, catalog).unique)
    except ReproError as exc:
        return ("err", type(exc).__name__)


@settings(max_examples=75, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_uniqueness_cache_is_transparent(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    query = random_query(rng, catalog, CONFIG)

    previous = set_caches_enabled(False)
    try:
        cold = _verdict(query, catalog)
    finally:
        set_caches_enabled(previous)
    miss = _verdict(query, catalog)  # computes and caches
    hit = _verdict(query, catalog)  # served from the cache

    assert cold == miss == hit


KEYED = "CREATE TABLE T (A INT NOT NULL, B INT, PRIMARY KEY (A))"
UNKEYED = "CREATE TABLE T (A INT NOT NULL, B INT)"
PROJECTION = "SELECT A, B FROM T"


def test_ddl_invalidates_cached_uniqueness_verdicts():
    # Identical SQL text, same catalog object, three DDL states: the
    # verdict must track the *current* schema, never a cached one.
    catalog = Catalog.from_ddl(KEYED)
    assert test_uniqueness(PROJECTION, catalog).unique
    assert test_uniqueness(PROJECTION, catalog).unique  # warm hit

    catalog.drop("T")
    catalog.load_ddl(UNKEYED)
    assert not test_uniqueness(PROJECTION, catalog).unique

    catalog.drop("T")
    catalog.load_ddl(KEYED)
    assert test_uniqueness(PROJECTION, catalog).unique
