"""Property-based soundness tests.

The central claim under test: **whenever Algorithm 1 answers YES, the
query provably yields no duplicates** — checked by brute-force execution
on random instances.  Companion properties cover the exact checker and
the FD-based analysis.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    ExactOptions,
    UniquenessOptions,
    check_theorem1,
    test_uniqueness,
)
from repro.engine import execute
from repro.fd import is_duplicate_free_fd
from repro.sql.ast import Quantifier
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_algorithm1_yes_implies_no_duplicates(seed):
    """Soundness of Algorithm 1 against brute-force execution."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)

    verdict = test_uniqueness(query, catalog)
    if not verdict.unique:
        return
    all_version = query.with_quantifier(Quantifier.ALL)
    result = execute(all_version, database)
    assert not result.has_duplicates(), (
        f"Algorithm 1 wrongly said YES\nquery: {query}\n{verdict.explain()}"
    )


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_algorithm1_yes_means_distinct_is_a_noop(seed):
    """If DISTINCT is 'unnecessary', both versions agree as multisets."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)

    if not test_uniqueness(query, catalog).unique:
        return
    with_distinct = execute(query, database)
    without = execute(query.with_quantifier(Quantifier.ALL), database)
    assert with_distinct.same_rows(without)


@settings(max_examples=150, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    paper_strict=st.booleans(),
    conservative=st.booleans(),
    is_null_binding=st.booleans(),
    use_checks=st.booleans(),
)
def test_algorithm1_sound_under_every_option_combination(
    seed, paper_strict, conservative, is_null_binding, use_checks
):
    """Every documented option combination must stay sound."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    options = UniquenessOptions(
        paper_strict=paper_strict,
        treat_is_null_as_binding=is_null_binding,
        disjunction_handling="conservative" if conservative else "paper",
        use_check_constraints=use_checks,
    )
    if not test_uniqueness(query, catalog, options).unique:
        return
    result = execute(query.with_quantifier(Quantifier.ALL), database)
    assert not result.has_duplicates()


@settings(max_examples=120, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fd_analysis_sound(seed):
    """The FD-based duplicate-freeness test must also be sound."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    if not is_duplicate_free_fd(query, catalog):
        return
    result = execute(query.with_quantifier(Quantifier.ALL), database)
    assert not result.has_duplicates()


TINY = GeneratorConfig(max_tables=2, max_columns=2, max_rows=4, domain=(0, 1))


@settings(max_examples=40, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_algorithm1_never_contradicts_exact_checker(seed):
    """Algorithm 1 YES ⇒ the exhaustive Theorem 1 search finds no
    counterexample (on tiny schemas where the search is exhaustive)."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, TINY)
    query = random_query(rng, catalog, TINY)
    if not test_uniqueness(query, catalog).unique:
        return
    exact = check_theorem1(
        query, catalog, ExactOptions(domain_size=2, max_assignments=200_000)
    )
    assert exact.unique is not False, exact.counterexample.describe()


@settings(max_examples=40, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_exact_checker_matches_brute_force_execution(seed):
    """When the exact checker says duplicates are impossible, no random
    instance may produce one."""
    rng = random.Random(seed)
    catalog = random_catalog(rng, TINY)
    query = random_query(rng, catalog, TINY)
    exact = check_theorem1(
        query, catalog, ExactOptions(domain_size=3, max_assignments=200_000)
    )
    if exact.unique is not True:
        return
    for attempt in range(3):
        database = random_database(
            random.Random(seed * 13 + attempt), catalog, TINY
        )
        result = execute(query.with_quantifier(Quantifier.ALL), database)
        assert not result.has_duplicates()
