"""Property tests on the consistent-hash ring.

The routing guarantees the cluster front end relies on:

* determinism — the same (shards, vnodes, seed) ring built in a fresh
  instance (a "process restart") maps every key identically,
* total coverage — every key maps to exactly one live shard, at every
  intermediate membership state of a rebalance,
* minimal movement — adding or removing one shard moves only on the
  order of K/N keys (the consistent-hashing bound, with slack for
  vnode placement variance),
* shard independence — removing a shard never remaps keys between two
  *surviving* shards.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import HashRing
from repro.cluster.ring import canonical_key

COMMON = dict(deadline=None)

keys = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300
)


@settings(max_examples=60, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=1, max_value=9),
    vnodes=st.integers(min_value=8, max_value=128),
    sample=keys,
)
def test_lookup_stable_across_instances(seed, shards, vnodes, sample):
    """Two rings with identical parameters — e.g. before and after a
    front-end restart — route every key to the same shard."""
    first = HashRing(range(shards), vnodes=vnodes, seed=seed)
    second = HashRing(range(shards), vnodes=vnodes, seed=seed)
    for key in sample:
        assert first.lookup(key) == second.lookup(key)


@settings(max_examples=60, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=1, max_value=8),
    sample=keys,
)
def test_every_key_maps_to_exactly_one_live_shard(seed, shards, sample):
    """At every intermediate state of growing the ring shard by shard
    (a rebalance in progress), each key lands on exactly one of the
    shards currently present."""
    ring = HashRing((), seed=seed)
    for shard in range(shards):
        ring.add_shard(shard)
        live = set(range(shard + 1))
        for key in sample:
            owner = ring.lookup(key)
            assert owner in live


@settings(max_examples=40, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=2, max_value=8),
)
def test_adding_one_shard_moves_few_keys(seed, shards):
    """Growing N-1 → N shards moves roughly K/N of K keys; the bound
    here allows 3x slack for vnode placement variance."""
    sample = list(range(1000))
    before = HashRing(range(shards - 1), seed=seed)
    after = HashRing(range(shards - 1), seed=seed)
    after.add_shard(shards - 1)
    moved = sum(
        1 for key in sample if before.lookup(key) != after.lookup(key)
    )
    assert moved <= 3 * len(sample) // shards
    # Every moved key moved TO the new shard, never between survivors.
    for key in sample:
        owner_before = before.lookup(key)
        owner_after = after.lookup(key)
        if owner_before != owner_after:
            assert owner_after == shards - 1


@settings(max_examples=40, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    shards=st.integers(min_value=2, max_value=8),
)
def test_removing_one_shard_only_reassigns_its_keys(seed, shards):
    """Dropping a shard reassigns only the keys it owned; survivors
    keep every key they had (no gratuitous reshuffling)."""
    sample = list(range(1000))
    full = HashRing(range(shards), seed=seed)
    reduced = HashRing(range(shards), seed=seed)
    victim = shards - 1
    reduced.remove_shard(victim)
    for key in sample:
        owner = full.lookup(key)
        if owner != victim:
            assert reduced.lookup(key) == owner
        else:
            assert reduced.lookup(key) != victim


@settings(max_examples=40, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    parts=st.lists(
        st.one_of(st.integers(), st.text(max_size=20)),
        min_size=1,
        max_size=4,
    ),
)
def test_tuple_keys_canonicalize(seed, parts):
    """Tuple and list spellings of the same composite key agree, and
    match the canonical_key string form."""
    ring = HashRing(range(4), seed=seed)
    assert ring.lookup(tuple(parts)) == ring.lookup(list(parts))
    assert ring.lookup(tuple(parts)) == ring.lookup(canonical_key(parts))


def test_balance_is_reasonable():
    """No shard owns a wildly disproportionate share (smoke bound: at
    default vnodes, every shard gets between a third and triple its
    fair share of 4000 keys across 4 shards)."""
    ring = HashRing(range(4), seed=0)
    counts = {shard: 0 for shard in range(4)}
    for key in range(4000):
        counts[ring.lookup(key)] += 1
    fair = 1000
    for shard, count in counts.items():
        assert fair // 3 <= count <= fair * 3, counts
