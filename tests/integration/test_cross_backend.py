"""Cross-backend consistency: the same logical query must produce the
same rows on the relational engine (both execution paths), the IMS
gateway, and — for the navigation strategies — the object store."""

import pytest

from repro.engine import PlannerOptions, execute, execute_planned
from repro.ims import GatewayStats, ImsGateway
from repro.oodb import ObjectStats, forward_join, selective_exists
from repro.workloads import (
    SupplierScale,
    build_database,
    build_ims_database,
    build_object_store,
    generate,
)


@pytest.fixture(scope="module")
def world():
    data = generate(SupplierScale(suppliers=15, parts_per_supplier=4))
    return {
        "data": data,
        "rel": build_database(data),
        "ims": ImsGateway(build_ims_database(data)),
        "oo": build_object_store(data),
    }


GATEWAY_QUERIES = [
    ("SELECT SNO, SNAME, SCITY FROM SUPPLIER", None),
    ("SELECT SNO, SNAME FROM SUPPLIER WHERE SCITY = 'Chicago'", None),
    (
        "SELECT S.SNO, P.PNO, P.COLOR FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO",
        None,
    ),
    (
        "SELECT S.SNO FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.COLOR = 'BLUE'",
        None,
    ),
    (
        "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
        "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :N)",
        {"N": 1},
    ),
    ("SELECT SNO, PNO FROM PARTS WHERE COLOR = 'RED'", None),
    (
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        None,
    ),
]


@pytest.mark.parametrize("sql,params", GATEWAY_QUERIES)
def test_gateway_equals_relational(world, sql, params):
    relational = execute(sql, world["rel"], params=params)
    hierarchical = world["ims"].execute(sql, params=params)
    assert relational.same_rows(hierarchical)


@pytest.mark.parametrize("sql,params", GATEWAY_QUERIES)
def test_planned_equals_interpreted(world, sql, params):
    for join_method in ("hash", "merge", "nested"):
        planned = execute_planned(
            sql,
            world["rel"],
            params=params,
            options=PlannerOptions(join_method=join_method),
        )
        assert execute(sql, world["rel"], params=params).same_rows(planned)


def test_oo_navigation_equals_relational_join(world):
    sql = (
        "SELECT S.SNO FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO BETWEEN 5 AND 9 AND S.SNO = P.SNO AND P.PNO = 2"
    )
    relational = sorted(
        row[0] for row in execute(sql, world["rel"]).rows
    )

    store = world["oo"]
    store.stats = ObjectStats()
    forward = forward_join(
        store, "PARTS", "PNO", 2, "SUPPLIER",
        lambda s: 5 <= s.get("SNO") <= 9,
    )
    assert sorted(o.get("SNO") for o in forward) == relational

    rewritten = selective_exists(
        store, "SUPPLIER", "SNO", 5, 9, "PARTS", "PNO", 2, "SUPPLIER"
    )
    assert sorted(o.get("SNO") for o in rewritten) == relational
