"""End-to-end validation of every worked example in the paper.

For each example: run the original query, optimize it, run the rewritten
query, and assert (a) the results are multiset-identical and (b) the
expected rule fired with the paper's stated outcome.
"""

import pytest

from repro import Stats, execute, optimize
from repro.core import Optimizer
from repro.workloads import PAPER_QUERIES, paper_query


@pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: f"ex{q.example}")
def test_rewrite_preserves_results(query, small_db):
    original = execute(query.sql, small_db, params=query.params)
    optimized = optimize(query.sql, small_db.catalog)
    rewritten = execute(optimized.query, small_db, params=query.params)
    assert original.same_rows(rewritten), optimized.explain()


@pytest.mark.parametrize(
    "query",
    [q for q in PAPER_QUERIES if q.rewrite_rule == "distinct-elimination"],
    ids=lambda q: f"ex{q.example}",
)
def test_distinct_elimination_fires(query, small_db):
    optimized = optimize(query.sql, small_db.catalog)
    assert "distinct-elimination" in [step.rule for step in optimized.steps]
    assert not optimized.query.distinct


def test_example2_distinct_survives(small_db):
    query = paper_query("2")
    optimized = optimize(query.sql, small_db.catalog)
    assert optimized.query.distinct


def test_example2_duplicates_are_real(small_db):
    """The paper's motivation: without DISTINCT Example 2 really does
    produce duplicates on data with shared supplier names."""
    query = paper_query("2")
    without = execute(query.sql.replace("DISTINCT", "ALL"), small_db)
    with_distinct = execute(query.sql, small_db)
    assert without.has_duplicates()
    assert not with_distinct.has_duplicates()


def test_example7_flattens_to_join(small_db):
    query = paper_query("7")
    optimized = optimize(query.sql, small_db.catalog)
    assert [step.rule for step in optimized.steps] == ["subquery-to-join"]
    assert "EXISTS" not in optimized.sql


def test_example8_produces_paper_form(small_db):
    query = paper_query("8")
    optimized = optimize(query.sql, small_db.catalog)
    assert optimized.sql == (
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
        "WHERE P.SNO = S.SNO AND P.COLOR = 'RED'"
    )


def test_example9_chains_to_distinct_join(small_db):
    query = paper_query("9")
    optimized = optimize(query.sql, small_db.catalog)
    rules = [step.rule for step in optimized.steps]
    assert rules == ["intersect-to-exists", "subquery-to-join"]


def test_examples_10_and_11_fold_for_navigational(small_db):
    optimizer = Optimizer.for_navigational(small_db.catalog)
    for example in ("10", "11"):
        query = paper_query(example)
        optimized = optimizer.optimize(query.sql)
        assert "join-to-subquery" in [step.rule for step in optimized.steps]
        original = execute(query.sql, small_db, params=query.params)
        rewritten = execute(
            optimized.query, small_db, params=query.params
        )
        assert original.same_rows(rewritten)


def test_distinct_removal_skips_the_sort(small_db):
    """The point of the whole exercise: the rewritten query does no
    duplicate-elimination work."""
    query = paper_query("1")
    with_stats, without_stats = Stats(), Stats()
    execute(query.sql, small_db, stats=with_stats)
    optimized = optimize(query.sql, small_db.catalog)
    execute(optimized.query, small_db, stats=without_stats)
    assert with_stats.sorts == 1
    assert without_stats.sorts == 0
    assert with_stats.sort_rows > 0
