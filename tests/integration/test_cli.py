"""Command-line interface."""

import pytest

from repro.cli import main


EX1 = (
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


class TestCheck:
    def test_yes_exit_code_zero(self, capsys):
        code = main(["check", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "YES" in out

    def test_no_exit_code_one(self, capsys):
        code = main(["check", "SELECT DISTINCT SNAME FROM SUPPLIER"])
        assert code == 1
        assert "decision: NO" in capsys.readouterr().out

    def test_custom_schema_file(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE T (A INT, PRIMARY KEY (A))")
        code = main(
            ["check", "--schema", str(schema), "SELECT DISTINCT A FROM T"]
        )
        assert code == 0

    def test_check_constraint_flag(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text(
            "CREATE TABLE T (A INT, B INT NOT NULL, PRIMARY KEY (A), "
            "CHECK (B = 1));"
            "CREATE TABLE U (B INT NOT NULL, C INT, PRIMARY KEY (B))"
        )
        sql = "SELECT DISTINCT U.C FROM T, U WHERE T.A = T.B AND T.B = U.B"
        assert main(["check", "--schema", str(schema), sql]) == 1
        assert (
            main(
                ["check", "--schema", str(schema),
                 "--use-check-constraints", sql]
            )
            == 0
        )


class TestOptimize:
    def test_relational_profile(self, capsys):
        code = main(["optimize", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct-elimination" in out
        assert "SELECT S.SNO" in out

    def test_navigational_profile(self, capsys):
        code = main(
            [
                "optimize",
                "--profile",
                "navigational",
                "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
                "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "join-to-subquery" in out
        assert "EXISTS" in out


class TestRun:
    def test_demo_database(self, capsys):
        code = main(["run", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "row(s);" in out
        assert "distinct-elimination" in out

    def test_no_optimize_flag(self, capsys):
        code = main(["run", "--no-optimize", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct-elimination" not in out

    def test_plan_flag(self, capsys):
        code = main(["run", "--plan", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "physical plan:" in out
        assert "HashJoin" in out

    def test_script_and_params(self, tmp_path, capsys):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (A INT, B VARCHAR(5), PRIMARY KEY (A));"
            "INSERT INTO T VALUES (1, 'x'), (2, 'y');"
        )
        code = main(
            [
                "run",
                "--script",
                str(script),
                "--param",
                "WANTED=2",
                "SELECT A, B FROM T WHERE A = :WANTED",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "'y'" in out and "1 row(s)" in out

    def test_param_types(self, tmp_path, capsys):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (A INT, PRIMARY KEY (A)); INSERT INTO T VALUES (1);"
        )
        code = main(
            ["run", "--script", str(script), "--param", "X=NULL",
             "SELECT A FROM T WHERE A = :X"]
        )
        assert code == 0
        assert "0 row(s)" in capsys.readouterr().out

    def test_malformed_param_is_an_error(self, capsys):
        code = main(["run", "--param", "oops", "SELECT SNO FROM SUPPLIER"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDemo:
    def test_walks_all_examples(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Example 1:" in out
        assert "Example 11:" in out
        assert "join-to-subquery" in out
