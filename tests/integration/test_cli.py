"""Command-line interface."""

import json

import pytest

from repro.cli import main
from repro.observe import tracing_enabled


EX1 = (
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


class TestCheck:
    def test_yes_exit_code_zero(self, capsys):
        code = main(["check", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "YES" in out

    def test_no_exit_code_one(self, capsys):
        code = main(["check", "SELECT DISTINCT SNAME FROM SUPPLIER"])
        assert code == 1
        assert "decision: NO" in capsys.readouterr().out

    def test_custom_schema_file(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE T (A INT, PRIMARY KEY (A))")
        code = main(
            ["check", "--schema", str(schema), "SELECT DISTINCT A FROM T"]
        )
        assert code == 0

    def test_check_constraint_flag(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text(
            "CREATE TABLE T (A INT, B INT NOT NULL, PRIMARY KEY (A), "
            "CHECK (B = 1));"
            "CREATE TABLE U (B INT NOT NULL, C INT, PRIMARY KEY (B))"
        )
        sql = "SELECT DISTINCT U.C FROM T, U WHERE T.A = T.B AND T.B = U.B"
        assert main(["check", "--schema", str(schema), sql]) == 1
        assert (
            main(
                ["check", "--schema", str(schema),
                 "--use-check-constraints", sql]
            )
            == 0
        )


class TestOptimize:
    def test_relational_profile(self, capsys):
        code = main(["optimize", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct-elimination" in out
        assert "SELECT S.SNO" in out

    def test_navigational_profile(self, capsys):
        code = main(
            [
                "optimize",
                "--profile",
                "navigational",
                "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
                "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "join-to-subquery" in out
        assert "EXISTS" in out


class TestRun:
    def test_demo_database(self, capsys):
        code = main(["run", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "row(s);" in out
        assert "distinct-elimination" in out

    def test_no_optimize_flag(self, capsys):
        code = main(["run", "--no-optimize", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct-elimination" not in out

    def test_plan_flag(self, capsys):
        code = main(["run", "--plan", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "physical plan:" in out
        assert "HashJoin" in out

    def test_script_and_params(self, tmp_path, capsys):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (A INT, B VARCHAR(5), PRIMARY KEY (A));"
            "INSERT INTO T VALUES (1, 'x'), (2, 'y');"
        )
        code = main(
            [
                "run",
                "--script",
                str(script),
                "--param",
                "WANTED=2",
                "SELECT A, B FROM T WHERE A = :WANTED",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "'y'" in out and "1 row(s)" in out

    def test_param_types(self, tmp_path, capsys):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (A INT, PRIMARY KEY (A)); INSERT INTO T VALUES (1);"
        )
        code = main(
            ["run", "--script", str(script), "--param", "X=NULL",
             "SELECT A FROM T WHERE A = :X"]
        )
        assert code == 0
        assert "0 row(s)" in capsys.readouterr().out

    def test_malformed_param_is_an_error(self, capsys):
        code = main(["run", "--param", "oops", "SELECT SNO FROM SUPPLIER"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_run_analyze_annotates_the_plan_and_prints_the_audit(
        self, capsys
    ):
        code = main(["run", "--analyze", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN ANALYZE:" in out
        assert "actual rows=" in out and "q-error=" in out
        assert "rewrite audit:" in out
        assert "Theorem 1" in out

    def test_run_trace_prints_the_span_tree_and_restores_state(
        self, capsys
    ):
        code = main(["run", "--trace", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        assert "query.execute_planned" in out
        assert "plan.execute" in out
        assert not tracing_enabled()  # the flag never leaks process-wide

    def test_run_json_emits_one_machine_readable_object(self, capsys):
        code = main(["run", "--json", "--analyze", "--trace", EX1])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["rewritten"] is True
        assert payload["rules"] == ["distinct-elimination"]
        assert payload["row_count"] == len(payload["rows"])
        assert payload["stats"]["rows_scanned"] > 0
        assert payload["plan"]["plan"]["loops"] == 1
        assert payload["audit"][0]["theorem"] == "Theorem 1"
        assert payload["trace"]  # spans were collected

    def test_run_json_encodes_null_values_as_null(self, tmp_path, capsys):
        script = tmp_path / "db.sql"
        script.write_text(
            "CREATE TABLE T (A INT, B INT, PRIMARY KEY (A));"
            "INSERT INTO T VALUES (1, NULL);"
        )
        code = main(
            ["run", "--json", "--script", str(script), "SELECT A, B FROM T"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["rows"] == [[1, None]]

    def test_run_metrics_out_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        code = main(["run", "--metrics-out", str(path), EX1])
        assert code == 0
        text = path.read_text()
        assert "# TYPE repro_engine_rows_scanned_total counter" in text
        assert "repro_queries_rewritten_total 1" in text
        assert 'rule="distinct-elimination"' in text
        assert str(path) in capsys.readouterr().err

    def test_run_metrics_out_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["run", "--metrics-out", str(path), EX1]) == 0
        payload = json.loads(path.read_text())
        assert payload["namespace"] == "repro"
        names = {entry["name"] for entry in payload["metrics"]}
        assert "repro_queries_total" in names

    def test_check_json_reports_verdict_and_witness(self, capsys):
        code = main(["check", "--json", EX1])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["unique"] is True
        assert payload["witness"]["projection"]

        code = main(["check", "--json", "SELECT DISTINCT SNAME FROM SUPPLIER"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["unique"] is False
        assert payload["witness"]["terms"][0]["keys_missing_for"] == [
            "SUPPLIER"
        ]

    def test_optimize_prints_the_proof_sketch(self, capsys):
        assert main(["optimize", EX1]) == 0
        out = capsys.readouterr().out
        assert "proof sketch:" in out
        assert "[FIRED] Theorem 1" in out


class TestExplain:
    def test_explain_shows_rewrite_plan_and_audit(self, capsys):
        code = main(["explain", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "rewritten via distinct-elimination" in out
        assert "physical plan:" in out
        assert "HashJoin" in out
        assert "rewrite audit:" in out
        assert "[FIRED] Theorem 1" in out

    def test_explain_analyze_executes_once_instrumented(self, capsys):
        code = main(["explain", "--analyze", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN ANALYZE:" in out
        assert "actual rows=" in out
        assert "| " not in out  # no result table: explain prints no rows

    def test_explain_navigational_profile_with_params(self, capsys):
        code = main(
            [
                "explain",
                "--profile",
                "navigational",
                "--param",
                "PARTNO=3",
                "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
                "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rewritten via join-to-subquery" in out
        assert "Theorem 2 (reversed)" in out

    def test_explain_json(self, capsys):
        code = main(["explain", "--json", "--analyze", EX1])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["rules"] == ["distinct-elimination"]
        assert payload["plan"]["plan"]["actual_rows"] >= 0
        assert payload["audit"][0]["decision"] == "fired"

    def test_explain_no_optimize_skips_the_audit(self, capsys):
        code = main(["explain", "--no-optimize", EX1])
        out = capsys.readouterr().out
        assert code == 0
        assert "rewrite audit:" not in out
        assert "Distinct" in out  # the DISTINCT survives unrewritten


class TestDemo:
    def test_walks_all_examples(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Example 1:" in out
        assert "Example 11:" in out
        assert "join-to-subquery" in out
