"""Writes invalidate precisely — and rolled-back writes invalidate nothing.

Two regression families for the scoped-invalidation tentpole:

* **Precision** — a committed write to table A must not evict table
  B's plan-cache entries, statistics, or adaptive corrections (the
  stale-fingerprint footgun this PR fixes: every cache used to key on
  the whole-database fingerprint, so any write anywhere evicted
  everything).
* **Read-path identity** — E1–E11 answers are byte-identical before
  and after a write storm that rolls back, under both the tuple and
  vectorized engines: MVCC buffering means an aborted transaction is
  observationally free.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.database import Database
from repro.engine.plan_cache import PlanCache
from repro.engine.planner import execute_planned
from repro.options import ExecutionOptions
from repro.stats.adaptive import (
    GLOBAL_CORRECTIONS,
    plan_fingerprint,
    plan_tables,
    scoped_db_fingerprint,
)
from repro.stats.collect import ensure_statistics
from repro.workloads import SupplierScale, build_database, generate
from repro.workloads.queries import PAPER_QUERIES

SCRIPT = """
CREATE TABLE A (X INT NOT NULL, Y INT, PRIMARY KEY (X));
CREATE TABLE B (X INT NOT NULL, Y INT, PRIMARY KEY (X));
INSERT INTO A VALUES (1, 10), (2, 20), (3, 30);
INSERT INTO B VALUES (1, 100), (2, 200), (3, 300);
"""


@pytest.fixture()
def db() -> Database:
    return Database.from_script(SCRIPT)


class TestScopedPlanCache:
    def test_write_to_a_keeps_bs_plan(self, db):
        cache = PlanCache()
        sql_b = "SELECT Y FROM B WHERE X = 2"
        execute_planned(sql_b, db, plan_cache=cache)
        execute_planned(sql_b, db, plan_cache=cache)
        assert cache.hits == 1
        conn = repro.connect(db)
        conn.execute("INSERT INTO A VALUES (4, 40)")
        execute_planned(sql_b, db, plan_cache=cache)
        assert cache.hits == 2  # B's entry survived the write to A

    def test_write_to_a_evicts_as_plan(self, db):
        cache = PlanCache()
        sql_a = "SELECT Y FROM A WHERE X = 2"
        execute_planned(sql_a, db, plan_cache=cache)
        misses = cache.misses
        repro.connect(db).execute("INSERT INTO A VALUES (4, 40)")
        execute_planned(sql_a, db, plan_cache=cache)
        assert cache.misses == misses + 1  # stale plan was not reused


class TestScopedStatistics:
    def test_write_to_a_keeps_bs_statistics(self, db):
        before = ensure_statistics(db)
        repro.connect(db).execute("DELETE FROM A WHERE X = 3")
        after = ensure_statistics(db)
        assert after is not before  # A was stale: a new catalog exists
        # ...but B's stats carried over by reference, unscanned.
        assert after.table("B") is before.table("B")
        assert after.table("A") is not before.table("A")
        assert after.table("A").row_count == 2
        assert after.fresh_for(db)

    def test_rolled_back_write_keeps_catalog_fresh(self, db):
        catalog = ensure_statistics(db)
        conn = repro.connect(db)
        conn.begin()
        conn.execute("DELETE FROM A")
        conn.rollback()
        assert catalog.fresh_for(db)
        assert ensure_statistics(db) is catalog


class TestScopedCorrections:
    def test_write_to_a_keeps_bs_corrections(self, db):
        conn = repro.connect(db)
        # Seed a correction for a B-only plan shape.
        cursor = conn.execute(
            "SELECT Y FROM B WHERE Y > 150",
            analyze=True,
            adaptive=True,
            stats=True,
        )
        plan = cursor.executed.outcome.analysis.plan
        key = scoped_db_fingerprint(db, plan_tables(plan))
        node = plan_fingerprint(plan)
        assert GLOBAL_CORRECTIONS.lookup(key, node) is not None
        conn.execute("INSERT INTO A VALUES (4, 40)")
        # The same key still resolves: the write to A moved neither the
        # schema fingerprint nor B's data version.
        assert scoped_db_fingerprint(db, plan_tables(plan)) == key
        assert GLOBAL_CORRECTIONS.lookup(key, node) is not None

    def test_write_to_b_orphans_bs_corrections(self, db):
        conn = repro.connect(db)
        cursor = conn.execute(
            "SELECT Y FROM B WHERE Y > 150",
            analyze=True,
            adaptive=True,
            stats=True,
        )
        plan = cursor.executed.outcome.analysis.plan
        key = scoped_db_fingerprint(db, plan_tables(plan))
        conn.execute("DELETE FROM B WHERE X = 1")
        assert scoped_db_fingerprint(db, plan_tables(plan)) != key


class TestByteIdentityAroundRolledBackWrites:
    @pytest.fixture(scope="class")
    def write_db(self):
        return build_database(
            generate(
                SupplierScale(
                    suppliers=12, parts_per_supplier=4, agents_per_supplier=2
                )
            )
        )

    @pytest.mark.parametrize("engine_mode", ["tuple", "vectorized"])
    def test_e1_to_e11_identical_after_aborted_storm(
        self, write_db, engine_mode
    ):
        options = ExecutionOptions.create(engine_mode=engine_mode)
        conn = repro.connect(write_db, options=options)

        def answers():
            out = {}
            for query in PAPER_QUERIES:
                cursor = conn.execute(query.sql, query.params or None)
                out[query.example] = repr(cursor.fetchall())
            return out

        before = answers()
        conn.begin()
        # The storm: touch every table, every DML verb, then abort.
        conn.execute("DELETE FROM PARTS WHERE COLOR = 'RED'")
        conn.execute("UPDATE SUPPLIER SET BUDGET = 1 WHERE SNO > 3")
        conn.execute("INSERT INTO SUPPLIER VALUES (450, 'Storm', 'Toronto', 1, 'Active')")
        conn.execute("INSERT INTO PARTS VALUES (450, 1, 'storm-part', 99999, 'RED')")
        conn.execute("DELETE FROM AGENTS")
        # Inside the transaction the writes are visible...
        assert conn.execute("SELECT ANO FROM AGENTS").rowcount == 0
        conn.rollback()
        # ...after the rollback the world is byte-identical.
        assert answers() == before
