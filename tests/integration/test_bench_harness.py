"""The benchmark reporting harness."""

import pytest

from repro.bench import ExperimentReport, geometric_sweep, speedup, timed


class TestExperimentReport:
    def make(self):
        return ExperimentReport(
            experiment="X", claim="c", columns=["a", "bee"]
        )

    def test_render_aligns_columns(self):
        report = self.make()
        report.add_row(1, "long-value")
        report.add_row(22, "v")
        text = report.render()
        lines = text.splitlines()
        assert lines[0] == "== X =="
        assert lines[1] == "claim: c"
        header, rule, first, second = lines[2:6]
        assert header.index("|") == rule.index("+") == first.index("|")

    def test_row_arity_checked(self):
        report = self.make()
        with pytest.raises(ValueError):
            report.add_row(1)

    def test_floats_formatted_compactly(self):
        report = self.make()
        report.add_row(0.123456789, 2)
        assert "0.1235" in report.render()

    def test_notes_rendered(self):
        report = self.make()
        report.note("footnote")
        assert "note: footnote" in report.render()

    def test_show_registers_for_replay(self, capsys):
        from repro.bench import RENDERED_REPORTS

        before = len(RENDERED_REPORTS)
        report = self.make()
        report.show()
        assert len(RENDERED_REPORTS) == before + 1
        assert "== X ==" in capsys.readouterr().out
        RENDERED_REPORTS.pop()


class TestHelpers:
    def test_timed_returns_result_and_duration(self):
        result, elapsed = timed(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_geometric_sweep(self):
        assert geometric_sweep(10, 80) == [10, 20, 40, 80]
        assert geometric_sweep(10, 100) == [10, 20, 40, 80, 100]
        assert geometric_sweep(5, 5) == [5]
