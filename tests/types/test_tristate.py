"""Kleene three-valued logic truth tables and interpretations."""

import pytest

from repro.types import FALSE, TRUE, UNKNOWN, Tristate, all3, any3


class TestConnectives:
    def test_and_truth_table(self):
        assert (TRUE & TRUE) is TRUE
        assert (TRUE & FALSE) is FALSE
        assert (TRUE & UNKNOWN) is UNKNOWN
        assert (FALSE & UNKNOWN) is FALSE
        assert (UNKNOWN & UNKNOWN) is UNKNOWN
        assert (FALSE & FALSE) is FALSE

    def test_or_truth_table(self):
        assert (TRUE | FALSE) is TRUE
        assert (TRUE | UNKNOWN) is TRUE
        assert (FALSE | UNKNOWN) is UNKNOWN
        assert (UNKNOWN | UNKNOWN) is UNKNOWN
        assert (FALSE | FALSE) is FALSE

    def test_not_truth_table(self):
        assert ~TRUE is FALSE
        assert ~FALSE is TRUE
        assert ~UNKNOWN is UNKNOWN

    def test_double_negation(self):
        for value in (TRUE, FALSE, UNKNOWN):
            assert ~~value is value

    def test_de_morgan(self):
        values = (TRUE, FALSE, UNKNOWN)
        for a in values:
            for b in values:
                assert ~(a & b) is (~a | ~b)
                assert ~(a | b) is (~a & ~b)


class TestInterpretations:
    def test_false_interpretation(self):
        assert TRUE.false_interpreted()
        assert not UNKNOWN.false_interpreted()
        assert not FALSE.false_interpreted()

    def test_true_interpretation(self):
        assert TRUE.true_interpreted()
        assert UNKNOWN.true_interpreted()
        assert not FALSE.true_interpreted()

    def test_no_implicit_bool(self):
        with pytest.raises(TypeError):
            bool(UNKNOWN)
        with pytest.raises(TypeError):
            if TRUE:  # pragma: no cover
                pass

    def test_of_lifts_optional_bool(self):
        assert Tristate.of(True) is TRUE
        assert Tristate.of(False) is FALSE
        assert Tristate.of(None) is UNKNOWN


class TestAggregates:
    def test_all3_empty_is_true(self):
        assert all3([]) is TRUE

    def test_all3_short_circuits_on_false(self):
        assert all3([TRUE, FALSE, UNKNOWN]) is FALSE

    def test_all3_unknown_dominates_true(self):
        assert all3([TRUE, UNKNOWN, TRUE]) is UNKNOWN

    def test_any3_empty_is_false(self):
        assert any3([]) is FALSE

    def test_any3_true_wins(self):
        assert any3([FALSE, UNKNOWN, TRUE]) is TRUE

    def test_any3_unknown_dominates_false(self):
        assert any3([FALSE, UNKNOWN]) is UNKNOWN
