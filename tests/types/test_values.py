"""NULL semantics, the two equality operators, and canonical ordering."""

from repro.types import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    compare_where,
    distinct_rows,
    eq_equivalent,
    eq_where,
    format_value,
    is_null,
    row_sort_key,
    rows_equivalent,
    sort_key,
)


class TestNull:
    def test_null_is_singleton(self):
        from repro.types.values import _Null

        assert _Null() is NULL

    def test_null_is_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(None) is True or True  # None is not SQL NULL

    def test_none_is_not_sql_null(self):
        assert not is_null(None)


class TestWhereEquality:
    """WHERE semantics: NULL comparisons are UNKNOWN."""

    def test_equal_values(self):
        assert eq_where(1, 1) is TRUE
        assert eq_where("a", "b") is FALSE

    def test_null_operand_is_unknown(self):
        assert eq_where(NULL, 1) is UNKNOWN
        assert eq_where(1, NULL) is UNKNOWN
        assert eq_where(NULL, NULL) is UNKNOWN

    def test_ordering_operators(self):
        assert compare_where("<", 1, 2) is TRUE
        assert compare_where(">=", 2, 2) is TRUE
        assert compare_where(">", 1, 2) is FALSE
        assert compare_where("<>", 1, 2) is TRUE
        assert compare_where("<=", NULL, 2) is UNKNOWN

    def test_incomparable_types_are_unknown(self):
        assert compare_where("<", 1, "a") is UNKNOWN

    def test_numeric_cross_type_comparison(self):
        assert compare_where("=", 1, 1.0) is TRUE
        assert compare_where("<", 1, 1.5) is TRUE


class TestEquivalentEquality:
    """The paper's ≐ operator: NULL matches NULL (DISTINCT semantics)."""

    def test_null_equals_null(self):
        assert eq_equivalent(NULL, NULL)

    def test_null_differs_from_value(self):
        assert not eq_equivalent(NULL, 0)
        assert not eq_equivalent("x", NULL)

    def test_plain_values(self):
        assert eq_equivalent(3, 3)
        assert not eq_equivalent(3, 4)

    def test_rows_equivalent(self):
        assert rows_equivalent((1, NULL), (1, NULL))
        assert not rows_equivalent((1, NULL), (1, 2))
        assert not rows_equivalent((1,), (1, 2))


class TestOrdering:
    def test_null_sorts_first(self):
        values = [3, NULL, 1, "a", NULL]
        ordered = sorted(values, key=sort_key)
        assert is_null(ordered[0]) and is_null(ordered[1])

    def test_mixed_types_have_total_order(self):
        values = ["b", 2, NULL, True, 1.5, "a"]
        ordered = sorted(values, key=sort_key)
        # bool < numeric < str after NULL
        assert is_null(ordered[0])
        assert ordered[1] is True
        assert ordered[2:4] == [1.5, 2]
        assert ordered[4:] == ["a", "b"]

    def test_row_sort_key_is_lexicographic(self):
        assert row_sort_key((1, 2)) < row_sort_key((1, 3))
        assert row_sort_key((NULL, 9)) < row_sort_key((0, 0))


class TestDistinctRows:
    def test_nulls_collapse(self):
        rows = [(1, NULL), (1, NULL), (1, 2)]
        assert distinct_rows(rows) == [(1, NULL), (1, 2)]

    def test_first_seen_order_preserved(self):
        rows = [(2,), (1,), (2,), (3,)]
        assert distinct_rows(rows) == [(2,), (1,), (3,)]


class TestFormatting:
    def test_null_literal(self):
        assert format_value(NULL) == "NULL"

    def test_string_quoting_and_escaping(self):
        assert format_value("it's") == "'it''s'"

    def test_booleans(self):
        assert format_value(True) == "TRUE"
        assert format_value(False) == "FALSE"

    def test_numbers(self):
        assert format_value(42) == "42"
        assert format_value(1.5) == "1.5"
