"""Domain abstraction: membership, sampling, intersection."""

from repro.types import NULL, Domain
from repro.types.domains import DomainMap


class TestMembership:
    def test_open_domain_contains_everything(self):
        domain = Domain()
        assert domain.contains(42)
        assert domain.contains("x")
        assert domain.contains(NULL)

    def test_not_nullable_excludes_null(self):
        assert not Domain(nullable=False).contains(NULL)

    def test_enumeration_membership(self):
        domain = Domain.enumeration(["a", "b"])
        assert domain.contains("a")
        assert not domain.contains("c")

    def test_integer_range_membership(self):
        domain = Domain.integer_range(1, 10)
        assert domain.contains(1)
        assert domain.contains(10)
        assert not domain.contains(0)
        assert not domain.contains(11)

    def test_half_open_bounds(self):
        assert Domain(low=5).contains(1_000_000)
        assert not Domain(low=5).contains(4)
        assert not Domain(high=5).contains(6)


class TestSampling:
    def test_enumeration_sample_respects_limit(self):
        domain = Domain.enumeration([1, 2, 3, 4], nullable=False)
        assert domain.sample(2) == [1, 2]

    def test_nullable_sample_includes_null(self):
        samples = Domain.integer_range(1, 9).sample(2)
        assert samples[-1] is NULL or samples[-1] == NULL

    def test_range_sample_starts_at_low(self):
        assert Domain.integer_range(7, 20, nullable=False).sample(3) == [7, 8, 9]

    def test_open_string_domain_fabricates_values(self):
        samples = Domain(type_name="VARCHAR", nullable=False).sample(2)
        assert samples == ["v0", "v1"]

    def test_open_int_domain_fabricates_values(self):
        samples = Domain(type_name="INT", nullable=False).sample(3)
        assert samples == [0, 1, 2]


class TestIntersection:
    def test_range_intersection(self):
        merged = Domain.integer_range(1, 10).intersect(Domain.integer_range(5, 20))
        assert merged.low == 5 and merged.high == 10

    def test_enumeration_intersection(self):
        left = Domain.enumeration([1, 2, 3])
        right = Domain.enumeration([2, 3, 4])
        assert left.intersect(right).values == (2, 3)

    def test_enumeration_with_range(self):
        merged = Domain.enumeration([1, 5, 50]).intersect(
            Domain.integer_range(1, 10)
        )
        assert merged.values == (1, 5)

    def test_nullability_intersects(self):
        merged = Domain(nullable=True).intersect(Domain(nullable=False))
        assert not merged.nullable

    def test_finiteness(self):
        assert Domain.enumeration([1]).is_finite()
        assert Domain.integer_range(0, 3).is_finite()
        assert not Domain().is_finite()


class TestDomainMap:
    def test_column_default_is_open(self):
        mapping = DomainMap()
        assert mapping.column_domain("R", "X").contains(123)

    def test_narrow_host_var_intersects(self):
        mapping = DomainMap()
        mapping.narrow_host_var("H", Domain.integer_range(1, 10))
        mapping.narrow_host_var("H", Domain.integer_range(5, 20))
        domain = mapping.host_var_domain("H")
        assert domain.low == 5 and domain.high == 10

    def test_set_and_get_column(self):
        mapping = DomainMap()
        mapping.set_column("R", "X", Domain.enumeration([1]))
        assert mapping.column_domain("R", "X").values == (1,)
