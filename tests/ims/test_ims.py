"""IMS simulator: hierarchy, storage, DL/I calls."""

import pytest

from repro.errors import ImsError
from repro.ims import (
    SSA,
    STATUS_END,
    STATUS_NOT_FOUND,
    STATUS_OK,
    Dli,
    ImsDatabase,
    define_hierarchy,
)
from repro.ims.segments import Hierarchy, SegmentType


@pytest.fixture()
def db():
    hierarchy = define_hierarchy(
        "SUPPLIER",
        ["SNO", "SNAME"],
        "SNO",
        [
            ("PARTS", ["PNO", "PNAME", "COLOR"], "PNO"),
            ("AGENT", ["ANO", "ACITY"], "ANO"),
        ],
    )
    database = ImsDatabase(hierarchy)
    for sno in (3, 1, 2):  # out of order on purpose
        root = database.insert_root((sno, f"s{sno}"))
        for pno in (20, 10):
            database.insert_child(root, "PARTS", (pno, f"p{pno}", "RED"))
        database.insert_child(root, "AGENT", (sno * 100, "Ottawa"))
    return database


class TestHierarchyDefinition:
    def test_segment_lookup(self, db):
        assert db.hierarchy.segment_type("parts").name == "PARTS"
        with pytest.raises(ImsError):
            db.hierarchy.segment_type("NOPE")

    def test_key_field_must_exist(self):
        with pytest.raises(ImsError):
            SegmentType("X", ["A"], key_field="B")

    def test_root_must_be_parentless(self):
        root = SegmentType("R", ["K"], "K")
        child = SegmentType("C", ["K"], "K", parent=root)
        with pytest.raises(ImsError):
            Hierarchy(child)

    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(ImsError):
            define_hierarchy("R", ["K"], "K", [("R", ["K"], "K")])


class TestStorage:
    def test_roots_key_sequenced(self, db):
        assert [root.key for root in db.roots] == [1, 2, 3]

    def test_duplicate_root_key_rejected(self, db):
        with pytest.raises(ImsError):
            db.insert_root((1, "dup"))

    def test_twins_key_sequenced(self, db):
        twins = db.roots[0].twins("PARTS")
        assert [twin.key for twin in twins] == [10, 20]

    def test_primary_index_lookup(self, db):
        segment, position = db.find_root(2)
        assert segment is not None and segment.key == 2 and position == 1
        missing, _ = db.find_root(99)
        assert missing is None

    def test_hierarchic_order_is_preorder(self, db):
        names = [s.segment_type.name for s in db.hierarchic_order()]
        assert names[:4] == ["SUPPLIER", "PARTS", "PARTS", "AGENT"]

    def test_segment_count(self, db):
        assert db.segment_count() == 3 * 4
        assert db.segment_count("PARTS") == 6

    def test_segment_accessors(self, db):
        root = db.roots[0]
        assert root.field("SNAME") == "s1"
        assert root.as_dict()["SNO"] == 1


class TestDliCalls:
    def test_gu_by_key_uses_index(self, db):
        dli = Dli(db)
        status, segment = dli.gu(SSA("SUPPLIER", "SNO", "=", 2))
        assert status == STATUS_OK and segment.key == 2
        assert dli.stats.index_lookups == 1
        assert dli.stats.segments_examined["SUPPLIER"] == 0

    def test_gu_missing_key(self, db):
        status, segment = Dli(db).gu(SSA("SUPPLIER", "SNO", "=", 42))
        assert status == STATUS_NOT_FOUND and segment is None

    def test_gu_nonkey_scans(self, db):
        dli = Dli(db)
        status, segment = dli.gu(SSA("SUPPLIER", "SNAME", "=", "s3"))
        assert status == STATUS_OK and segment.key == 3
        assert dli.stats.segments_examined["SUPPLIER"] == 3

    def test_gn_sweeps_roots_then_gb(self, db):
        dli = Dli(db)
        seen = []
        status, segment = dli.gu(SSA("SUPPLIER"))
        while status == STATUS_OK:
            seen.append(segment.key)
            status, segment = dli.gn(SSA("SUPPLIER"))
        assert seen == [1, 2, 3]
        assert status == STATUS_END

    def test_gnp_requires_parentage(self, db):
        with pytest.raises(ImsError):
            Dli(db).gnp(SSA("PARTS"))

    def test_gnp_iterates_twins(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        keys = []
        status, child = dli.gnp(SSA("PARTS"))
        while status == STATUS_OK:
            keys.append(child.key)
            status, child = dli.gnp(SSA("PARTS"))
        assert keys == [10, 20]

    def test_gnp_key_qualification_halts_early(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        status, child = dli.gnp(SSA("PARTS", "PNO", "=", 10))
        assert status == STATUS_OK and child.key == 10
        # second call stops at key 20 > 10 without scanning further
        status, child = dli.gnp(SSA("PARTS", "PNO", "=", 10))
        assert status == STATUS_NOT_FOUND
        assert dli.stats.segments_examined["PARTS"] == 2

    def test_gnp_nonkey_qualification_scans_all(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        status, child = dli.gnp(SSA("PARTS", "COLOR", "=", "BLUE"))
        assert status == STATUS_NOT_FOUND
        assert dli.stats.segments_examined["PARTS"] == 2

    def test_gnp_resets_with_new_parent(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        dli.gnp(SSA("PARTS"))
        dli.gn(SSA("SUPPLIER"))  # parent is now supplier 2
        status, child = dli.gnp(SSA("PARTS"))
        assert status == STATUS_OK and child.key == 10

    def test_call_counters(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        dli.gnp(SSA("PARTS"))
        dli.gnp(SSA("AGENT"))
        assert dli.stats.calls_to("SUPPLIER", "GU") == 1
        assert dli.stats.calls_to("PARTS") == 1
        assert dli.stats.total_calls() == 3
        assert "GU SUPPLIER=1" in dli.stats.describe()

    def test_gu_on_child_unsupported(self, db):
        with pytest.raises(ImsError):
            Dli(db).gu(SSA("PARTS", "PNO", "=", 10))

    def test_ssa_operators(self, db):
        dli = Dli(db)
        status, segment = dli.gu(SSA("SUPPLIER", "SNO", ">=", 2))
        assert status == STATUS_OK and segment.key == 2
        with pytest.raises(ImsError):
            SSA("SUPPLIER", "SNO", "~", 1).matches(segment)
