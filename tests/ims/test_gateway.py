"""IMS gateway: SQL to DL/I translation and the Example 10 claim."""

import pytest

from repro.errors import MissingHostVariableError, UnsupportedQueryError
from repro.ims import GatewayStats, ImsGateway
from repro.workloads import (
    SupplierScale,
    build_database,
    build_ims_database,
    generate,
)
from repro.engine import execute


@pytest.fixture(scope="module")
def data():
    return generate(SupplierScale(suppliers=10, parts_per_supplier=4))


@pytest.fixture(scope="module")
def gateway(data):
    return ImsGateway(build_ims_database(data))


@pytest.fixture(scope="module")
def rel_db(data):
    return build_database(data)


class TestRelationalView:
    def test_catalog_shapes(self, gateway):
        catalog = gateway.catalog()
        supplier = catalog.table("SUPPLIER")
        parts = catalog.table("PARTS")
        assert supplier.primary_key.columns == ("SNO",)
        assert parts.primary_key.columns == ("SNO", "PNO")
        assert parts.column_names[0] == "SNO"  # virtual column first

    def test_view_columns(self, gateway):
        assert gateway.view_columns("AGENTS")[0] == "SNO"


class TestStrategies:
    def test_root_scan_matches_relational(self, gateway, rel_db):
        sql = "SELECT SNO, SNAME FROM SUPPLIER WHERE SCITY = 'Toronto'"
        assert gateway.execute(sql).same_rows(execute(sql, rel_db))

    def test_join_matches_relational(self, gateway, rel_db):
        sql = (
            "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        )
        assert gateway.execute(sql).same_rows(execute(sql, rel_db))

    def test_exists_matches_relational(self, gateway, rel_db):
        sql = (
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2)"
        )
        assert gateway.execute(sql).same_rows(execute(sql, rel_db))

    def test_child_scan_matches_relational(self, gateway, rel_db):
        sql = "SELECT SNO, PNO FROM PARTS WHERE COLOR = 'RED'"
        assert gateway.execute(sql).same_rows(execute(sql, rel_db))

    def test_distinct_post_processing(self, gateway, rel_db):
        sql = (
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        )
        stats = GatewayStats()
        result = gateway.execute(sql, stats=stats)
        assert result.same_rows(execute(sql, rel_db))
        assert stats.used_post_processing
        assert stats.post_rows_sorted > 0

    def test_residual_predicate_post_filtered(self, gateway, rel_db):
        sql = (
            "SELECT S.SNO FROM SUPPLIER S "
            "WHERE S.SCITY = 'Toronto' AND S.BUDGET > 10"
        )
        stats = GatewayStats()
        result = gateway.execute(sql, stats=stats)
        assert result.same_rows(execute(sql, rel_db))
        assert stats.post_filter_evals > 0


class TestExample10Claim:
    """The nested form halves the DL/I calls against PARTS."""

    def test_gnp_calls_halved(self, gateway, rel_db, data):
        join_sql = (
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
        )
        exists_sql = (
            "SELECT ALL S.* FROM SUPPLIER S WHERE EXISTS "
            "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO)"
        )
        params = {"PARTNO": 2}
        join_stats, exists_stats = GatewayStats(), GatewayStats()
        join_result = gateway.execute(join_sql, params, join_stats)
        exists_result = gateway.execute(exists_sql, params, exists_stats)
        assert join_result.same_rows(exists_result)
        # every supplier has a part 2, so the join strategy issues exactly
        # twice as many GNP calls against PARTS
        suppliers = data.scale.suppliers
        assert join_stats.dli.calls_to("PARTS", "GNP") == 2 * suppliers
        assert exists_stats.dli.calls_to("PARTS", "GNP") == suppliers

    def test_results_match_relational_engine(self, gateway, rel_db):
        sql = (
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
        )
        params = {"PARTNO": 2}
        assert gateway.execute(sql, params).same_rows(
            execute(sql, rel_db, params=params)
        )


class TestUnsupportedShapes:
    def test_two_children_rejected(self, gateway):
        with pytest.raises(UnsupportedQueryError):
            gateway.execute(
                "SELECT P.PNO FROM PARTS P, AGENTS A WHERE P.SNO = A.SNO"
            )

    def test_join_without_parent_key_equality_rejected(self, gateway):
        with pytest.raises(UnsupportedQueryError):
            gateway.execute(
                "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.PNO"
            )

    def test_unknown_table_rejected(self, gateway):
        with pytest.raises(UnsupportedQueryError):
            gateway.execute("SELECT * FROM ELSEWHERE")

    def test_setop_rejected(self, gateway):
        with pytest.raises(UnsupportedQueryError):
            gateway.execute(
                "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM PARTS"
            )

    def test_order_by_post_processed(self, gateway):
        result = gateway.execute(
            "SELECT SNO, SNAME FROM SUPPLIER ORDER BY SNO DESC"
        )
        values = result.column_values("SNO")
        assert values == sorted(values, reverse=True)

    def test_order_by_unprojected_column_rejected(self, gateway):
        with pytest.raises(UnsupportedQueryError):
            gateway.execute("SELECT SNAME FROM SUPPLIER ORDER BY SNO")

    def test_missing_host_variable(self, gateway):
        with pytest.raises(MissingHostVariableError):
            gateway.execute(
                "SELECT SNO FROM SUPPLIER WHERE SNO = :MISSING"
            )

    def test_stats_describe(self, gateway):
        stats = GatewayStats()
        gateway.execute("SELECT SNO FROM SUPPLIER", stats=stats)
        assert "strategy=root scan" in stats.describe()
