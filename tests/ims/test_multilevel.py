"""Multi-level hierarchies: grandchild storage and GNP descent."""

import pytest

from repro.errors import ImsError
from repro.ims import (
    SSA,
    STATUS_NOT_FOUND,
    STATUS_OK,
    Dli,
    ImsDatabase,
)
from repro.ims.segments import Hierarchy, SegmentType


@pytest.fixture()
def db():
    """SUPPLIER -> PARTS -> LOTS, plus AGENT under the root."""
    root = SegmentType("SUPPLIER", ["SNO", "SNAME"], "SNO")
    parts = root.add_child("PARTS", ["PNO", "COLOR"], "PNO")
    parts.add_child("LOTS", ["LNO", "QTY"], "LNO")
    root.add_child("AGENT", ["ANO"], "ANO")
    database = ImsDatabase(Hierarchy(root))

    for sno in (1, 2):
        supplier = database.insert_root((sno, f"s{sno}"))
        for pno in (10, 20):
            part = database.insert_child(supplier, "PARTS", (pno, "RED"))
            for lno in (1, 2, 3):
                database.insert_child(part, "LOTS", (lno, sno * pno * lno))
        database.insert_child(supplier, "AGENT", (sno * 100,))
    return database


class TestStorage:
    def test_three_level_hierarchic_order(self, db):
        names = [s.segment_type.name for s in db.hierarchic_order()]
        # root, then each part followed by its lots, then the agent
        assert names[:9] == [
            "SUPPLIER",
            "PARTS", "LOTS", "LOTS", "LOTS",
            "PARTS", "LOTS", "LOTS", "LOTS",
        ]
        assert names[9] == "AGENT"

    def test_descendants_collects_grandchildren(self, db):
        root = db.roots[0]
        lots = db.descendants(root, "LOTS")
        assert len(lots) == 6
        # hierarchic order: part 10's lots before part 20's
        assert [lot.field("QTY") for lot in lots[:3]] == [10, 20, 30]

    def test_segment_count_by_type(self, db):
        assert db.segment_count("LOTS") == 12
        assert db.segment_count() == 2 * (1 + 2 + 6 + 1)

    def test_is_descendant_of(self, db):
        lots = db.hierarchy.segment_type("LOTS")
        root = db.hierarchy.root
        parts = db.hierarchy.segment_type("PARTS")
        assert lots.is_descendant_of(root)
        assert lots.is_descendant_of(parts)
        assert not parts.is_descendant_of(lots)


class TestGnpDescent:
    def test_gnp_reaches_grandchildren(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        quantities = []
        status, lot = dli.gnp(SSA("LOTS"))
        while status == STATUS_OK:
            quantities.append(lot.field("QTY"))
            status, lot = dli.gnp(SSA("LOTS"))
        assert quantities == [10, 20, 30, 20, 40, 60]

    def test_gnp_grandchild_qualification(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 2))
        status, lot = dli.gnp(SSA("LOTS", "QTY", "=", 120))
        assert status == STATUS_OK and lot.field("LNO") == 3
        status, _ = dli.gnp(SSA("LOTS", "QTY", "=", 120))
        assert status == STATUS_NOT_FOUND

    def test_gnp_within_mid_level_parent(self, db):
        # Establish parentage at a PARTS segment via GNP, then descend.
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        status, part = dli.gnp(SSA("PARTS", "PNO", "=", 20))
        assert status == STATUS_OK
        # GNP parentage here remains the root (set by GU/GN), so LOTS
        # under the whole supplier are visible; resume after part 10's.
        status, lot = dli.gnp(SSA("LOTS"))
        assert status == STATUS_OK

    def test_unrelated_segment_rejected(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        with pytest.raises(ImsError):
            dli.gnp(SSA("NOPE"))

    def test_grandchild_counters(self, db):
        dli = Dli(db)
        dli.gu(SSA("SUPPLIER", "SNO", "=", 1))
        dli.gnp(SSA("LOTS", "QTY", "=", 60))
        assert dli.stats.calls_to("LOTS", "GNP") == 1
        assert dli.stats.segments_examined["LOTS"] == 6
