"""Expression-tree utilities: building, traversal, substitution."""

import pytest

from repro.sql import (
    And,
    Between,
    ColumnRef,
    Comparison,
    HostVar,
    InList,
    Literal,
    Not,
    Or,
    column_refs,
    conjoin,
    conjuncts,
    contains_subquery,
    disjoin,
    disjuncts,
    host_vars,
    parse_condition,
)
from repro.sql.expressions import FALSE_LITERAL, TRUE_LITERAL, Exists


A = ColumnRef("T", "A")
B = ColumnRef("T", "B")
EQ1 = Comparison("=", A, Literal(1))
EQ2 = Comparison("=", B, Literal(2))
EQ3 = Comparison("=", A, B)


class TestBuilders:
    def test_conjoin_flattens_nested_ands(self):
        combined = conjoin([And((EQ1, EQ2)), EQ3])
        assert isinstance(combined, And)
        assert len(combined.operands) == 3

    def test_conjoin_drops_true(self):
        assert conjoin([TRUE_LITERAL, EQ1]) == EQ1

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE_LITERAL

    def test_disjoin_flattens_and_unwraps(self):
        assert disjoin([EQ1]) == EQ1
        combined = disjoin([Or((EQ1, EQ2)), EQ3])
        assert len(combined.operands) == 3

    def test_disjoin_empty_is_false(self):
        assert disjoin([]) == FALSE_LITERAL

    def test_invalid_comparison_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("LIKE", A, Literal("x"))


class TestDecomposition:
    def test_conjuncts_of_nested_and(self):
        expr = parse_condition("A = 1 AND (B = 2 AND C = 3)")
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_disjuncts(self):
        expr = parse_condition("A = 1 OR B = 2 OR C = 3")
        assert len(disjuncts(expr)) == 3

    def test_conjuncts_of_single_atom(self):
        assert conjuncts(EQ1) == [EQ1]


class TestTraversal:
    def test_column_refs_in_order(self):
        expr = parse_condition("T.A = 1 AND S.B = T.C")
        refs = column_refs(expr)
        assert [(r.qualifier, r.column) for r in refs] == [
            ("T", "A"), ("S", "B"), ("T", "C"),
        ]

    def test_host_vars(self):
        expr = parse_condition("A = :X AND B = :Y")
        assert [hv.name for hv in host_vars(expr)] == ["X", "Y"]

    def test_contains_subquery(self):
        assert contains_subquery(
            parse_condition("EXISTS (SELECT * FROM T)")
        )
        assert contains_subquery(
            parse_condition("A = 1 AND X IN (SELECT B FROM T)")
        )
        assert not contains_subquery(parse_condition("A = 1"))


class TestSubstitution:
    def test_replace_column_ref(self):
        expr = And((EQ1, EQ3))
        replaced = expr.replace({A: ColumnRef("U", "A")})
        refs = column_refs(replaced)
        assert all(r.qualifier in ("U", "T") for r in refs)
        assert ColumnRef("U", "A") in refs
        assert B in refs

    def test_replace_whole_node(self):
        expr = And((EQ1, EQ2))
        replaced = expr.replace({EQ1: EQ3})
        assert replaced == And((EQ3, EQ2))

    def test_transform_bottom_up(self):
        expr = Not(Not(EQ1))

        def strip_double_not(node):
            if isinstance(node, Not) and isinstance(node.operand, Not):
                return node.operand.operand
            return None

        assert expr.transform(strip_double_not) == EQ1


class TestNegationAndSugar:
    def test_comparison_negate_flips_operator(self):
        assert Comparison("<", A, B).negate() == Comparison(">=", A, B)
        assert EQ1.negate().op == "<>"

    def test_flipped_swaps_operands(self):
        flipped = Comparison("<", A, B).flipped()
        assert flipped == Comparison(">", B, A)

    def test_not_negate_unwraps(self):
        assert Not(EQ1).negate() == EQ1

    def test_between_expand(self):
        between = Between(A, Literal(1), Literal(9))
        expanded = between.expand()
        assert isinstance(expanded, And)
        assert expanded.operands[0].op == ">="

    def test_in_list_expand(self):
        expr = InList(A, (Literal(1), Literal(2)))
        expanded = expr.expand()
        assert isinstance(expanded, Or)
        assert all(op.op == "=" for op in expanded.operands)

    def test_negated_in_list_expand_wraps_not(self):
        expanded = InList(A, (Literal(1),), negated=True).expand()
        assert isinstance(expanded, Not)

    def test_exists_negate(self):
        exists = Exists(query=object())
        assert exists.negate().negated
