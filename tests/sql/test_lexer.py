"""Lexer behaviour: token kinds, tricky identifiers, errors."""

import pytest

from repro.errors import LexerError
from repro.sql import TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.value == "SELECT" for t in tokens[:-1])
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_upper_cased(self):
        assert values("supplier Parts") == ["SUPPLIER", "PARTS"]

    def test_eof_token_terminates(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_punctuation_and_operators(self):
        assert values("( ) , . * ; = <> <= >= < >") == [
            "(", ")", ",", ".", "*", ";", "=", "<>", "<=", ">=", "<", ">",
        ]

    def test_bang_equals_normalizes(self):
        assert values("a != b") == ["A", "<>", "B"]


class TestIdentifiers:
    def test_hyphenated_identifier(self):
        # The paper's schema has the column OEM-PNO.
        assert values("OEM-PNO") == ["OEM-PNO"]

    def test_hyphen_before_comment_not_swallowed(self):
        assert values("X --comment\n Y") == ["X", "Y"]

    def test_delimited_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "WEIRD NAME"

    def test_underscore_identifier(self):
        assert values("_tmp x_1") == ["_TMP", "X_1"]


class TestLiterals:
    def test_integer_and_float(self):
        tokens = tokenize("42 3.25")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.25 and isinstance(tokens[1].value, float)

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_string_preserves_case(self):
        assert tokenize("'Toronto'")[0].value == "Toronto"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestHostVariables:
    def test_simple_host_var(self):
        tokens = tokenize(":PARTNO")
        assert tokens[0].type is TokenType.HOST_VAR
        assert tokens[0].value == "PARTNO"

    def test_hyphenated_host_var(self):
        assert tokenize(":SUPPLIER-NO")[0].value == "SUPPLIER-NO"

    def test_colon_without_name_raises(self):
        with pytest.raises(LexerError):
            tokenize(": 5")


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert values("a -- rest of line\n b") == ["A", "B"]

    def test_block_comment_skipped(self):
        assert values("a /* anything\n at all */ b") == ["A", "B"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* no end")

    def test_unexpected_character_reports_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
