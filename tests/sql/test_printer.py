"""Printer round-trips: parse → print → parse yields the same AST."""

import pytest

from repro.sql import parse, parse_condition, to_sql

ROUND_TRIP_QUERIES = [
    "SELECT * FROM T",
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
    "SELECT A AS B FROM T WHERE A = 1 AND (B = 2 OR C = 3)",
    "SELECT A FROM T WHERE A BETWEEN 1 AND 10",
    "SELECT A FROM T WHERE A NOT BETWEEN 1 AND 10",
    "SELECT A FROM T WHERE A IN (1, 2, 3)",
    "SELECT A FROM T WHERE A NOT IN ('x', 'y')",
    "SELECT A FROM T WHERE A IS NULL",
    "SELECT A FROM T WHERE A IS NOT NULL",
    "SELECT A FROM T WHERE NOT A = 1",
    "SELECT A FROM T WHERE EXISTS (SELECT * FROM S WHERE S.X = T.A)",
    "SELECT A FROM T WHERE NOT EXISTS (SELECT * FROM S)",
    "SELECT A FROM T WHERE A IN (SELECT B FROM S)",
    "SELECT A FROM T WHERE A = :HOST-VAR",
    "SELECT S.* FROM S, T ORDER BY A DESC",
    "SELECT A FROM R INTERSECT SELECT A FROM S",
    "SELECT A FROM R INTERSECT ALL SELECT A FROM S",
    "SELECT A FROM R EXCEPT ALL SELECT A FROM S",
    "SELECT A FROM R UNION SELECT A FROM S",
    "SELECT A FROM R UNION (SELECT A FROM S INTERSECT SELECT A FROM T)",
    "SELECT A FROM T WHERE A = NULL",
    "CREATE TABLE T (A INT NOT NULL, B VARCHAR(30), PRIMARY KEY (A), "
    "UNIQUE (B), CHECK (A > 0), FOREIGN KEY (B) REFERENCES S (B))",
    "INSERT INTO T VALUES (1, 'it''s', NULL)",
    "INSERT INTO T (A, B) VALUES (1, 2), (3, 4)",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip(sql):
    first = parse(sql)
    printed = to_sql(first)
    second = parse(printed)
    assert first == second, f"round trip changed AST:\n{sql}\n{printed}"


CONDITION_ROUND_TRIPS = [
    "A = 1",
    "A = 1 AND B = 2 AND C = 3",
    "A = 1 OR B = 2",
    "(A = 1 OR B = 2) AND C = 3",
    "NOT (A = 1 AND B = 2)",
    "A <> B",
    "BUDGET <> 0 OR STATUS = 'Inactive'",
]


@pytest.mark.parametrize("text", CONDITION_ROUND_TRIPS)
def test_condition_round_trip(text):
    first = parse_condition(text)
    assert parse_condition(to_sql(first)) == first


def test_or_inside_and_is_parenthesized():
    condition = parse_condition("(A = 1 OR B = 2) AND C = 3")
    assert to_sql(condition) == "(A = 1 OR B = 2) AND C = 3"


def test_and_inside_or_needs_no_parentheses():
    condition = parse_condition("A = 1 AND B = 2 OR C = 3")
    assert to_sql(condition) == "A = 1 AND B = 2 OR C = 3"


def test_distinct_rendered():
    assert to_sql(parse("SELECT DISTINCT A FROM T")).startswith(
        "SELECT DISTINCT"
    )


def test_nested_setop_parenthesized():
    sql = "SELECT A FROM R UNION (SELECT A FROM S EXCEPT SELECT A FROM T)"
    assert parse(to_sql(parse(sql))) == parse(sql)
