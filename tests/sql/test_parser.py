"""Parser behaviour for the SQL2 subset."""

import pytest

from repro.errors import ParseError
from repro.sql import (
    Between,
    CheckClause,
    ColumnRef,
    Comparison,
    CreateTable,
    Exists,
    ForeignKeyClause,
    HostVar,
    InList,
    InSubquery,
    Insert,
    IsNull,
    Literal,
    Not,
    Or,
    PrimaryKeyClause,
    Quantifier,
    SelectQuery,
    SetOpKind,
    SetOperation,
    Star,
    UniqueClause,
    parse,
    parse_condition,
    parse_query,
    parse_script,
)
from repro.types import NULL


class TestSelect:
    def test_minimal_select(self):
        query = parse_query("SELECT * FROM T")
        assert isinstance(query, SelectQuery)
        assert query.quantifier is Quantifier.ALL
        assert isinstance(query.select_list[0], Star)
        assert query.tables[0].name == "T"
        assert query.where is None

    def test_distinct_and_explicit_all(self):
        assert parse_query("SELECT DISTINCT A FROM T").distinct
        assert not parse_query("SELECT ALL A FROM T").distinct

    def test_aliases(self):
        query = parse_query("SELECT S.X AS Y FROM SUPPLIER S, PARTS AS P")
        item = query.select_list[0]
        assert item.alias == "Y"
        assert query.tables[0].alias == "S"
        assert query.tables[1].alias == "P"
        assert query.tables[1].effective_name == "P"

    def test_qualified_star(self):
        query = parse_query("SELECT S.*, P.X FROM S, P")
        star = query.select_list[0]
        assert isinstance(star, Star) and star.qualifier == "S"

    def test_order_by(self):
        query = parse_query("SELECT A, B FROM T ORDER BY A DESC, B")
        assert not query.order_by[0].ascending
        assert query.order_by[1].ascending

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM T extra garbage (")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT A WHERE A = 1")


class TestConditions:
    def test_and_or_precedence(self):
        condition = parse_condition("A = 1 OR B = 2 AND C = 3")
        assert isinstance(condition, Or)
        # AND binds tighter: the OR's second operand is the conjunction.
        assert len(condition.operands) == 2

    def test_parentheses_override(self):
        condition = parse_condition("(A = 1 OR B = 2) AND C = 3")
        from repro.sql import And

        assert isinstance(condition, And)

    def test_not(self):
        condition = parse_condition("NOT A = 1")
        assert isinstance(condition, Not)

    def test_between(self):
        condition = parse_condition("SNO BETWEEN 1 AND 499")
        assert isinstance(condition, Between)
        assert condition.low == Literal(1)
        assert condition.high == Literal(499)

    def test_not_between(self):
        assert parse_condition("X NOT BETWEEN 1 AND 2").negated

    def test_in_list(self):
        condition = parse_condition("SCITY IN ('Chicago', 'New York')")
        assert isinstance(condition, InList)
        assert len(condition.items) == 2

    def test_in_subquery(self):
        condition = parse_condition("SNO IN (SELECT SNO FROM PARTS)")
        assert isinstance(condition, InSubquery)

    def test_not_in(self):
        assert parse_condition("X NOT IN (1, 2)").negated

    def test_is_null_and_is_not_null(self):
        assert not parse_condition("X IS NULL").negated
        assert parse_condition("X IS NOT NULL").negated

    def test_exists(self):
        condition = parse_condition("EXISTS (SELECT * FROM T)")
        assert isinstance(condition, Exists) and not condition.negated

    def test_not_exists(self):
        condition = parse_condition("NOT EXISTS (SELECT * FROM T)")
        assert isinstance(condition, Not)
        assert isinstance(condition.operand, Exists)

    def test_host_variable_comparison(self):
        condition = parse_condition("P.SNO = :SUPPLIER-NO")
        assert isinstance(condition, Comparison)
        assert condition.right == HostVar("SUPPLIER-NO")

    def test_null_literal(self):
        condition = parse_condition("X = NULL")
        assert condition.right == Literal(NULL)

    def test_comparison_requires_operand(self):
        with pytest.raises(ParseError):
            parse_condition("X =")

    def test_bare_column_is_not_a_condition(self):
        with pytest.raises(ParseError):
            parse_condition("X")


class TestSetOperations:
    def test_intersect(self):
        query = parse_query("SELECT A FROM R INTERSECT SELECT A FROM S")
        assert isinstance(query, SetOperation)
        assert query.kind is SetOpKind.INTERSECT
        assert not query.all

    def test_intersect_all(self):
        query = parse_query("SELECT A FROM R INTERSECT ALL SELECT A FROM S")
        assert query.all

    def test_except_and_union(self):
        assert (
            parse_query("SELECT A FROM R EXCEPT SELECT A FROM S").kind
            is SetOpKind.EXCEPT
        )
        assert (
            parse_query("SELECT A FROM R UNION ALL SELECT A FROM S").kind
            is SetOpKind.UNION
        )

    def test_intersect_binds_tighter_than_union(self):
        query = parse_query(
            "SELECT A FROM R UNION SELECT A FROM S INTERSECT SELECT A FROM T"
        )
        assert query.kind is SetOpKind.UNION
        assert isinstance(query.right, SetOperation)
        assert query.right.kind is SetOpKind.INTERSECT

    def test_left_associativity(self):
        query = parse_query(
            "SELECT A FROM R EXCEPT SELECT A FROM S EXCEPT SELECT A FROM T"
        )
        assert isinstance(query.left, SetOperation)

    def test_parenthesized_query_expression(self):
        query = parse_query(
            "SELECT A FROM R EXCEPT (SELECT A FROM S UNION SELECT A FROM T)"
        )
        assert isinstance(query.right, SetOperation)
        assert query.right.kind is SetOpKind.UNION


class TestDdl:
    def test_create_table_with_constraints(self):
        statement = parse(
            """CREATE TABLE PARTS (
                 SNO INT, PNO INT, PNAME VARCHAR(30), OEM-PNO INT,
                 PRIMARY KEY (SNO, PNO),
                 UNIQUE (OEM-PNO),
                 CHECK (SNO BETWEEN 1 AND 499),
                 FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))"""
        )
        assert isinstance(statement, CreateTable)
        assert [c.name for c in statement.columns] == [
            "SNO", "PNO", "PNAME", "OEM-PNO",
        ]
        kinds = [type(c) for c in statement.constraints]
        assert kinds == [
            PrimaryKeyClause, UniqueClause, CheckClause, ForeignKeyClause,
        ]

    def test_inline_column_constraints(self):
        statement = parse(
            "CREATE TABLE T (A INT PRIMARY KEY, B INT NOT NULL, "
            "C INT UNIQUE, D INT CHECK (D > 0))"
        )
        assert statement.columns[0].not_null  # PRIMARY KEY implies NOT NULL
        assert statement.columns[1].not_null
        assert isinstance(statement.constraints[0], PrimaryKeyClause)
        assert isinstance(statement.constraints[1], UniqueClause)
        assert statement.columns[3].check is not None

    def test_varchar_length(self):
        statement = parse("CREATE TABLE T (A VARCHAR(30))")
        assert statement.columns[0].type_name == "VARCHAR"
        assert statement.columns[0].length == 30

    def test_unknown_type_name_allowed(self):
        statement = parse("CREATE TABLE T (A DECIMAL(9))")
        assert statement.columns[0].type_name == "DECIMAL"


class TestInsertAndScripts:
    def test_insert_multiple_rows(self):
        statement = parse("INSERT INTO T VALUES (1, 'a', NULL), (2, 'b', 3)")
        assert isinstance(statement, Insert)
        assert statement.rows[0] == (1, "a", NULL)
        assert statement.columns is None

    def test_insert_with_column_list(self):
        statement = parse("INSERT INTO T (A, B) VALUES (TRUE, FALSE)")
        assert statement.columns == ("A", "B")
        assert statement.rows[0] == (True, False)

    def test_insert_rejects_expression_values(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO T VALUES (A)")

    def test_script_with_semicolons(self):
        statements = parse_script(
            "CREATE TABLE T (A INT); INSERT INTO T VALUES (1);;"
            "SELECT * FROM T"
        )
        assert len(statements) == 3
        assert isinstance(statements[2], SelectQuery)
