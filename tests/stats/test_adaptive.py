"""The adaptive loop: corrections, versioning, q-error convergence."""

import pytest

import repro
from repro.engine import Database
from repro.options import ExecutionOptions
from repro.stats.adaptive import (
    CorrectionStore,
    GLOBAL_CORRECTIONS,
    fold_analysis,
    plan_fingerprint,
)
from repro.workloads import SupplierScale, build_database, generate


@pytest.fixture()
def db():
    database = build_database(
        generate(SupplierScale(suppliers=25, parts_per_supplier=5))
    )
    database.analyze()
    return database


@pytest.fixture(autouse=True)
def _isolated_corrections():
    GLOBAL_CORRECTIONS.clear()
    yield
    GLOBAL_CORRECTIONS.clear()


class TestCorrectionStore:
    def test_first_fold_records_and_bumps_version(self):
        store = CorrectionStore()
        before = store.version
        assert store.fold("db", ("node", ()), 42.0)
        assert store.version == before + 1
        assert store.lookup("db", ("node", ())) == 42.0

    def test_ewma_blend(self):
        store = CorrectionStore(alpha=0.5)
        store.fold("db", ("node", ()), 100.0)
        store.fold("db", ("node", ()), 0.0)
        assert store.lookup("db", ("node", ())) == pytest.approx(50.0)

    def test_settled_observations_do_not_bump_version(self):
        store = CorrectionStore()
        store.fold("db", ("node", ()), 100.0)
        version = store.version
        # Same observation again: blended value does not move.
        assert not store.fold("db", ("node", ()), 100.0)
        assert store.version == version

    def test_keys_scoped_by_database_fingerprint(self):
        store = CorrectionStore()
        store.fold("db-a", ("node", ()), 10.0)
        assert store.lookup("db-b", ("node", ())) is None

    def test_clear(self):
        store = CorrectionStore()
        store.fold("db", ("node", ()), 10.0)
        store.clear()
        assert store.lookup("db", ("node", ())) is None


class TestPlanFingerprint:
    def test_stable_across_plannings(self, db):
        from repro.engine import Planner
        from repro.sql import parse_query

        sql = "SELECT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'"
        first = Planner(db.catalog).plan(parse_query(sql))
        second = Planner(db.catalog).plan(parse_query(sql))
        assert plan_fingerprint(first) == plan_fingerprint(second)

    def test_distinguishes_plan_shapes(self, db):
        from repro.engine import Planner
        from repro.sql import parse_query

        one = Planner(db.catalog).plan(
            parse_query("SELECT SNO FROM SUPPLIER")
        )
        other = Planner(db.catalog).plan(
            parse_query("SELECT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'")
        )
        assert plan_fingerprint(one) != plan_fingerprint(other)


class TestFoldAnalysis:
    def test_folds_executed_nodes(self, db):
        from repro.observe import execute_analyzed

        analyzed = execute_analyzed(
            "SELECT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'", db
        )
        store = CorrectionStore()
        folded = fold_analysis(
            db, analyzed.plan, analyzed.analysis, corrections=store
        )
        assert folded > 0
        # Corrections key on the table-scoped fingerprint so writes to
        # other tables cannot orphan them.
        from repro.stats.adaptive import plan_tables, scoped_db_fingerprint

        observed = store.lookup(
            scoped_db_fingerprint(db, plan_tables(analyzed.plan)),
            plan_fingerprint(analyzed.plan),
        )
        assert observed == float(len(analyzed.result))

    def test_counts_into_stats(self, db):
        from repro.engine import Stats
        from repro.observe import execute_analyzed

        analyzed = execute_analyzed("SELECT SNO FROM SUPPLIER", db)
        stats = Stats()
        fold_analysis(
            db,
            analyzed.plan,
            analyzed.analysis,
            corrections=CorrectionStore(),
            stats=stats,
        )
        assert stats.adaptive_corrections > 0


class TestConvergence:
    # PNAME functionally determines PNO in the generated workload, so
    # the independence assumption underestimates by the distinct count
    # of PNAME — the canonical correlated-predicate misestimate.
    SQL = "SELECT PNAME FROM PARTS WHERE PNAME = 'part-3' AND PNO = 3"

    def test_adaptive_q_error_converges(self, db):
        errors = []
        with repro.Connection.local(db) as connection:
            for _ in range(5):
                cursor = connection.execute(self.SQL, adaptive=True)
                analyzed = cursor.executed.outcome.analysis
                errors.append(analyzed.analysis.max_q_error())
        assert errors[0] > 2.0  # the initial misestimate
        assert errors[-1] <= 2.0  # converged within five runs
        assert all(a >= b for a, b in zip(errors, errors[1:]))  # monotone

    def test_adaptive_folds_corrections(self, db):
        with repro.Connection.local(db) as connection:
            cursor = connection.execute(self.SQL, adaptive=True)
            assert cursor.executed.outcome.stats.adaptive_corrections > 0
            assert len(GLOBAL_CORRECTIONS) > 0

    def test_plan_cache_replans_after_new_corrections(self, db):
        from repro.engine.planner import GLOBAL_PLAN_CACHE

        with repro.Connection.local(db) as connection:
            connection.execute(self.SQL, adaptive=True)
            misses = GLOBAL_PLAN_CACHE.misses
            # New corrections arrived: the next adaptive execution
            # must replan (its cache key embeds the store version).
            connection.execute(self.SQL, adaptive=True)
            assert GLOBAL_PLAN_CACHE.misses > misses


class TestWire:
    def test_stats_and_adaptive_round_trip(self):
        options = ExecutionOptions.create(stats=True, adaptive=True)
        payload = options.to_wire()
        assert payload["stats"] is True
        assert payload["adaptive"] is True
        decoded = ExecutionOptions.from_wire(payload)
        assert decoded.stats and decoded.adaptive

    def test_defaults_stay_off_wire(self):
        assert "stats" not in ExecutionOptions().to_wire()
        assert "adaptive" not in ExecutionOptions().to_wire()
