"""The ANALYZE pass: histograms, distinct counts, staleness."""

import pytest

from repro.engine import Database
from repro.stats import (
    StatisticsCatalog,
    collect_statistics,
    ensure_statistics,
)
from repro.stats.collect import DISTINCT_THRESHOLD, HyperLogLog, _hash64
from repro.stats.histogram import Histogram
from repro.types import NULL


DDL = """
CREATE TABLE T (A INT, B INT, C VARCHAR(10), PRIMARY KEY (A));
INSERT INTO T VALUES (1, 10, 'x');
INSERT INTO T VALUES (2, 10, 'y');
INSERT INTO T VALUES (3, 20, NULL);
INSERT INTO T VALUES (4, 30, 'y');
CREATE TABLE EMPTY_T (E INT, PRIMARY KEY (E));
"""


@pytest.fixture()
def db():
    return Database.from_script(DDL)


class TestCollection:
    def test_row_and_distinct_counts(self, db):
        catalog = collect_statistics(db)
        table = catalog.table("T")
        assert table.row_count == 4
        assert table.column("A").n_distinct == 4
        assert table.column("A").exact_distinct
        assert table.column("B").n_distinct == 3
        assert table.column("C").n_distinct == 2
        assert table.column("C").null_count == 1

    def test_min_max(self, db):
        catalog = collect_statistics(db)
        column = catalog.table("T").column("B")
        assert column.min_value == 10
        assert column.max_value == 30

    def test_empty_table_collects_zeroes(self, db):
        catalog = collect_statistics(db)
        table = catalog.table("EMPTY_T")
        assert table.row_count == 0
        column = table.column("E")
        assert column.n_distinct == 0
        assert column.histogram is None
        assert column.eq_selectivity(1) == 0.0
        assert column.range_selectivity("<", 1) == 0.0
        assert column.null_selectivity() == 0.0

    def test_all_null_column(self):
        db = Database.from_script(
            "CREATE TABLE N (A INT, B INT, PRIMARY KEY (A));"
            "INSERT INTO N VALUES (1, NULL);"
            "INSERT INTO N VALUES (2, NULL);"
        )
        column = collect_statistics(db).table("N").column("B")
        assert column.null_count == 2
        assert column.n_distinct == 0
        assert column.histogram is None
        assert column.eq_selectivity(5) == 0.0
        assert column.null_selectivity() == 1.0

    def test_single_value_column(self):
        db = Database.from_script(
            "CREATE TABLE S (A INT, B INT, PRIMARY KEY (A));"
            + "".join(f"INSERT INTO S VALUES ({i}, 7);" for i in range(5))
        )
        column = collect_statistics(db).table("S").column("B")
        assert column.n_distinct == 1
        assert column.eq_selectivity(7) == 1.0
        assert column.eq_selectivity(8) == 0.0  # outside [min, max]
        assert column.range_selectivity("<", 7) == 0.0
        assert column.range_selectivity("<=", 7) == 1.0

    def test_null_probe_estimates_zero(self, db):
        column = collect_statistics(db).table("T").column("B")
        assert column.eq_selectivity(NULL) == 0.0
        assert column.range_selectivity("<", NULL) == 0.0


class TestHistogram:
    def test_equi_depth_fractions(self):
        histogram = Histogram.build(list(range(1, 101)), buckets=10)
        assert histogram.total == 100
        assert histogram.fraction_at_most(0) == 0.0
        assert histogram.fraction_at_most(100) == 1.0
        # Uniform data: CDF at the median is about one half.
        assert abs(histogram.fraction_at_most(50) - 0.5) < 0.1

    def test_fractions_are_monotone(self):
        histogram = Histogram.build([1, 1, 2, 3, 5, 8, 13, 21], buckets=4)
        fractions = [histogram.fraction_at_most(v) for v in range(0, 25)]
        assert fractions == sorted(fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_single_value_histogram(self):
        histogram = Histogram.build([7] * 10, buckets=4)
        assert histogram.fraction_less(7) == 0.0
        assert histogram.fraction_at_most(7) == 1.0


class TestDistinctEstimation:
    def test_spills_to_hyperloglog_past_threshold(self):
        rows = DISTINCT_THRESHOLD + 500
        db = Database.from_script(
            "CREATE TABLE BIG (A INT, PRIMARY KEY (A));"
        )
        for i in range(rows):
            db.insert("BIG", (i,))
        column = collect_statistics(db).table("BIG").column("A")
        assert not column.exact_distinct
        # HyperLogLog with 2^10 registers: a few percent of error.
        assert abs(column.n_distinct - rows) / rows < 0.1

    def test_hyperloglog_small_range(self):
        hll = HyperLogLog()
        for value in range(100):
            hll.add(_hash64(value))
        assert abs(hll.estimate() - 100) <= 10

    def test_hash_is_type_sensitive(self):
        assert _hash64(1) != _hash64("1")
        assert _hash64(1) == _hash64(1)


class TestCatalogLifecycle:
    def test_fresh_until_mutation(self, db):
        catalog = collect_statistics(db)
        assert catalog.fresh_for(db)
        db.insert("T", (5, 40, "z"))
        assert not catalog.fresh_for(db)

    def test_ensure_statistics_reuses_and_recollects(self, db):
        first = ensure_statistics(db)
        assert ensure_statistics(db) is first
        db.insert("T", (5, 40, "z"))
        second = ensure_statistics(db)
        assert second is not first
        assert second.version > first.version
        assert second.table("T").row_count == 5

    def test_database_analyze_stores_catalog(self, db):
        assert db.statistics is None
        catalog = db.analyze()
        assert isinstance(catalog, StatisticsCatalog)
        assert db.statistics is catalog
