"""Statistics cost model: key bounds, selectivities, cost-based order."""

import pytest

from repro.engine import Database, Planner, PlannerOptions, Stats
from repro.engine.cost import CostModel
from repro.engine.operators import HashJoin, NestedLoopJoin, SeqScan
from repro.sql import parse_query
from repro.stats import StatisticsCostModel, collect_statistics
from repro.stats.adaptive import CorrectionStore, plan_fingerprint
from repro.stats.estimator import estimator_for
from repro.workloads import SupplierScale, build_database, generate


@pytest.fixture()
def db():
    database = build_database(
        generate(SupplierScale(suppliers=25, parts_per_supplier=5))
    )
    database.analyze()
    return database


def model_for(database, **kwargs):
    return StatisticsCostModel(database, database.statistics, **kwargs)


def plan_for(database, sql, **options):
    planner = Planner(
        database.catalog,
        PlannerOptions(**options) if options else None,
        database=database,
    )
    return planner.plan(parse_query(sql))


def nodes_of(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


class TestScanEstimates:
    def test_seq_scan_uses_collected_row_count(self, db):
        plan = plan_for(db, "SELECT SNO FROM SUPPLIER")
        scan = nodes_of(plan, SeqScan)[0]
        assert model_for(db).estimate(scan).rows == 25.0

    def test_filter_selectivity_from_distincts(self, db):
        plan = plan_for(db, "SELECT SNO FROM SUPPLIER WHERE SCITY = 'London'")
        estimate = model_for(db).estimate(plan)
        scity = db.statistics.column("SUPPLIER", "SCITY")
        expected = 25.0 * scity.eq_selectivity("London")
        assert estimate.rows == pytest.approx(expected)

    def test_full_key_probe_estimates_one_row(self, db):
        plan = plan_for(db, "SELECT SNAME FROM SUPPLIER WHERE SNO = 7")
        estimate = model_for(db).estimate(plan)
        assert estimate.rows <= 1.0


class TestKeyBoundJoins:
    def test_key_bound_join_capped_by_other_side(self, db):
        # SUPPLIER.SNO is a candidate key: every PARTS row matches at
        # most one supplier, so the output is exactly |PARTS| (the
        # FK makes the bound tight, not just an upper limit).
        plan = plan_for(
            db, "SELECT PNAME FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO"
        )
        join = nodes_of(plan, HashJoin)[0]
        estimate = model_for(db).estimate(join)
        parts_rows = db.statistics.table("PARTS").row_count
        assert estimate.rows == pytest.approx(float(parts_rows))

    def test_non_key_join_divides_by_larger_ndv(self, db):
        plan = plan_for(
            db,
            "SELECT P.PNAME FROM PARTS P, AGENTS A WHERE P.SNO = A.SNO",
        )
        join = nodes_of(plan, HashJoin)[0]
        estimate = model_for(db).estimate(join)
        parts = db.statistics.table("PARTS").row_count
        agents = db.statistics.table("AGENTS").row_count
        ndv = max(
            db.statistics.column("PARTS", "SNO").n_distinct,
            db.statistics.column("AGENTS", "SNO").n_distinct,
        )
        assert estimate.rows == pytest.approx(parts * agents / ndv)

    def test_estimated_never_exceeds_key_bound(self, db):
        plan = plan_for(
            db, "SELECT PNAME FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO"
        )
        join = nodes_of(plan, HashJoin)[0]
        bound = db.statistics.table("PARTS").row_count
        assert model_for(db).estimate(join).rows <= bound


class TestCorrections:
    def test_correction_overrides_model(self, db):
        plan = plan_for(db, "SELECT SNO FROM SUPPLIER WHERE SCITY = 'London'")
        store = CorrectionStore()
        # The model reads corrections under the table-scoped key.
        from repro.stats.adaptive import plan_tables, scoped_db_fingerprint

        store.fold(
            scoped_db_fingerprint(db, plan_tables(plan)),
            plan_fingerprint(plan),
            3.0,
        )
        corrected = model_for(db, corrections=store).estimate(plan)
        assert corrected.rows == pytest.approx(3.0)
        uncorrected = model_for(db).estimate(plan)
        assert uncorrected.rows != pytest.approx(3.0)

    def test_counters(self, db):
        stats = Stats()
        plan = plan_for(db, "SELECT SNO FROM SUPPLIER")
        model_for(db, stats=stats).estimate(plan)
        assert stats.stats_estimates == 1
        assert stats.estimator_fallbacks == 0


class TestEstimatorSelection:
    def test_heuristic_without_flags(self, db):
        model = estimator_for(db, PlannerOptions())
        assert type(model) is CostModel

    def test_statistics_model_when_fresh(self, db):
        model = estimator_for(db, PlannerOptions(use_stats=True))
        assert isinstance(model, StatisticsCostModel)
        assert model.corrections is None

    def test_adaptive_attaches_global_corrections(self, db):
        model = estimator_for(db, PlannerOptions(adaptive=True))
        assert isinstance(model, StatisticsCostModel)
        assert model.corrections is not None

    def test_stale_catalog_falls_back_and_counts(self, db):
        db.insert("SUPPLIER", (400, "late", "Chicago", 1, "Active"))
        stats = Stats()
        model = estimator_for(db, PlannerOptions(use_stats=True), stats=stats)
        assert type(model) is CostModel
        assert stats.estimator_fallbacks == 1


class TestCostBasedJoinOrder:
    SQL = (
        "SELECT P.PNAME FROM PARTS P, AGENTS A, SUPPLIER S "
        "WHERE P.SNO = S.SNO AND A.SNO = S.SNO AND S.BUDGET > 900"
    )

    def test_rule_order_cross_joins_from_clause(self, db):
        plan = plan_for(db, self.SQL)
        assert nodes_of(plan, NestedLoopJoin)  # PARTS x AGENTS first

    def test_cost_based_order_avoids_cross_join(self, db):
        plan = plan_for(db, self.SQL, use_stats=True)
        assert not nodes_of(plan, NestedLoopJoin)
        assert len(nodes_of(plan, HashJoin)) == 2

    def test_cost_based_plan_is_cheaper(self, db):
        model = model_for(db)
        rule = model.estimate(plan_for(db, self.SQL))
        cost_based = model.estimate(plan_for(db, self.SQL, use_stats=True))
        assert cost_based.cost < rule.cost

    def test_same_results_either_way(self, db):
        from repro.engine import execute_planned

        baseline = execute_planned(self.SQL, db).multiset()
        stats_run = execute_planned(
            self.SQL, db, options=PlannerOptions(use_stats=True)
        ).multiset()
        assert stats_run == baseline

    def test_cost_based_without_statistics_keeps_rule_order(self, db):
        fresh = build_database(
            generate(SupplierScale(suppliers=5, parts_per_supplier=2))
        )
        plan = plan_for(fresh, self.SQL, use_stats=True)
        # No catalog collected: estimator_for falls back to heuristics,
        # and planning still succeeds.
        assert plan is not None
