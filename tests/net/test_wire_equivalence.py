"""Examples 1-11 over HTTP must be byte-identical to direct execution.

The wire adds a JSON codec and a worker handoff between the caller and
the engine; neither may perturb results.  Every paper query runs twice
— through a local :class:`~repro.api.Connection` and through a
:class:`~repro.net.server.QueryServer` — and must produce the same
columns and the same row multiset (≐ semantics, NULLs included), plus
the same rewrite trail, both plain and streamed."""

from __future__ import annotations

import pytest

import repro
from repro.net.server import QueryServer
from repro.workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_database,
    generate,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SCALE = SupplierScale(suppliers=15, parts_per_supplier=4, agents_per_supplier=2)


@pytest.fixture(scope="module")
def db():
    return build_database(generate(SCALE))


@pytest.fixture(scope="module")
def served(db):
    with QueryServer(db, workers=2, stream_chunk_rows=7) as server:
        yield server


@pytest.mark.parametrize(
    "query", PAPER_QUERIES, ids=lambda q: f"E{q.example}"
)
def test_examples_identical_over_http(query, db, served):
    with repro.connect(db) as local_conn:
        local = local_conn.execute(query.sql, query.params or None)
        local_rows = local.fetchall()
        local_executed = local.executed
    with repro.connect(served.url) as remote_conn:
        remote = remote_conn.execute(query.sql, query.params or None)
        remote_rows = remote.fetchall()
        remote_executed = remote.executed

    assert remote.columns == local.columns
    assert sorted(map(repr, remote_rows)) == sorted(map(repr, local_rows))
    assert remote_executed.rewritten == local_executed.rewritten
    assert remote_executed.rules == local_executed.rules
    assert remote_executed.sql == local_executed.sql


@pytest.mark.parametrize(
    "query", PAPER_QUERIES, ids=lambda q: f"E{q.example}"
)
def test_examples_identical_streamed(query, db, served):
    with repro.connect(db) as local_conn:
        local_rows = local_conn.execute(
            query.sql, query.params or None
        ).fetchall()
    with repro.connect(served.url, stream=True) as remote_conn:
        remote_rows = remote_conn.execute(
            query.sql, query.params or None
        ).fetchall()
    assert sorted(map(repr, remote_rows)) == sorted(map(repr, local_rows))
