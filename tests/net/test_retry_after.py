"""Retry-After end to end: the server derives it from the shedding
controller's own queue-wait prediction, and the retrying client honours
it — replacing the backoff schedule, capped, and jittered so a shed
herd does not return in lockstep."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    LoadShedError,
    ServiceOverloadedError,
    TransientNetworkError,
)
from repro.net import protocol
from repro.net.client import HttpBackend
from repro.net.protocol import (
    ERROR_RETRY_AFTER,
    ERROR_RETRY_AFTER_CAP,
    retry_after_for_error,
)
from repro.resilience.retry import RetryPolicy


# -- server side: the envelope's hint ---------------------------------


def test_shed_error_advertises_predicted_wait():
    error = LoadShedError("batch", predicted_wait=0.125, depth=7)
    assert retry_after_for_error(error) == 0.125
    status, envelope = protocol.error_envelope(error)
    assert status == 429
    assert envelope["error"]["retry_after"] == 0.125
    assert envelope["error"]["retryable"] is True


def test_predicted_wait_is_capped():
    error = LoadShedError("interactive", predicted_wait=120.0, depth=99)
    assert retry_after_for_error(error) == ERROR_RETRY_AFTER_CAP


def test_plain_overload_gets_default_hint():
    error = ServiceOverloadedError("queue full")
    assert retry_after_for_error(error) == ERROR_RETRY_AFTER
    _status, envelope = protocol.error_envelope(error)
    assert envelope["error"]["retry_after"] == ERROR_RETRY_AFTER


def test_nonpositive_prediction_falls_back_to_default():
    error = LoadShedError("batch", predicted_wait=0.0, depth=1)
    assert retry_after_for_error(error) == ERROR_RETRY_AFTER


# -- client side: honouring the hint ----------------------------------


def test_hint_replaces_schedule_not_maxed_with_it(monkeypatch):
    """A 429 whose Retry-After is *shorter* than the schedule must be
    honoured: the server predicted the queue frees up soon, and waiting
    for the full exponential step wastes the freed slot."""
    backend = HttpBackend(
        "http://127.0.0.1:1",
        retry_policy=RetryPolicy(
            max_attempts=2,
            base_delay=0.4,
            multiplier=2.0,
            max_delay=1.0,
            jitter=0.0,
        ),
    )
    slept: list[float] = []
    monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
    backend._pending_retry_after = 0.05
    backend._sleep_honouring_retry_after(0.4)  # schedule says 0.4s
    assert slept == [0.05]


def test_hint_is_capped_by_policy_max_delay(monkeypatch):
    backend = HttpBackend(
        "http://127.0.0.1:1",
        retry_policy=RetryPolicy(
            max_attempts=2, base_delay=0.1, max_delay=0.8, jitter=0.0
        ),
    )
    slept: list[float] = []
    monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
    backend._pending_retry_after = 30.0  # hostile/huge server hint
    backend._sleep_honouring_retry_after(0.1)
    assert slept == [0.8]


def test_hint_is_jittered(monkeypatch):
    """With jitter configured, the honoured hint is dithered downward
    (never above the hint, not deterministically equal to it)."""
    backend = HttpBackend(
        "http://127.0.0.1:1",
        retry_policy=RetryPolicy(
            max_attempts=2, base_delay=0.1, max_delay=1.0, jitter=0.5
        ),
        rng=random.Random(7),
    )
    slept: list[float] = []
    monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
    for _ in range(8):
        backend._pending_retry_after = 0.6
        backend._sleep_honouring_retry_after(0.1)
    assert all(0.3 <= s <= 0.6 for s in slept), slept
    assert len(set(slept)) > 1  # actually dithered, not constant


def test_no_hint_keeps_schedule(monkeypatch):
    backend = HttpBackend(
        "http://127.0.0.1:1",
        retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
    )
    slept: list[float] = []
    monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
    backend._sleep_honouring_retry_after(0.123)
    assert slept == [0.123]


def test_hint_consumed_once(monkeypatch):
    """The pending hint applies to the next sleep only; later retries
    fall back to the schedule."""
    backend = HttpBackend(
        "http://127.0.0.1:1",
        retry_policy=RetryPolicy(max_attempts=3, max_delay=1.0, jitter=0.0),
    )
    slept: list[float] = []
    monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
    backend._pending_retry_after = 0.2
    backend._sleep_honouring_retry_after(0.4)
    backend._sleep_honouring_retry_after(0.8)
    assert slept == [0.2, 0.8]


def test_decoded_429_envelope_carries_hint_to_client():
    payload = {
        "error": {
            "type": "LoadShedError",
            "message": "load shed",
            "status": 429,
            "retryable": True,
            "retry_after": 0.25,
        }
    }
    error = protocol.decode_error(payload)
    assert isinstance(error, TransientNetworkError)
    assert error.retry_after == 0.25
