"""DML and transactions over the wire: the remote Connection behaves
like the local one.

Session-scoped ``BEGIN``/``COMMIT``/``ROLLBACK`` run on the server (the
worker pins the session's snapshot there); the client mirrors only the
in-transaction flag.  A commit-time conflict is a 409 envelope that the
retrying client treats as terminal — retrying a lost race cannot win it.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.database import Database
from repro.errors import RemoteQueryError, exit_code_for
from repro.net.server import QueryServer


@pytest.fixture()
def write_server():
    db = Database.from_script(
        """
CREATE TABLE T (A INT NOT NULL, B INT, PRIMARY KEY (A));
INSERT INTO T VALUES (1, 10), (2, 20);
"""
    )
    with QueryServer(db, workers=2) as srv:
        yield srv


def connect(server):
    return repro.connect(server.url, fresh_session=True)


class TestRemoteDml:
    def test_insert_rowcount_rides_the_envelope(self, write_server):
        with connect(write_server) as conn:
            cursor = conn.execute("INSERT INTO T VALUES (3, 30), (4, 40)")
            assert cursor.rowcount == 2
            assert cursor.fetchall() == []
            # Reads keep rowcount == len(rows) over the wire too.
            assert conn.execute("SELECT A FROM T").rowcount == 4

    def test_remote_transaction_rollback(self, write_server):
        with connect(write_server) as conn:
            conn.begin()
            assert conn.in_transaction
            conn.execute("DELETE FROM T")
            assert conn.execute("SELECT A FROM T").rowcount == 0
            conn.rollback()
            assert not conn.in_transaction
            assert conn.execute("SELECT A FROM T").rowcount == 2

    def test_remote_autocommit_off_commits_on_clean_exit(self, write_server):
        with connect(write_server) as conn:
            conn.autocommit = False
            conn.execute("INSERT INTO T VALUES (5, 50)")
            assert conn.in_transaction
            # __exit__ commits the implicit transaction.
        with connect(write_server) as check:
            rows = check.execute("SELECT A FROM T ORDER BY A").fetchall()
        assert rows == [(1,), (2,), (5,)]

    def test_remote_exception_rolls_back(self, write_server):
        with pytest.raises(RuntimeError):
            with connect(write_server) as conn:
                conn.begin()
                conn.execute("DELETE FROM T")
                raise RuntimeError("boom")
        with connect(write_server) as check:
            assert check.execute("SELECT A FROM T").rowcount == 2

    def test_writes_visible_across_sessions_only_after_commit(
        self, write_server
    ):
        with connect(write_server) as one, connect(write_server) as two:
            one.begin()
            one.execute("INSERT INTO T VALUES (9, 90)")
            assert two.execute("SELECT A FROM T").rowcount == 2
            one.commit()
            assert two.execute("SELECT A FROM T").rowcount == 3


class TestConflictEnvelopes:
    def test_duplicate_key_is_409_and_not_retried(self, write_server):
        with connect(write_server) as conn:
            with pytest.raises(RemoteQueryError) as info:
                conn.execute("INSERT INTO T VALUES (1, 0)")
            assert info.value.error_type == "UniquenessViolationError"
            assert info.value.status == 409
            # Terminal: the retry loop never touched it.
            assert conn._backend.retries == 0
            assert exit_code_for(info.value) == 13

    def test_write_write_conflict_is_409(self, write_server):
        with connect(write_server) as one, connect(write_server) as two:
            one.begin()
            two.begin()
            one.execute("UPDATE T SET B = 1 WHERE A = 1")
            two.execute("UPDATE T SET B = 2 WHERE A = 1")
            one.commit()
            with pytest.raises(RemoteQueryError) as info:
                two.commit()
            assert info.value.error_type == "WriteConflictError"
            assert info.value.status == 409
            assert exit_code_for(info.value) == 13
            # The server rolled the session back; the client mirrors it
            # and the connection is immediately usable again.
            assert not two.in_transaction
            two.execute("UPDATE T SET B = 2 WHERE A = 1")

    def test_nested_begin_is_typed_not_500(self, write_server):
        with connect(write_server) as conn:
            conn.begin()
            with pytest.raises(RemoteQueryError) as info:
                conn.execute("BEGIN")
            assert info.value.error_type == "TransactionError"
            conn.rollback()
