"""Deadline and priority over the wire: the ``X-Deadline-Ms`` /
``X-Priority`` headers, the 504 rejection for spent budgets, and the
health/admission views ``/healthz`` exposes."""

from __future__ import annotations

import json

import repro
from repro.resilience.admission import PRIORITY_HEADER
from repro.resilience.deadline import DEADLINE_HEADER

from .conftest import raw_get, raw_post

QUERY = {"sql": "SELECT SNO FROM SUPPLIER"}


def test_generous_deadline_header_executes_normally(server):
    status, _headers, body = raw_post(
        server.url, "/v1/query", QUERY, headers={DEADLINE_HEADER: "30000"}
    )
    assert status == 200
    assert json.loads(body)["row_count"] > 0


def test_spent_deadline_header_is_a_504_before_any_work(server):
    status, _headers, body = raw_post(
        server.url, "/v1/query", QUERY, headers={DEADLINE_HEADER: "0"}
    )
    envelope = json.loads(body)["error"]
    assert status == 504
    assert envelope["type"] == "DeadlineExpiredError"
    assert envelope["retryable"] is False
    # The rejection is ledgered before the queue ever saw the query.
    metrics = raw_get(server.url, "/metrics")[2].decode()
    assert "service_deadline_rejected_total" in metrics


def test_malformed_deadline_header_is_a_400(server):
    for bad in ("soon", "-100", ""):
        status, _headers, body = raw_post(
            server.url, "/v1/query", QUERY, headers={DEADLINE_HEADER: bad}
        )
        assert status == 400, f"header {bad!r} must be rejected"
        assert json.loads(body)["error"]["type"] == "ProtocolError"


def test_priority_header_is_validated(server):
    status, _headers, body = raw_post(
        server.url, "/v1/query", QUERY, headers={PRIORITY_HEADER: "urgent"}
    )
    assert status == 400
    assert "X-Priority" in json.loads(body)["error"]["message"]
    status, _headers, _body = raw_post(
        server.url, "/v1/query", QUERY, headers={PRIORITY_HEADER: "batch"}
    )
    assert status == 200


def test_headers_override_body_options(server):
    """A stale ``deadline_ms`` in the body must lose to the header —
    the header is recomputed per attempt, the body is not."""
    body_options = {"sql": QUERY["sql"], "options": {"deadline_ms": 60000.0}}
    status, _headers, body = raw_post(
        server.url,
        "/v1/query",
        body_options,
        headers={DEADLINE_HEADER: "0"},
    )
    assert status == 504
    assert json.loads(body)["error"]["type"] == "DeadlineExpiredError"


def test_client_fast_fails_an_expired_deadline_locally(server):
    """The facade must not even open a socket for a dead budget."""
    from repro.errors import DeadlineExpiredError
    from repro.resilience.deadline import Deadline

    import pytest

    with repro.connect(server.url) as conn:
        with pytest.raises(DeadlineExpiredError):
            conn.execute(QUERY["sql"], deadline=Deadline.after(-1.0))


def test_client_deadline_round_trip(server):
    with repro.connect(server.url) as conn:
        rows = conn.execute(
            QUERY["sql"], deadline=30.0, priority="batch"
        ).fetchall()
    assert len(rows) > 0


def test_healthz_exposes_ladder_and_admission_views(server):
    status, _headers, body = raw_get(server.url, "/healthz")
    assert status == 200
    payload = json.loads(body)
    assert payload["health"] == {
        "vectorized": "vectorized",
        "parallel": "parallel",
        "optimizer": "on",
        "plan_cache": "cache",
        "estimator": "stats",
    }
    assert set(payload["subsystems"]) == set(payload["health"])
    for view in payload["subsystems"].values():
        assert view["state"] == "healthy"
    admission = payload["admission"]
    assert "predicted_wait_ms" in admission
    assert "shed_total" in admission
