"""The abandoned-ticket leak, HTTP edition: a handler whose client
wait times out must cancel the ticket so no worker executes (or keeps
executing) an answer nobody will read."""

from __future__ import annotations

import json

from repro.resilience import FAULTS, SITE_PLAN_CACHE

from .conftest import raw_get, raw_post

SQL = "SELECT SNO FROM SUPPLIER"


def test_abandoned_wait_cancels_the_ticket(server):
    """Block the single execution path, then ask for an answer faster
    than it can come: the request 408s, the ticket is cancelled, and
    the abandonment lands on both metric ledgers."""
    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.5, times=4):
        status, _headers, body = raw_post(
            server.url,
            "/v1/query",
            {"sql": SQL, "wait_timeout": 0.05},
        )
    assert status == 408
    assert json.loads(body)["error"]["type"] == "TicketWaitTimeout"
    metrics = raw_get(server.url, "/metrics")[2].decode()
    assert "http_abandoned_total 1" in metrics

    # The server is not poisoned: the next query completes normally.
    status, _headers, body = raw_post(server.url, "/v1/query", {"sql": SQL})
    assert status == 200
    assert json.loads(body)["row_count"] > 0
