"""Chaos over the network fault sites.

With seeded faults firing at ``net_accept`` (request admission) and
``net_write`` (every response/stream-chunk write), a retrying client
must end every query one of two ways: the correct rows, or a typed
:class:`~repro.errors.ReproError`.  A wrong or truncated result that
passes for success is a failure — the stream footer and the envelope
``retryable`` contract exist precisely so the client can tell."""

from __future__ import annotations

import random

import pytest

import repro
from repro import execute_planned
from repro.errors import ReproError
from repro.net.server import QueryServer
from repro.resilience import (
    FAULTS,
    RetryPolicy,
    SITE_NET_ACCEPT,
    SITE_NET_WRITE,
    SITE_OPERATOR,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

QUERIES = [
    "SELECT S.SNO FROM SUPPLIER S",
    "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 2",
    "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
]

RETRY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)


@pytest.fixture()
def baselines(tiny_db):
    return {
        sql: sorted(map(repr, execute_planned(sql, tiny_db).rows))
        for sql in QUERIES
    }


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("stream", [False, True], ids=["plain", "stream"])
def test_chaos_net_sites(tiny_db, baselines, seed, stream):
    FAULTS.seed(seed)
    with QueryServer(tiny_db, workers=2, stream_chunk_rows=2) as server:
        conn = repro.connect(
            server.url,
            retry_policy=RETRY,
            stream=stream,
            rng=random.Random(seed),
        )
        with FAULTS.inject(SITE_NET_ACCEPT, probability=0.25):
            with FAULTS.inject(SITE_NET_WRITE, probability=0.15):
                for round_number in range(3):
                    for sql in QUERIES:
                        try:
                            rows = conn.execute(sql).fetchall()
                        except ReproError:
                            continue  # typed failure: acceptable outcome
                        assert sorted(map(repr, rows)) == baselines[sql], (
                            f"wrong answer under net chaos "
                            f"(seed={seed}, stream={stream}): {sql}"
                        )
        conn.close()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_net_and_engine_together(tiny_db, baselines, seed):
    """Wire faults and engine faults at once: still correct-or-typed."""
    FAULTS.seed(seed)
    with QueryServer(tiny_db, workers=2) as server:
        conn = repro.connect(
            server.url, retry_policy=RETRY, rng=random.Random(100 + seed)
        )
        with FAULTS.inject(SITE_NET_WRITE, probability=0.2):
            with FAULTS.inject(SITE_OPERATOR, probability=0.1):
                for sql in QUERIES:
                    try:
                        rows = conn.execute(sql).fetchall()
                    except ReproError:
                        continue
                    assert sorted(map(repr, rows)) == baselines[sql]
        conn.close()


def test_accept_fault_is_retryable_503(tiny_db):
    """A deterministic accept fault maps to the retryable envelope and
    a single retry rides over it."""
    FAULTS.seed(0)
    with QueryServer(tiny_db, workers=1) as server:
        conn = repro.connect(
            server.url, retry_policy=RETRY, rng=random.Random(3)
        )
        with FAULTS.inject(SITE_NET_ACCEPT, times=1):
            rows = conn.execute(
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1"
            ).fetchall()
        assert rows == [(1,)]
        assert conn._backend.retries >= 1
        conn.close()
