"""The ``net_read`` fault site: request bodies are a chaos surface.

A truncated body (client died mid-upload, proxy cut the stream) must
produce a clean typed 400 envelope — never a hang, a stack trace, or a
half-parsed request — and the server must keep serving afterwards."""

from __future__ import annotations

import json

from repro.resilience import FAULTS, SITE_NET_READ

from .conftest import raw_get, raw_post

QUERY = {"sql": "SELECT SNO FROM SUPPLIER"}


def test_injected_read_exception_is_a_retryable_503(server):
    with FAULTS.inject(SITE_NET_READ, kind="exception", times=1):
        status, headers, body = raw_post(server.url, "/v1/query", QUERY)
    envelope = json.loads(body)["error"]
    assert status == 503
    assert envelope["type"] == "InjectedFaultError"
    assert envelope["retryable"] is True
    assert "Retry-After" in headers


def test_truncated_body_is_a_clean_400_envelope(server):
    """Chop the body mid-read: the server sees fewer bytes than
    Content-Length promised and must answer with a typed
    ProtocolError envelope, not an exception or a stall."""
    with FAULTS.inject(
        SITE_NET_READ,
        kind="corrupt",
        corruptor=lambda data: data[: len(data) // 2],
        times=1,
    ):
        status, _headers, body = raw_post(server.url, "/v1/query", QUERY)
    envelope = json.loads(body)["error"]
    assert status == 400
    assert envelope["type"] == "ProtocolError"
    assert "truncated request body" in envelope["message"]
    assert envelope["retryable"] is False


def test_server_survives_read_faults(server):
    """After both fault shapes the listener still serves good traffic
    — the fault is scoped to the one poisoned request."""
    with FAULTS.inject(SITE_NET_READ, kind="exception", times=1):
        raw_post(server.url, "/v1/query", QUERY)
    with FAULTS.inject(
        SITE_NET_READ,
        kind="corrupt",
        corruptor=lambda data: data[:3],
        times=1,
    ):
        raw_post(server.url, "/v1/query", QUERY)
    status, _headers, body = raw_post(server.url, "/v1/query", QUERY)
    assert status == 200
    assert json.loads(body)["row_count"] > 0
    status, _headers, body = raw_get(server.url, "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"


def test_garbled_body_bytes_are_a_400_not_a_crash(server):
    """Bit-rot rather than truncation: same length, broken JSON."""
    with FAULTS.inject(
        SITE_NET_READ,
        kind="corrupt",
        corruptor=lambda data: b"\xff" * len(data),
        times=1,
    ):
        status, _headers, body = raw_post(server.url, "/v1/query", QUERY)
    envelope = json.loads(body)["error"]
    assert status == 400
    assert envelope["type"] == "ProtocolError"
