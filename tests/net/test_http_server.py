"""The HTTP server's contract: round trips, streaming, backpressure,
error envelopes, request ids, sessions, and graceful drain."""

from __future__ import annotations

import json
import random
import threading
import urllib.request

import pytest

import repro
from repro import execute_planned
from repro.errors import (
    RemoteQueryError,
    TransientNetworkError,
)
from repro.net.client import HttpBackend
from repro.net.server import QueryServer
from repro.resilience import FAULTS, RetryPolicy, SITE_PLAN_CACHE
from repro.types import NULL
from repro.workloads import SupplierScale, build_database, generate

from .conftest import raw_get, raw_post

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ---------------------------------------------------------------------------
# happy path


def test_query_round_trip_matches_local(server, tiny_db):
    sql = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.BUDGET >= 50"
    with repro.connect(server.url) as conn:
        remote = conn.execute(sql).fetchall()
    local = execute_planned(sql, tiny_db)
    assert sorted(remote) == sorted(local.rows)


def test_nulls_survive_the_wire(server):
    with repro.connect(server.url) as conn:
        rows = conn.execute(
            "SELECT P.PNO, P.OEM-PNO FROM PARTS P WHERE P.SNO = 3"
        ).fetchall()
    assert rows == [(12, NULL)]
    assert rows[0][1] is NULL


def test_params_and_rewrite_trail(server):
    with repro.connect(server.url) as conn:
        cursor = conn.execute(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = :N",
            {"N": 2},
        )
        assert cursor.fetchall() == [(2,)]
        assert cursor.executed.rewritten
        assert "distinct-elimination" in cursor.executed.rules


def test_request_id_round_trips(server):
    status, headers, raw = raw_post(
        server.url, "/v1/query", {"sql": "SELECT S.SNO FROM SUPPLIER S"}
    )
    assert status == 200
    body = json.loads(raw)
    assert body["request_id"] == headers["X-Request-Id"]

    request = urllib.request.Request(
        server.url + "/v1/query",
        data=json.dumps({"sql": "SELECT S.SNO FROM SUPPLIER S"}).encode(),
        method="POST",
        headers={"X-Request-Id": "trace-me-42"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.headers["X-Request-Id"] == "trace-me-42"
        assert json.loads(response.read())["request_id"] == "trace-me-42"


def test_analyze_over_the_wire(server):
    with repro.connect(server.url) as conn:
        cursor = conn.execute(
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1", analyze=True
        )
        assert cursor.fetchall() == [(1,)]
        assert cursor.analysis is not None
        assert "plan" in cursor.analysis or cursor.analysis  # dict payload


def test_healthz_and_metrics(server):
    status, _, raw = raw_get(server.url, "/healthz")
    assert status == 200
    health = json.loads(raw)
    assert health["status"] == "ok"
    assert health["workers"] == 2

    with repro.connect(server.url) as conn:
        conn.execute("SELECT S.SNO FROM SUPPLIER S").fetchall()
    status, headers, raw = raw_get(server.url, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = raw.decode()
    assert "repro_http_requests_total" in text
    assert 'route="query"' in text


def test_unknown_endpoint_is_404(server):
    status, _, raw = raw_post(server.url, "/v1/nope", {"sql": "x"})
    assert status == 404
    assert json.loads(raw)["error"]["type"] == "NotFound"


# ---------------------------------------------------------------------------
# error envelopes


def test_malformed_json_is_400(server):
    status, _, raw = raw_post(server.url, "/v1/query", b"{not json")
    assert status == 400
    envelope = json.loads(raw)["error"]
    assert envelope["type"] == "ProtocolError"
    assert not envelope["retryable"]


def test_missing_sql_is_400(server):
    status, _, raw = raw_post(server.url, "/v1/query", {"params": {}})
    assert status == 400
    assert "sql" in json.loads(raw)["error"]["message"]


def test_unknown_field_is_400(server):
    status, _, raw = raw_post(
        server.url, "/v1/query", {"sql": "SELECT 1", "bogus": True}
    )
    assert status == 400
    assert "bogus" in json.loads(raw)["error"]["message"]


def test_sql_error_is_400_and_typed_client_side(server):
    status, _, raw = raw_post(
        server.url, "/v1/query", {"sql": "SELECT FROM WHERE"}
    )
    assert status == 400
    with repro.connect(server.url) as conn:
        with pytest.raises(RemoteQueryError) as excinfo:
            conn.execute("SELECT FROM WHERE")
    assert excinfo.value.status == 400


def test_row_budget_exceeded_is_413(server):
    status, _, raw = raw_post(
        server.url,
        "/v1/query",
        {
            "sql": "SELECT S.SNO FROM SUPPLIER S",
            "options": {"row_budget": 1},
        },
    )
    assert status == 413
    assert json.loads(raw)["error"]["type"] == "RowBudgetExceeded"


# ---------------------------------------------------------------------------
# streaming


@pytest.fixture(scope="module")
def big_db():
    # 500 suppliers x 21 parts = 10_500 parts rows: forces many chunks.
    return build_database(
        generate(
            SupplierScale(
                suppliers=500, parts_per_supplier=21, agents_per_supplier=0
            )
        )
    )


def test_streaming_over_ten_thousand_rows(big_db):
    sql = "SELECT P.SNO, P.PNO FROM PARTS P"
    expected = execute_planned(sql, big_db)
    assert len(expected) > 10_000
    with QueryServer(big_db, workers=2, stream_chunk_rows=512) as server:
        with repro.connect(server.url, stream=True) as conn:
            rows = conn.execute(sql).fetchall()
        chunks = server.metrics.value("http_stream_chunks_total")
    assert sorted(rows) == sorted(expected.rows)
    assert chunks >= len(expected) // 512  # genuinely chunked


def test_streamed_and_plain_responses_agree(server):
    sql = "SELECT S.SNO, S.SCITY FROM SUPPLIER S"
    with repro.connect(server.url) as plain:
        plain_rows = plain.execute(sql).fetchall()
    with repro.connect(server.url, stream=True) as streaming:
        streamed_rows = streaming.execute(sql).fetchall()
    assert sorted(plain_rows) == sorted(streamed_rows)


# ---------------------------------------------------------------------------
# backpressure: 429 + Retry-After, and a retrying client riding it out


def test_saturated_queue_is_429_with_retry_after(tiny_db):
    with QueryServer(tiny_db, workers=1, queue_depth=1) as server:
        session = server.get_session(None)
        # Stall the single worker so the admission queue stays full.
        with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.4, times=2):
            occupying = [
                session.submit("SELECT S.SNO FROM SUPPLIER S", wait=True)
                for _ in range(2)  # one running + one queued = saturated
            ]
            status, headers, raw = raw_post(
                server.url, "/v1/query", {"sql": "SELECT S.SNO FROM SUPPLIER S"}
            )
            assert status == 429
            envelope = json.loads(raw)["error"]
            assert envelope["type"] == "ServiceOverloadedError"
            assert envelope["retryable"]
            assert float(headers["Retry-After"]) > 0
        for ticket in occupying:
            ticket.result(timeout=10)


def test_retrying_client_succeeds_through_saturation(tiny_db):
    with QueryServer(tiny_db, workers=1, queue_depth=1) as server:
        session = server.get_session(None)
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=1.5, max_delay=0.5
        )
        with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.3, times=2):
            occupying = [
                session.submit("SELECT S.SNO FROM SUPPLIER S", wait=True)
                for _ in range(2)
            ]
            conn = repro.connect(
                server.url, retry_policy=policy, rng=random.Random(7)
            )
            rows = conn.execute(
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1"
            ).fetchall()
        assert rows == [(1,)]
        backend = conn._backend
        assert isinstance(backend, HttpBackend)
        assert backend.retries >= 1  # it really did hit the 429 first
        for ticket in occupying:
            ticket.result(timeout=10)
        conn.close()


def test_retries_exhausted_is_typed(tiny_db):
    with QueryServer(tiny_db, workers=1, queue_depth=1) as server:
        session = server.get_session(None)
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
        with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=1.0, times=2):
            occupying = [
                session.submit("SELECT S.SNO FROM SUPPLIER S", wait=True)
                for _ in range(2)
            ]
            with repro.connect(server.url, retry_policy=policy) as conn:
                with pytest.raises(TransientNetworkError) as excinfo:
                    conn.execute("SELECT S.SNO FROM SUPPLIER S")
            assert excinfo.value.status == 429
        for ticket in occupying:
            ticket.result(timeout=10)


# ---------------------------------------------------------------------------
# sessions


def test_session_lifecycle(server):
    status, _, raw = raw_post(
        server.url,
        "/v1/session",
        {"name": "tenant-a", "options": {"row_budget": 100}},
    )
    assert status == 200
    body = json.loads(raw)
    assert body["session"] == "tenant-a"
    assert body["options"]["row_budget"] == 100

    with repro.connect(server.url, session="tenant-a") as conn:
        assert conn.execute(
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 4"
        ).fetchall() == [(4,)]

    # Duplicate open is a client error; closing forgets the name.
    status, _, _ = raw_post(server.url, "/v1/session", {"name": "tenant-a"})
    assert status == 400
    request = urllib.request.Request(
        server.url + "/v1/session/tenant-a", method="DELETE"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        closed = json.loads(response.read())
    assert closed["closed"] == "tenant-a"
    assert closed["snapshot"]["completed"] == 1
    with pytest.raises(RemoteQueryError):
        with repro.connect(server.url, session="tenant-a") as conn:
            conn.execute("SELECT S.SNO FROM SUPPLIER S")


def test_fresh_session_is_owned_and_closed(server):
    conn = repro.connect(server.url, fresh_session=True)
    name = conn._backend.session
    assert name in conn._backend.healthz()["sessions"]
    backend = conn._backend
    conn.close()
    assert backend.session is None
    assert name not in HttpBackend(server.url).healthz()["sessions"]


# ---------------------------------------------------------------------------
# graceful drain


def test_drain_completes_in_flight_queries(tiny_db):
    server = QueryServer(tiny_db, workers=1)
    results: dict[str, object] = {}

    def slow_query():
        with repro.connect(server.url) as conn:
            results["rows"] = conn.execute(
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO <= 2"
            ).fetchall()

    with FAULTS.inject(SITE_PLAN_CACHE, kind="slow", delay=0.4, times=1):
        thread = threading.Thread(target=slow_query)
        thread.start()
        # Let the request reach the worker, then drain underneath it.
        deadline = threading.Event()
        deadline.wait(0.15)
        server.drain()
        thread.join(timeout=10)
    assert not thread.is_alive()
    assert results["rows"] == [(1,), (2,)]  # completed, not cut off
    assert server.draining

    # The listener is gone: a new request cannot connect at all.
    with pytest.raises(Exception):
        raw_get(server.url, "/healthz", timeout=2)


def test_drain_is_idempotent(tiny_db):
    server = QueryServer(tiny_db, workers=1)
    server.drain()
    server.drain()
    assert server.wait(timeout=1)
