"""The client-side circuit breaker on a real transport: consecutive
connection failures open it, an open breaker fails without touching
the network, and a live server's responses — even error envelopes —
keep it closed."""

from __future__ import annotations

import pytest

import repro
from repro.errors import NetworkError, RemoteQueryError
from repro.net.client import HttpBackend
from repro.resilience import RetryPolicy
from repro.resilience.breaker import STATE_CLOSED, STATE_OPEN, CircuitBreaker

FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.001, multiplier=1.0, max_delay=0.002
)

#: A port with nothing listening: every attempt is a connection error.
DEAD_URL = "http://127.0.0.1:9"


def dead_backend(breaker):
    return HttpBackend(
        DEAD_URL, retry_policy=FAST_RETRY, timeout=0.2, breaker=breaker
    )


def test_connection_failures_open_the_breaker():
    breaker = CircuitBreaker(
        failure_threshold=3, recovery_time=60.0, max_recovery_time=60.0
    )
    backend = dead_backend(breaker)
    from repro.options import ExecutionOptions

    with pytest.raises(NetworkError):
        backend.run("SELECT 1 FROM T", None, ExecutionOptions())
    # 4 attempts > threshold 3: the breaker opened mid-request.
    assert breaker.state == STATE_OPEN
    assert breaker.opens == 1


def test_open_breaker_fails_fast_without_the_network():
    import time

    breaker = CircuitBreaker(
        failure_threshold=1, recovery_time=60.0, max_recovery_time=60.0
    )
    backend = dead_backend(breaker)
    from repro.options import ExecutionOptions

    with pytest.raises(NetworkError):
        backend.run("SELECT 1 FROM T", None, ExecutionOptions())
    assert breaker.state == STATE_OPEN
    # Now every attempt is a local CircuitOpenError: no 0.2s connect
    # timeouts, so the whole retried request returns almost instantly.
    start = time.monotonic()
    with pytest.raises(NetworkError):
        backend.run("SELECT 1 FROM T", None, ExecutionOptions())
    assert time.monotonic() - start < 0.15


def test_live_server_traffic_keeps_the_breaker_closed(server):
    with repro.connect(server.url) as conn:
        backend = conn._backend
        for _ in range(10):
            conn.execute("SELECT SNO FROM SUPPLIER").fetchall()
        assert backend.breaker.state == STATE_CLOSED
        assert backend.breaker.opens == 0


def test_terminal_envelopes_are_proof_of_life(server):
    """A 400 from a working server is that server *answering*; ten of
    them in a row must not open the breaker."""
    with repro.connect(server.url) as conn:
        backend = conn._backend
        for _ in range(10):
            with pytest.raises((RemoteQueryError, Exception)):
                conn.execute("SELECT NOPE FROM NOWHERE")
        assert backend.breaker.state == STATE_CLOSED


def test_breaker_recovers_through_a_half_open_probe(server):
    """Open the breaker against a dead port, then point the same
    breaker at the live server: after the recovery window one probe
    closes it."""
    import time

    breaker = CircuitBreaker(
        failure_threshold=1,
        recovery_time=0.05,
        max_recovery_time=0.1,
        jitter=0.0,
    )
    from repro.options import ExecutionOptions

    with pytest.raises(NetworkError):
        dead_backend(breaker).run("SELECT 1 FROM T", None, ExecutionOptions())
    assert breaker.state == STATE_OPEN
    time.sleep(0.06)
    live = HttpBackend(
        server.url, retry_policy=FAST_RETRY, timeout=5.0, breaker=breaker
    )
    executed = live.run("SELECT SNO FROM SUPPLIER", None, ExecutionOptions())
    assert len(executed.rows) > 0
    assert breaker.state == STATE_CLOSED
