"""Shared helpers for the network-layer tests: raw HTTP access (no
client-side retry or decoding) and a server factory over the shared
test databases."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.net.server import QueryServer


def raw_post(url: str, path: str, payload, timeout: float = 10.0, headers=None):
    """One raw POST; returns ``(status, headers, decoded_body)`` without
    retrying or raising on error statuses — tests inspect envelopes.
    *headers* adds/overrides request headers (e.g. ``X-Deadline-Ms``)."""
    data = (
        payload
        if isinstance(payload, bytes)
        else json.dumps(payload).encode("utf-8")
    )
    request = urllib.request.Request(
        url + path,
        data=data,
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def raw_get(url: str, path: str, timeout: float = 10.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture()
def server(tiny_db):
    """A two-worker server over the hand-written instance."""
    with QueryServer(tiny_db, workers=2) as srv:
        yield srv
