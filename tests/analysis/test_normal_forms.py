"""CNF/DNF conversion: structural checks and semantic equivalence.

Semantic equivalence is verified by brute force: evaluate the original
and converted predicates over every assignment of a small row space
(including NULLs) and require identical three-valued outcomes.
"""

import itertools

import pytest

from repro.analysis import (
    NormalFormOverflow,
    clauses_to_expr,
    terms_to_expr,
    to_cnf_clauses,
    to_dnf_terms,
    to_nnf,
)
from repro.engine import Evaluator, RelSchema, Scope
from repro.engine.schema import ColumnInfo
from repro.sql import And, Comparison, Not, Or, parse_condition
from repro.types import NULL


SCHEMA = RelSchema([ColumnInfo("T", "A"), ColumnInfo("T", "B"), ColumnInfo("T", "C")])
DOMAIN = (0, 1, NULL)


def assert_equivalent(original_text, converted):
    """Three-valued equivalence over the full small row space."""
    original = parse_condition(original_text)
    evaluator = Evaluator()
    for row in itertools.product(DOMAIN, repeat=3):
        scope = Scope(SCHEMA, row)
        assert evaluator.predicate(original, scope) is evaluator.predicate(
            converted, scope
        ), f"differs on row {row}"


PREDICATES = [
    "A = 1",
    "NOT A = 1",
    "NOT (A = 1 AND B = 0)",
    "NOT (A = 1 OR NOT B = 0)",
    "(A = 1 OR B = 1) AND (B = 0 OR C = 1)",
    "A = 1 AND (B = 1 OR (C = 1 AND A = 0))",
    "NOT (A = 1 AND (B = 1 OR C = 1))",
    "A BETWEEN 0 AND 1",
    "NOT A BETWEEN 0 AND 1",
    "A IN (0, 1)",
    "NOT A IN (0, 1)",
    "A IS NULL OR B = 1",
    "NOT (A IS NULL AND B = 1)",
    "A <> B AND NOT C < 1",
]


@pytest.mark.parametrize("text", PREDICATES)
def test_nnf_preserves_three_valued_semantics(text):
    assert_equivalent(text, to_nnf(parse_condition(text)))


@pytest.mark.parametrize("text", PREDICATES)
def test_cnf_preserves_three_valued_semantics(text):
    clauses = to_cnf_clauses(parse_condition(text))
    assert_equivalent(text, clauses_to_expr(clauses))


@pytest.mark.parametrize("text", PREDICATES)
def test_dnf_preserves_three_valued_semantics(text):
    terms = to_dnf_terms(parse_condition(text))
    assert_equivalent(text, terms_to_expr(terms))


class TestStructure:
    def test_nnf_pushes_not_onto_atoms(self):
        nnf = to_nnf(parse_condition("NOT (A = 1 OR B = 2)"))
        assert isinstance(nnf, And)
        assert all(isinstance(op, Comparison) for op in nnf.operands)
        assert [op.op for op in nnf.operands] == ["<>", "<>"]

    def test_nnf_absorbs_double_negation(self):
        nnf = to_nnf(parse_condition("NOT NOT A = 1"))
        assert isinstance(nnf, Comparison) and nnf.op == "="

    def test_nnf_keeps_not_on_opaque_atoms(self):
        # an EXISTS negation is representable, so no NOT survives
        nnf = to_nnf(parse_condition("NOT EXISTS (SELECT * FROM T)"))
        from repro.sql import Exists

        assert isinstance(nnf, Exists) and nnf.negated

    def test_cnf_of_disjunction_of_conjunctions(self):
        clauses = to_cnf_clauses(
            parse_condition("(A = 1 AND B = 1) OR C = 1")
        )
        assert len(clauses) == 2
        assert all(len(clause) == 2 for clause in clauses)

    def test_dnf_of_conjunction_of_disjunctions(self):
        terms = to_dnf_terms(
            parse_condition("(A = 1 OR B = 1) AND (C = 1 OR A = 0)")
        )
        assert len(terms) == 4

    def test_between_expanded_before_conversion(self):
        clauses = to_cnf_clauses(parse_condition("A BETWEEN 1 AND 2"))
        assert len(clauses) == 2  # >= and <=

    def test_in_list_becomes_disjunctive_clause(self):
        clauses = to_cnf_clauses(parse_condition("A IN (5, 10)"))
        assert len(clauses) == 1 and len(clauses[0]) == 2

    def test_duplicate_atoms_deduplicated(self):
        clauses = to_cnf_clauses(parse_condition("A = 1 AND A = 1"))
        assert len(clauses) == 1

    def test_overflow_raises(self):
        # (a OR b) AND ... 20 times -> 2^20 DNF terms
        text = " AND ".join(f"(A = {i} OR B = {i})" for i in range(20))
        with pytest.raises(NormalFormOverflow):
            to_dnf_terms(parse_condition(text), budget=64)
