"""Type 1 / Type 2 equality classification."""

from repro.analysis import Attribute, Type1, Type2, atom_attributes, classify_atom
from repro.sql import parse_condition


def classify(text, **kwargs):
    return classify_atom(parse_condition(text), **kwargs)


class TestType1:
    def test_column_equals_literal(self):
        result = classify("T.A = 5")
        assert isinstance(result, Type1)
        assert result.attribute == Attribute("T", "A")

    def test_literal_on_left(self):
        result = classify("5 = T.A")
        assert isinstance(result, Type1)

    def test_host_variable_is_a_constant(self):
        result = classify("T.A = :PARTNO")
        assert isinstance(result, Type1)

    def test_null_literal_binds_nothing(self):
        # "A = NULL" is never true in a WHERE clause.
        assert classify("T.A = NULL") is None


class TestType2:
    def test_column_equals_column(self):
        result = classify("T.A = S.B")
        assert isinstance(result, Type2)
        assert result.left == Attribute("T", "A")
        assert result.right == Attribute("S", "B")

    def test_same_table_columns(self):
        result = classify("T.A = T.B")
        assert isinstance(result, Type2)


class TestRejections:
    def test_inequality_not_classified(self):
        assert classify("T.A < 5") is None
        assert classify("T.A <> 5") is None

    def test_unqualified_column_not_usable(self):
        assert classify("A = 5") is None
        assert classify("T.A = B") is None

    def test_is_null_rejected_by_default(self):
        assert classify("T.A IS NULL") is None

    def test_exists_rejected(self):
        assert classify("EXISTS (SELECT * FROM X)") is None


class TestIsNullExtension:
    def test_affirmative_is_null_binds(self):
        result = classify("T.A IS NULL", treat_is_null_as_binding=True)
        assert isinstance(result, Type1)
        assert result.attribute == Attribute("T", "A")

    def test_is_not_null_never_binds(self):
        assert classify("T.A IS NOT NULL", treat_is_null_as_binding=True) is None

    def test_unqualified_is_null_not_usable(self):
        assert classify("A IS NULL", treat_is_null_as_binding=True) is None


class TestAtomAttributes:
    def test_collects_qualified_refs(self):
        attrs = atom_attributes(parse_condition("T.A = S.B"))
        assert attrs == {Attribute("T", "A"), Attribute("S", "B")}

    def test_ignores_unqualified(self):
        assert atom_attributes(parse_condition("A = 5")) == set()
