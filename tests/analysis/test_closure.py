"""Bound-attribute closure (Algorithm 1 lines 13–16)."""

from repro.analysis import (
    Attribute,
    Type1,
    Type2,
    bound_closure,
    equivalence_classes,
)
from repro.sql import Literal


A = Attribute("R", "A")
B = Attribute("R", "B")
C = Attribute("S", "C")
D = Attribute("S", "D")
CONST = Literal(1)


class TestBoundClosure:
    def test_seed_is_included(self):
        assert bound_closure([A], []) == {A}

    def test_type1_always_binds(self):
        assert bound_closure([], [Type1(C, CONST)]) == {C}

    def test_type2_chains_from_seed(self):
        closure = bound_closure([A], [Type2(A, C)])
        assert closure == {A, C}

    def test_type2_chains_both_directions(self):
        closure = bound_closure([C], [Type2(A, C)])
        assert closure == {A, C}

    def test_transitive_chain(self):
        closure = bound_closure([A], [Type2(A, B), Type2(B, C), Type2(C, D)])
        assert closure == {A, B, C, D}

    def test_chain_order_does_not_matter(self):
        # The chain must be discovered even when pairs appear "backwards".
        closure = bound_closure([A], [Type2(C, D), Type2(B, C), Type2(A, B)])
        assert closure == {A, B, C, D}

    def test_disconnected_attribute_stays_unbound(self):
        closure = bound_closure([A], [Type2(C, D)])
        assert closure == {A}

    def test_type1_seeds_a_chain(self):
        closure = bound_closure([], [Type1(A, CONST), Type2(A, D)])
        assert closure == {A, D}


class TestEquivalenceClasses:
    def test_classes_from_type2_chains(self):
        classes = equivalence_classes(
            [Type2(A, B), Type2(B, C), Type2(D, D)]
        )
        merged = [cls for cls in classes if len(cls) > 1]
        assert {A, B, C} in merged

    def test_type1_ignored(self):
        classes = equivalence_classes([Type1(A, CONST)])
        assert classes == []

    def test_separate_components(self):
        classes = equivalence_classes([Type2(A, B), Type2(C, D)])
        assert len(classes) == 2
