"""Static name resolution against a catalog."""

import pytest

from repro.analysis import (
    Attribute,
    projection_attributes,
    qualify,
    qualify_query_predicate,
    resolve_column,
    table_columns,
)
from repro.errors import (
    AmbiguousColumnError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.sql import ColumnRef, column_refs, parse_condition, parse_query


@pytest.fixture()
def columns(paper_catalog):
    query = parse_query("SELECT * FROM SUPPLIER S, PARTS P")
    return table_columns(query, paper_catalog)


class TestResolveColumn:
    def test_qualified_reference(self, columns):
        ref = resolve_column(ColumnRef("S", "SNAME"), columns)
        assert ref == ColumnRef("S", "SNAME")

    def test_unqualified_unique_column(self, columns):
        ref = resolve_column(ColumnRef(None, "PNAME"), columns)
        assert ref == ColumnRef("P", "PNAME")

    def test_ambiguous_column_raises(self, columns):
        # SNO exists in both SUPPLIER and PARTS.
        with pytest.raises(AmbiguousColumnError):
            resolve_column(ColumnRef(None, "SNO"), columns)

    def test_unknown_qualifier(self, columns):
        with pytest.raises(UnknownTableError):
            resolve_column(ColumnRef("X", "SNO"), columns)

    def test_unknown_column(self, columns):
        with pytest.raises(UnknownColumnError):
            resolve_column(ColumnRef("S", "NOPE"), columns)

    def test_correlated_reference_allowed(self, columns):
        ref = resolve_column(
            ColumnRef("OUTER", "X"), columns, allow_correlated=True
        )
        assert ref is None


class TestQualify:
    def test_qualifies_unqualified_refs(self, columns):
        expr = qualify(parse_condition("PNAME = 'bolt' AND S.SNO = 1"), columns)
        refs = column_refs(expr)
        assert all(ref.qualifier is not None for ref in refs)

    def test_subquery_atoms_left_intact(self, columns):
        expr = qualify(
            parse_condition("EXISTS (SELECT * FROM AGENTS A WHERE A.SNO = SNO)"),
            columns,
            allow_correlated=True,
        )
        from repro.sql import Exists

        assert isinstance(expr, Exists)

    def test_query_predicate_helper(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO FROM SUPPLIER S WHERE SNAME = 'x'"
        )
        predicate = qualify_query_predicate(query, paper_catalog)
        refs = column_refs(predicate)
        assert refs[0].qualifier == "S"

    def test_no_predicate_returns_none(self, paper_catalog):
        query = parse_query("SELECT S.SNO FROM SUPPLIER S")
        assert qualify_query_predicate(query, paper_catalog) is None


class TestProjectionAttributes:
    def test_column_items(self, paper_catalog):
        query = parse_query(
            "SELECT S.SNO, PNAME FROM SUPPLIER S, PARTS P"
        )
        attrs = projection_attributes(query, paper_catalog)
        assert attrs == [Attribute("S", "SNO"), Attribute("P", "PNAME")]

    def test_bare_star(self, paper_catalog):
        query = parse_query("SELECT * FROM SUPPLIER S, AGENTS A")
        attrs = projection_attributes(query, paper_catalog)
        assert len(attrs) == 5 + 4

    def test_qualified_star(self, paper_catalog):
        query = parse_query("SELECT A.* FROM SUPPLIER S, AGENTS A")
        attrs = projection_attributes(query, paper_catalog)
        assert {a.relation for a in attrs} == {"A"}

    def test_unknown_star_qualifier(self, paper_catalog):
        query = parse_query("SELECT X.* FROM SUPPLIER S")
        with pytest.raises(UnknownTableError):
            projection_attributes(query, paper_catalog)
