"""Workload generators: determinism, validity, backend consistency."""

import random

import pytest

from repro.core import test_uniqueness
from repro.engine import execute
from repro.workloads import (
    PAPER_QUERIES,
    GeneratorConfig,
    SupplierScale,
    build_catalog,
    build_database,
    build_ims_database,
    build_object_store,
    generate,
    paper_query,
    random_catalog,
    random_database,
    random_query,
)


class TestSupplierGenerator:
    def test_deterministic_for_same_seed(self):
        a = generate(SupplierScale(suppliers=8, seed=7))
        b = generate(SupplierScale(suppliers=8, seed=7))
        assert a.suppliers == b.suppliers
        assert a.parts == b.parts

    def test_different_seed_differs(self):
        a = generate(SupplierScale(suppliers=8, seed=7))
        b = generate(SupplierScale(suppliers=8, seed=8))
        assert a.suppliers != b.suppliers

    def test_scale_respected(self):
        data = generate(
            SupplierScale(suppliers=5, parts_per_supplier=3, agents_per_supplier=2)
        )
        assert len(data.suppliers) == 5
        assert len(data.parts) == 15
        assert len(data.agents) == 10

    def test_generated_data_satisfies_all_constraints(self):
        # Loading into the engine enforces keys, NOT NULL, and CHECKs.
        database = build_database(generate(SupplierScale(suppliers=40)))
        assert database.row_counts()["SUPPLIER"] == 40

    def test_name_collisions_exist(self):
        data = generate(SupplierScale(suppliers=40, name_collision_rate=0.8))
        names = [s.sname for s in data.suppliers]
        assert len(set(names)) < len(names)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            SupplierScale(suppliers=0)
        with pytest.raises(ValueError):
            SupplierScale(name_collision_rate=2.0)

    def test_large_scale_relaxes_sno_check(self):
        database = build_database(generate(SupplierScale(suppliers=600)))
        assert database.row_counts()["SUPPLIER"] == 600


class TestBackendConsistency:
    def test_same_counts_across_backends(self):
        data = generate(SupplierScale(suppliers=6, parts_per_supplier=3))
        rel = build_database(data)
        ims = build_ims_database(data)
        store = build_object_store(data)
        assert rel.row_counts()["PARTS"] == ims.segment_count("PARTS")
        assert rel.row_counts()["PARTS"] == store.extent_size("PARTS")
        assert rel.row_counts()["AGENTS"] == ims.segment_count("AGENTS")

    def test_ims_children_attached_to_right_parent(self):
        data = generate(SupplierScale(suppliers=4, parts_per_supplier=2))
        ims = build_ims_database(data)
        for root in ims.roots:
            for part in root.twins("PARTS"):
                matching = [
                    p for p in data.parts
                    if p.sno == root.key and p.pno == part.key
                ]
                assert len(matching) == 1


class TestPaperQueryCatalog:
    def test_lookup(self):
        assert paper_query("1").distinct_unnecessary is True
        with pytest.raises(KeyError):
            paper_query("99")

    def test_every_query_parses_and_runs(self, small_db):
        for query in PAPER_QUERIES:
            result = execute(query.sql, small_db, params=query.params)
            assert result.columns  # ran to completion

    def test_stated_verdicts_hold(self, small_db):
        for query in PAPER_QUERIES:
            if query.distinct_unnecessary is None:
                continue
            verdict = test_uniqueness(query.sql, small_db.catalog)
            assert verdict.unique == query.distinct_unnecessary, query.example


class TestRandomGenerators:
    def test_random_catalog_has_keys(self):
        rng = random.Random(1)
        for _ in range(10):
            catalog = random_catalog(rng)
            assert all(schema.has_key() for schema in catalog)

    def test_random_database_is_valid(self):
        rng = random.Random(2)
        catalog = random_catalog(rng)
        database = random_database(rng, catalog)
        # validity was enforced on insert; just confirm rows landed
        assert sum(database.row_counts().values()) >= 0

    def test_random_query_executes(self):
        rng = random.Random(3)
        for _ in range(20):
            catalog = random_catalog(rng)
            database = random_database(rng, catalog)
            query = random_query(rng, catalog)
            execute(query, database)  # must not raise

    def test_random_query_is_distinct(self):
        rng = random.Random(4)
        catalog = random_catalog(rng)
        assert random_query(rng, catalog).distinct

    def test_config_bounds(self):
        rng = random.Random(5)
        config = GeneratorConfig(max_tables=1, max_rows=2)
        catalog = random_catalog(rng, config)
        assert len(catalog) == 1
        database = random_database(rng, catalog, config)
        assert all(count <= 2 for count in database.row_counts().values())
