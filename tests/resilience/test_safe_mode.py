"""Safe mode: verified fallback for the rewrite layer itself.

The attack staged here is the worst case for a uniqueness-driven
optimizer: Algorithm 1 is made to return an *unsound* YES (via a corrupt
fault), ``distinct-elimination`` fires on a query whose projection is
NOT duplicate-free, and the poisoned verdict lands in the analysis
cache.  Safe mode must catch the changed multiset, quarantine the rule,
evict the poisoned entries, and serve the reference answer.
"""

import pytest

from repro import Stats, UniquenessResult, run_guarded
from repro.cli import exit_code_for
from repro.core.rewrite import quarantined_rules
from repro.engine import Database
from repro.errors import RewriteMismatchError
from repro.resilience import FAULTS, SITE_UNIQUENESS

SCRIPT = """
CREATE TABLE SUPPLIER (
  SNO INT, SNAME VARCHAR(30), SCITY VARCHAR(20),
  PRIMARY KEY (SNO));
INSERT INTO SUPPLIER VALUES
  (1, 'Smith', 'Toronto'),
  (2, 'Smith', 'Chicago'),
  (3, 'Blake', 'Toronto');
"""

#: SNAME is not a key: DISTINCT is required and normally survives.
DUPLICATE_SQL = "SELECT DISTINCT S.SNAME FROM SUPPLIER S"
CORRECT_ROWS = [("Blake",), ("Smith",)]

#: SNO is the key: DISTINCT elimination here is legitimately sound.
SOUND_SQL = "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S"


def _unsound_yes(result):
    return UniquenessResult(True, "corrupted verdict")


@pytest.fixture()
def db():
    return Database.from_script(SCRIPT)


def _inject_unsound_verdict():
    return FAULTS.inject(
        SITE_UNIQUENESS, kind="corrupt", corruptor=_unsound_yes
    )


def test_corrupt_verdict_without_safe_mode_leaks_duplicates(db):
    """Establish the hazard: unguarded, the bad rewrite changes rows."""
    with _inject_unsound_verdict():
        outcome = run_guarded(DUPLICATE_SQL, db, safe_mode=False)
    assert outcome.rewritten and "distinct-elimination" in outcome.rules
    assert sorted(outcome.result.rows) == [("Blake",), ("Smith",), ("Smith",)]

    # Worse: the unsound YES was cached.  Even with the fault disarmed,
    # the same text replays the poisoned verdict.
    replay = run_guarded(DUPLICATE_SQL, db, safe_mode=False)
    assert replay.rewritten  # served from the poisoned cache


def test_safe_mode_detects_quarantines_and_serves_reference(db):
    with _inject_unsound_verdict():
        outcome = run_guarded(DUPLICATE_SQL, db, safe_mode=True)

    assert outcome.verified and outcome.mismatch
    assert outcome.quarantined == ["distinct-elimination"]
    assert outcome.evicted >= 1
    assert outcome.sql == DUPLICATE_SQL  # the reference text
    assert sorted(outcome.result.rows) == CORRECT_ROWS
    assert "distinct-elimination" in quarantined_rules()
    assert "MISMATCH" in outcome.describe()

    # The quarantine holds process-wide: the rule no longer fires, so
    # later executions are correct even without safe mode.
    later = run_guarded(DUPLICATE_SQL, db, safe_mode=False)
    assert not later.rewritten
    assert sorted(later.result.rows) == CORRECT_ROWS


def test_eviction_purges_the_poisoned_verdict(db):
    """After quarantine + eviction, lifting the quarantine is safe: the
    poisoned cache entry is gone, so Algorithm 1 re-runs and says NO."""
    from repro.core.rewrite import unquarantine_all

    with _inject_unsound_verdict():
        run_guarded(DUPLICATE_SQL, db, safe_mode=True)
    unquarantine_all()

    clean = run_guarded(DUPLICATE_SQL, db, safe_mode=False)
    assert not clean.rewritten  # fresh verdict: SNAME is not a key
    assert sorted(clean.result.rows) == CORRECT_ROWS


def test_strict_mode_raises_typed_error(db):
    with _inject_unsound_verdict():
        with pytest.raises(RewriteMismatchError) as info:
            run_guarded(DUPLICATE_SQL, db, safe_mode=True, strict=True)
    assert info.value.rules == ["distinct-elimination"]
    assert info.value.sql == DUPLICATE_SQL
    assert exit_code_for(info.value) == 8
    # Strict mode still quarantined before raising.
    assert "distinct-elimination" in quarantined_rules()


def test_sound_rewrites_verify_clean(db):
    outcome = run_guarded(SOUND_SQL, db, safe_mode=True)
    assert outcome.rewritten and outcome.verified and not outcome.mismatch
    assert sorted(outcome.result.rows) == [
        (1, "Smith"), (2, "Smith"), (3, "Blake"),
    ]
    assert "verified" in outcome.describe()
    assert quarantined_rules() == {}


def test_sampling_checks_first_then_every_nth(db):
    verified = []
    for _ in range(7):
        outcome = run_guarded(SOUND_SQL, db, safe_mode=True, sample_every=3)
        verified.append(outcome.verified)
    assert verified == [True, False, False, True, False, False, True]

    with pytest.raises(ValueError):
        run_guarded(SOUND_SQL, db, safe_mode=True, sample_every=0)


def test_unchanged_queries_skip_the_cross_check(db):
    outcome = run_guarded(
        "SELECT S.SNAME FROM SUPPLIER S", db, safe_mode=True
    )
    assert not outcome.rewritten and not outcome.verified
    assert "not rewritten" in outcome.describe()


def test_run_guarded_accepts_stats_sink(db):
    stats = Stats()
    outcome = run_guarded(SOUND_SQL, db, stats=stats)
    assert outcome.stats is stats
    assert stats.rows_scanned > 0
