"""The chaos contract, sweep-tested over the paper's own workload.

For every worked example E1-E11 and every (site, kind, trigger) scenario
in the matrix, an execution under injected faults must end one of two
ways:

* the correct result — byte-identical multiset to the fault-free run —
  reached through a fallback ladder, or
* a typed :class:`~repro.errors.ReproError`.

A wrong answer, or a raw non-library exception escaping the engine, is
a failure.  The matrix seed is settable via ``CHAOS_SEED`` so CI can
fan the sweep out over several deterministic replays.
"""

import os
import random

import pytest

from repro import clear_all_caches, execute_planned, run_guarded
from repro.core.rewrite import unquarantine_all
from repro.errors import ReproError
from repro.ims import ImsGateway
from repro.resilience import (
    FAULTS,
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_DLI,
    SITE_FINGERPRINT,
    SITE_INDEX_BUILD,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
    SITE_UNIQUENESS,
    RetryPolicy,
)
from repro.workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_database,
    build_ims_database,
    generate,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Engine-side fault scenarios: (site, kwargs) applied one at a time.
ENGINE_SCENARIOS = [
    (SITE_COMPILE, {}),
    (SITE_COMPILED_EVAL, {"after": 1, "times": 1}),
    (SITE_COMPILED_EVAL, {"probability": 0.3}),
    (SITE_PLAN_CACHE, {}),
    (SITE_INDEX_BUILD, {}),
    (SITE_FINGERPRINT, {}),
    (SITE_UNIQUENESS, {}),
    (SITE_OPERATOR, {"after": 5, "times": 1}),
    (SITE_OPERATOR, {"probability": 0.05}),
]

SCALE = SupplierScale(suppliers=10, parts_per_supplier=4, agents_per_supplier=2)


@pytest.fixture(scope="module")
def data():
    return generate(SCALE)


@pytest.fixture(scope="module")
def db(data):
    return build_database(data)


@pytest.fixture(scope="module")
def ims_db(data):
    return build_ims_database(data)


def _baselines(db):
    """Fault-free reference multisets, computed once per module."""
    clear_all_caches()
    results = {}
    for query in PAPER_QUERIES:
        results[query.example] = execute_planned(
            query.sql, db, params=query.params
        ).multiset()
    return results


@pytest.fixture(scope="module")
def baselines(db):
    return _baselines(db)


@pytest.mark.parametrize(
    "site,kwargs",
    ENGINE_SCENARIOS,
    ids=lambda value: str(value),
)
def test_chaos_engine_matrix(db, baselines, site, kwargs):
    FAULTS.seed(CHAOS_SEED)
    for query in PAPER_QUERIES:
        clear_all_caches()
        with FAULTS.inject(site, **kwargs):
            try:
                result = execute_planned(query.sql, db, params=query.params)
            except ReproError:
                continue  # typed failure: acceptable outcome
            # Any non-ReproError exception propagates and fails the test.
        assert result.multiset() == baselines[query.example], (
            f"E{query.example} returned a wrong answer under a "
            f"{site!r} fault"
        )


@pytest.mark.parametrize("site,kwargs", ENGINE_SCENARIOS[:6], ids=str)
def test_chaos_guarded_matrix(db, baselines, site, kwargs):
    """run_guarded under the same faults: safe mode may not lie either."""
    FAULTS.seed(CHAOS_SEED)
    rng = random.Random(CHAOS_SEED)
    for query in PAPER_QUERIES:
        if query.example in ("10", "11"):
            continue  # navigational-profile examples: exercised via IMS
        clear_all_caches()
        unquarantine_all()
        with FAULTS.inject(site, **kwargs):
            try:
                outcome = run_guarded(
                    query.sql,
                    db,
                    params=query.params,
                    safe_mode=rng.random() < 0.5,
                )
            except ReproError:
                continue
        assert outcome.result.multiset() == baselines[query.example]


def test_chaos_gateway_transients(ims_db):
    """Example 10 through the gateway under a flaky DL/I region."""
    gateway = ImsGateway(
        ims_db, retry_policy=RetryPolicy(base_delay=0.0, max_delay=0.0)
    )
    sql = (
        "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
    )
    expected = gateway.execute(sql, params={"PARTNO": 2}).multiset()

    FAULTS.seed(CHAOS_SEED)
    for after in (0, 1, 3, 7):
        with FAULTS.inject(SITE_DLI, kind="transient", after=after, times=2):
            result = gateway.execute(sql, params={"PARTNO": 2})
        assert result.multiset() == expected

    with FAULTS.inject(SITE_DLI, kind="transient", probability=0.2):
        try:
            result = gateway.execute(sql, params={"PARTNO": 2})
        except ReproError:
            return
    assert result.multiset() == expected
