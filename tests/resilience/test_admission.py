"""Adaptive admission control: the EWMA estimators and the batch-first
shedding decision, with interactive traffic immune by construction."""

from __future__ import annotations

import pytest

from repro.errors import LoadShedError, ServiceOverloadedError
from repro.resilience.admission import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    SheddingPolicy,
)


POLICY = SheddingPolicy(
    target_delay=1.0, batch_shed_at=0.5, wait_smoothing=0.5, min_queue=1
)


def test_policy_validation():
    with pytest.raises(ValueError):
        SheddingPolicy(target_delay=0.0)
    with pytest.raises(ValueError):
        SheddingPolicy(batch_shed_at=1.5)
    with pytest.raises(ValueError):
        SheddingPolicy(wait_smoothing=0.0)
    with pytest.raises(ValueError):
        SheddingPolicy(min_queue=-1)


def test_wait_ewma_converges_toward_observations():
    controller = AdmissionController(POLICY)
    assert controller.predicted_wait() == 0.0
    for _ in range(20):
        controller.observe_wait(2.0)
    assert controller.predicted_wait() == pytest.approx(2.0, abs=0.01)


def test_typical_deadline_defaults_then_tracks_declarations():
    controller = AdmissionController(POLICY)
    assert controller.typical_deadline() == POLICY.target_delay
    controller.observe_deadline(4.0)
    assert controller.typical_deadline() == pytest.approx(4.0)
    controller.observe_deadline(2.0)  # EWMA, not last-writer-wins
    assert controller.typical_deadline() == pytest.approx(3.0)
    controller.observe_deadline(-1.0)  # expired budgets are not typical
    assert controller.typical_deadline() == pytest.approx(3.0)


def test_interactive_is_never_shed_here():
    controller = AdmissionController(POLICY)
    for _ in range(10):
        controller.observe_wait(100.0)  # catastrophic predicted wait
    controller.admit(PRIORITY_INTERACTIVE, queue_length=50, depth=64)


def test_batch_sheds_once_predicted_wait_crosses_the_threshold():
    controller = AdmissionController(POLICY)
    # Predicted 0.6s vs threshold 1.0 * 0.5 = 0.5s → shed.
    for _ in range(20):
        controller.observe_wait(0.6)
    with pytest.raises(LoadShedError) as caught:
        controller.admit(PRIORITY_BATCH, queue_length=3, depth=64)
    error = caught.value
    assert error.priority == PRIORITY_BATCH
    assert error.predicted_wait == pytest.approx(0.6, abs=0.01)
    # LoadShedError is retryable backpressure, wire-compatible with 429.
    assert isinstance(error, ServiceOverloadedError)
    assert controller.shed_total == 1


def test_batch_admitted_below_the_threshold():
    controller = AdmissionController(POLICY)
    for _ in range(20):
        controller.observe_wait(0.3)  # under the 0.5s threshold
    controller.admit(PRIORITY_BATCH, queue_length=3, depth=64)
    assert controller.shed_total == 0


def test_an_idle_queue_admits_everything():
    """A stale estimate from the last storm must not shed traffic
    arriving at an empty service."""
    controller = AdmissionController(POLICY)
    for _ in range(10):
        controller.observe_wait(100.0)
    controller.admit(PRIORITY_BATCH, queue_length=0, depth=64)


def test_declared_deadlines_raise_the_shedding_bar():
    controller = AdmissionController(POLICY)
    for _ in range(20):
        controller.observe_wait(0.6)  # would shed against the 1s default
    for _ in range(20):
        controller.observe_deadline(10.0)  # patient clients
    controller.admit(PRIORITY_BATCH, queue_length=3, depth=64)


def test_snapshot_is_json_ready():
    import json

    controller = AdmissionController(POLICY)
    controller.observe_wait(0.25)
    snapshot = controller.snapshot()
    assert snapshot["predicted_wait_ms"] == pytest.approx(125.0)
    json.dumps(snapshot)
