"""Deadline value semantics: remaining-ms wire form, re-anchoring,
expiry enforcement, and the timeout clamp — all on a fake clock."""

from __future__ import annotations

import pytest

from repro.errors import DeadlineExpiredError
from repro.options import ExecutionOptions
from repro.resilience.deadline import DEADLINE_HEADER, Deadline


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_after_measures_remaining_on_the_injected_clock():
    clock = FakeClock()
    deadline = Deadline.after(2.0, clock=clock)
    assert deadline.remaining() == pytest.approx(2.0)
    clock.advance(0.5)
    assert deadline.remaining() == pytest.approx(1.5)
    assert deadline.remaining_ms() == pytest.approx(1500.0)
    assert not deadline.expired


def test_expiry_is_inclusive_at_zero():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    clock.advance(1.0)
    assert deadline.expired
    assert deadline.remaining() == pytest.approx(0.0)


def test_wire_form_is_remaining_ms_floored_at_zero():
    clock = FakeClock()
    deadline = Deadline.after(0.25, clock=clock)
    assert deadline.to_wire_ms() == pytest.approx(250.0)
    clock.advance(1.0)  # long expired: the wire form must not go negative
    assert deadline.to_wire_ms() == 0.0


def test_from_wire_ms_reanchors_on_the_local_clock():
    """The receiving hop re-anchors remaining-ms against its own clock,
    so clock skew between processes cannot extend the budget."""
    sender = FakeClock(now=5000.0)
    receiver = FakeClock(now=17.0)  # wildly different epoch: irrelevant
    wire = Deadline.after(1.0, clock=sender).to_wire_ms()
    local = Deadline.from_wire_ms(wire, clock=receiver)
    assert local.remaining() == pytest.approx(1.0)
    receiver.advance(0.4)
    assert local.remaining() == pytest.approx(0.6)


def test_check_raises_typed_error_with_wait_annotation():
    clock = FakeClock()
    deadline = Deadline.after(0.1, clock=clock)
    clock.advance(0.35)
    with pytest.raises(DeadlineExpiredError) as caught:
        deadline.check(waited=0.3)
    error = caught.value
    assert error.remaining_ms == pytest.approx(-250.0)
    assert error.waited == pytest.approx(0.3)
    assert "deadline expired" in str(error)


def test_check_returns_remaining_when_alive():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    assert deadline.check() == pytest.approx(1.0)


def test_clamp_timeout_takes_the_smaller_budget():
    clock = FakeClock()
    deadline = Deadline.after(0.5, clock=clock)
    # Caller's own timeout is looser: the deadline wins.
    assert deadline.clamp_timeout(10.0) == pytest.approx(0.5)
    # Caller's timeout is tighter: it stands.
    assert deadline.clamp_timeout(0.1) == pytest.approx(0.1)
    # No caller timeout: the deadline is the whole budget.
    assert deadline.clamp_timeout(None) == pytest.approx(0.5)
    clock.advance(1.0)
    with pytest.raises(DeadlineExpiredError):
        deadline.clamp_timeout(10.0)


def test_equality_ignores_the_clock():
    a = Deadline(expires_at=42.0, clock=FakeClock())
    b = Deadline(expires_at=42.0, clock=FakeClock(7.0))
    assert a == b


def test_header_name_is_stable():
    # The wire contract: changing this breaks deployed clients.
    assert DEADLINE_HEADER == "X-Deadline-Ms"


# -- options integration ------------------------------------------------


def test_options_wire_round_trip_preserves_remaining_budget():
    clock = FakeClock()
    options = ExecutionOptions.create(
        deadline=Deadline.after(2.0, clock=clock), priority="batch"
    )
    wire = options.to_wire()
    assert wire["deadline_ms"] == pytest.approx(2000.0)
    assert wire["priority"] == "batch"
    restored = ExecutionOptions.from_wire(wire)
    assert restored.deadline is not None
    assert restored.deadline.remaining() == pytest.approx(2.0, abs=0.05)
    assert restored.priority == "batch"


def test_options_create_accepts_seconds_shorthand():
    options = ExecutionOptions.create(deadline=1.5)
    assert options.deadline is not None
    assert options.deadline.remaining() == pytest.approx(1.5, abs=0.05)


def test_options_default_priority_is_interactive_and_off_the_wire():
    options = ExecutionOptions.create(timeout=1.0)
    assert options.priority == "interactive"
    assert "priority" not in options.to_wire()
    assert "deadline_ms" not in options.to_wire()


def test_options_reject_unknown_priority():
    with pytest.raises(ValueError):
        ExecutionOptions.create(priority="best-effort")
