"""Circuit-breaker state machine on a fake clock and seeded RNG:
opening, the single half-open probe, geometric backoff, and the typed
fast-fail callers compose with the retry policy."""

from __future__ import annotations

import random

import pytest

from repro.errors import CircuitOpenError, TransientNetworkError
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    defaults = dict(
        failure_threshold=3,
        recovery_time=1.0,
        max_recovery_time=4.0,
        jitter=0.0,  # deterministic timing for the state tests
    )
    defaults.update(kwargs)
    breaker = CircuitBreaker(
        clock=clock, rng=random.Random(0), **defaults
    )
    return breaker, clock


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(recovery_time=1.0, max_recovery_time=0.5)
    with pytest.raises(ValueError):
        CircuitBreaker(jitter=2.0)


def test_opens_at_the_threshold_only():
    breaker, _ = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED
    breaker.acquire()  # still passing
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert breaker.opens == 1


def test_success_resets_the_failure_count():
    breaker, _ = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED


def test_open_breaker_fails_fast_with_time_to_probe():
    breaker, clock = make_breaker()
    trip(breaker)
    with pytest.raises(CircuitOpenError) as caught:
        breaker.acquire()
    error = caught.value
    # The typed error composes with the retry loop: it is a transient
    # network failure whose retry_after lands on the half-open window.
    assert isinstance(error, TransientNetworkError)
    assert error.retry_after == pytest.approx(1.0)
    clock.advance(0.6)
    with pytest.raises(CircuitOpenError) as caught:
        breaker.acquire()
    assert caught.value.retry_after == pytest.approx(0.4)


def test_half_open_admits_exactly_one_probe():
    breaker, clock = make_breaker()
    trip(breaker)
    clock.advance(1.0)
    assert breaker.state == STATE_HALF_OPEN
    breaker.acquire()  # the probe
    with pytest.raises(CircuitOpenError):
        breaker.acquire()  # concurrent caller: fail fast
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    breaker.acquire()  # closed again: everyone passes


def test_failed_probe_reopens_with_doubled_capped_delay():
    breaker, clock = make_breaker()
    trip(breaker)
    delays = []
    for _ in range(4):
        clock.advance(breaker.max_recovery_time)
        breaker.acquire()  # probe
        breaker.record_failure()
        delays.append(breaker.snapshot()["recovery_time"])
    assert delays == [2.0, 4.0, 4.0, 4.0]  # doubled, then capped
    assert breaker.opens == 5  # initial open + four re-opens


def test_probe_success_resets_the_backoff():
    breaker, clock = make_breaker()
    trip(breaker)
    clock.advance(1.0)
    breaker.acquire()
    breaker.record_failure()  # re-open at 2.0
    clock.advance(4.0)
    breaker.acquire()
    breaker.record_success()  # close, reset backoff
    trip(breaker)
    with pytest.raises(CircuitOpenError) as caught:
        breaker.acquire()
    assert caught.value.retry_after == pytest.approx(1.0)  # base again


def test_jitter_extends_but_never_shortens_the_window():
    breaker = CircuitBreaker(
        failure_threshold=1,
        recovery_time=1.0,
        max_recovery_time=4.0,
        jitter=0.5,
        clock=FakeClock(),
        rng=random.Random(42),
    )
    for _ in range(20):
        breaker.record_failure()  # open with a fresh jittered window
        with pytest.raises(CircuitOpenError) as caught:
            breaker.acquire()
        assert 1.0 <= caught.value.retry_after <= 1.5
        breaker.record_success()


def test_snapshot_is_json_ready():
    import json

    breaker, _ = make_breaker()
    trip(breaker)
    snapshot = breaker.snapshot()
    assert snapshot["state"] == STATE_OPEN
    assert snapshot["opens"] == 1
    json.dumps(snapshot)
