"""Retry-with-backoff, alone and wrapped around the IMS gateway."""

import pytest

from repro.errors import TransientImsError
from repro.ims import GatewayStats, ImsGateway
from repro.resilience import FAULTS, SITE_DLI, RetryPolicy, call_with_retry
from repro.workloads import SupplierScale, build_ims_database, generate

# Example 10's join, the gateway's canonical workload.
JOIN_SQL = (
    "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
)
PARAMS = {"PARTNO": 3}

#: No real sleeping in tests.
FAST = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)


@pytest.fixture(scope="module")
def ims_db():
    return build_ims_database(
        generate(SupplierScale(suppliers=10, parts_per_supplier=4))
    )


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientImsError("GL")
            return "ok"

        retries = []
        sleeps = []
        assert (
            call_with_retry(
                flaky,
                policy=RetryPolicy(
                    max_attempts=4,
                    base_delay=0.25,
                    max_delay=1.0,
                    jitter=0.0,
                ),
                sleep=sleeps.append,
                on_retry=lambda n, e: retries.append((n, e.status)),
            )
            == "ok"
        )
        assert len(calls) == 3
        assert retries == [(1, "GL"), (2, "GL")]
        assert sleeps == [0.25, 0.5]  # exponential, un-jittered

    def test_exhausted_attempts_propagate_the_error(self):
        def always_fails():
            raise TransientImsError("GG")

        with pytest.raises(TransientImsError):
            call_with_retry(always_fails, policy=FAST, sleep=lambda s: None)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            call_with_retry(broken, policy=FAST, sleep=lambda s: None)
        assert len(calls) == 1

    def test_jitter_only_shrinks_the_delay(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        import random

        rng = random.Random(3)
        for retry_number in range(1, 6):
            raw = min(1.0, 0.1 * 2.0 ** (retry_number - 1))
            jittered = policy.delay(retry_number, rng)
            assert 0 <= jittered <= raw

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestGatewayRetry:
    def test_transient_dli_faults_are_retried_to_the_same_rows(self, ims_db):
        gateway = ImsGateway(ims_db, retry_policy=FAST)
        clean_stats = GatewayStats()
        expected = gateway.execute(JOIN_SQL, params=PARAMS, stats=clean_stats)
        assert len(expected.rows) > 0

        stats = GatewayStats()
        # Two transient failures partway into the DL/I program, then clean.
        with FAULTS.inject(SITE_DLI, kind="transient", after=2, times=2):
            result = gateway.execute(JOIN_SQL, params=PARAMS, stats=stats)

        assert result.same_rows(expected)
        assert stats.retries == 2
        # Per-attempt counters describe the SUCCESSFUL attempt only.
        assert stats.dli.calls_to("PARTS", "GNP") == clean_stats.dli.calls_to(
            "PARTS", "GNP"
        )
        assert stats.dli.total_calls() == clean_stats.dli.total_calls()

    def test_persistent_transient_fault_surfaces_typed(self, ims_db):
        gateway = ImsGateway(ims_db, retry_policy=FAST)
        with FAULTS.inject(SITE_DLI, kind="transient", status="GL"):
            with pytest.raises(TransientImsError):
                gateway.execute(JOIN_SQL, params=PARAMS)

    def test_default_policy_applies_when_none_given(self, ims_db):
        gateway = ImsGateway(ims_db)
        stats = GatewayStats()
        with FAULTS.inject(SITE_DLI, kind="transient", times=1):
            result = gateway.execute(JOIN_SQL, params=PARAMS, stats=stats)
        assert stats.retries == 1
        assert len(result.rows) > 0
