"""Resilience tests share process-wide state; scrub it around each test."""

from __future__ import annotations

import pytest

from repro import clear_all_caches
from repro.core.rewrite import unquarantine_all
from repro.resilience import FAULTS
from repro.resilience.guarded import reset_safe_mode_sampling


def _scrub() -> None:
    FAULTS.reset()
    FAULTS.seed(0)
    unquarantine_all()
    clear_all_caches()
    reset_safe_mode_sampling()


@pytest.fixture(autouse=True)
def clean_resilience_state():
    """Faults, quarantines, caches, and sampling never leak across tests."""
    _scrub()
    yield
    _scrub()
