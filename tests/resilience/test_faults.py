"""The fault injector itself: counting, determinism, arming discipline."""

import pytest

from repro.errors import InjectedFaultError, TransientImsError
from repro.resilience import FAULTS, FaultInjector, FaultSpec
from repro.resilience.faults import ALL_SITES, iter_sites


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("compile", kind="meltdown")

    def test_after_skips_opportunities(self):
        injector = FaultInjector()
        spec = injector.arm(FaultSpec("compile", after=2))
        injector.check("compile")
        injector.check("compile")
        with pytest.raises(InjectedFaultError):
            injector.check("compile")
        assert spec.triggered == 3 and spec.fired == 1

    def test_times_bounds_firings(self):
        injector = FaultInjector()
        spec = injector.arm(FaultSpec("compile", times=2))
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.check("compile")
        injector.check("compile")  # exhausted: no longer fires
        assert spec.fired == 2 and spec.triggered == 3

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.arm(FaultSpec("compile", probability=0.5))
            pattern = []
            for _ in range(20):
                try:
                    injector.check("compile")
                    pattern.append(False)
                except InjectedFaultError:
                    pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert any(firing_pattern(7)) and not all(firing_pattern(7))


class TestFaultInjector:
    def test_unarmed_is_a_noop(self):
        injector = FaultInjector()
        assert not injector.armed
        injector.check("compile")  # no spec: nothing raised
        assert injector.corrupt("uniqueness", 42) == 42

    def test_sites_are_independent(self):
        injector = FaultInjector()
        injector.arm(FaultSpec("compile"))
        injector.check("plan_cache")  # different site: untouched
        with pytest.raises(InjectedFaultError) as info:
            injector.check("compile")
        assert info.value.site == "compile"

    def test_transient_kind_raises_typed_ims_error(self):
        injector = FaultInjector()
        injector.arm(FaultSpec("dli_call", kind="transient", status="GL"))
        with pytest.raises(TransientImsError) as info:
            injector.check("dli_call")
        assert info.value.status == "GL"

    def test_custom_error_factory(self):
        injector = FaultInjector()
        injector.arm(FaultSpec("compile", error=lambda: KeyError("boom")))
        with pytest.raises(KeyError):
            injector.check("compile")

    def test_corrupt_routes_values_and_check_ignores_it(self):
        injector = FaultInjector()
        injector.arm(
            FaultSpec("uniqueness", kind="corrupt", corruptor=lambda v: -v)
        )
        injector.check("uniqueness")  # corrupt faults never raise here
        assert injector.corrupt("uniqueness", 5) == -5

    def test_corrupt_without_corruptor_is_an_arming_error(self):
        injector = FaultInjector()
        injector.arm(FaultSpec("uniqueness", kind="corrupt"))
        with pytest.raises(ValueError):
            injector.corrupt("uniqueness", 5)

    def test_inject_context_manager_disarms(self):
        injector = FaultInjector()
        with injector.inject("compile") as spec:
            assert injector.armed and injector.specs("compile") == [spec]
            with pytest.raises(InjectedFaultError):
                injector.check("compile")
        assert not injector.armed
        injector.check("compile")

    def test_disarm_restores_armed_flag_with_other_specs(self):
        injector = FaultInjector()
        first = injector.arm(FaultSpec("compile"))
        injector.arm(FaultSpec("plan_cache"))
        injector.disarm(first)
        assert injector.armed
        injector.reset()
        assert not injector.armed and injector.specs() == []

    def test_wrap_callable_passthrough_when_site_unarmed(self):
        injector = FaultInjector()
        fn = lambda row: True  # noqa: E731
        assert injector.wrap_callable("compiled_eval", fn) is fn

    def test_wrap_callable_fires_per_call(self):
        injector = FaultInjector()
        injector.arm(FaultSpec("compiled_eval", after=1, times=1))
        wrapped = injector.wrap_callable("compiled_eval", lambda x: x + 1)
        assert wrapped is not None and wrapped(1) == 2
        with pytest.raises(InjectedFaultError):
            wrapped(1)
        assert wrapped(1) == 2  # exhausted

    def test_global_injector_and_site_constants(self):
        assert isinstance(FAULTS, FaultInjector)
        assert tuple(iter_sites()) == ALL_SITES
        assert len(set(ALL_SITES)) == len(ALL_SITES)
