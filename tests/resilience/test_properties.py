"""Property: fault-injected executions never poison a cache.

For random workloads and every exception-raising fault site, a faulted
execution either matches the fault-free baseline or raises a typed
error — and, crucially, whatever it left in the caches must be harmless:
a later fault-free run over the same (possibly warm) caches must equal a
fresh-cache baseline.  Corrupt-kind faults are excluded by design: they
exist precisely to poison a verdict so the safe-mode tests can catch it.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import clear_all_caches, execute_planned
from repro.errors import ReproError
from repro.resilience import (
    FAULTS,
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_FINGERPRINT,
    SITE_INDEX_BUILD,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
)
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)

CONFIG = GeneratorConfig(max_tables=2, max_columns=3, max_rows=6)
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

FAULT_SITES = [
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_PLAN_CACHE,
    SITE_INDEX_BUILD,
    SITE_FINGERPRINT,
    SITE_OPERATOR,
]


def _workload(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng, CONFIG)
    database = random_database(rng, catalog, CONFIG)
    query = random_query(rng, catalog, CONFIG)
    return database, query


@settings(max_examples=60, **COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    site=st.sampled_from(FAULT_SITES),
    after=st.integers(min_value=0, max_value=6),
)
def test_faulted_executions_never_poison_caches(seed, site, after):
    database, query = _workload(seed)
    FAULTS.reset()
    clear_all_caches()
    baseline = execute_planned(query, database).multiset()

    clear_all_caches()
    with FAULTS.inject(site, after=after, times=1):
        try:
            faulted = execute_planned(query, database)
        except ReproError:
            faulted = None  # typed failure: acceptable, rows discarded
        if faulted is not None:
            # When a fallback ladder absorbed the fault, the rows must
            # be right — a fault may cost time, never correctness.
            assert faulted.multiset() == baseline

    # Whatever the faulted run cached, a clean run over those warm
    # caches must still equal the fresh-cache truth.
    assert execute_planned(query, database).multiset() == baseline
    clear_all_caches()
    assert execute_planned(query, database).multiset() == baseline
