"""The degradation ladder's state machine, on a fake clock: error
budgets, sticky demotion, probation probes, geometric backoff, and the
relevance gating that keeps irrelevant traffic off the budgets."""

from __future__ import annotations

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.resilience.health import (
    LADDER,
    STATE_DEGRADED,
    STATE_HEALTHY,
    STATE_PROBATION,
    SUBSYSTEM_OPTIMIZER,
    SUBSYSTEM_PARALLEL,
    SUBSYSTEM_PLAN_CACHE,
    SUBSYSTEM_VECTORIZED,
    SUBSYSTEMS,
    HealthPolicy,
    HealthTracker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


POLICY = HealthPolicy(
    budget=3,
    window=10.0,
    probation_delay=1.0,
    max_probation_delay=8.0,
    probe_every=2,
    promote_after=2,
)


def make_tracker(metrics=None):
    clock = FakeClock()
    return HealthTracker(POLICY, metrics=metrics, clock=clock), clock


def grant(tracker, subsystem):
    """One decision over a single relevant subsystem."""
    return tracker.decide({subsystem: True})


def test_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(budget=0)
    with pytest.raises(ValueError):
        HealthPolicy(window=0.0)
    with pytest.raises(ValueError):
        HealthPolicy(max_probation_delay=0.5, probation_delay=1.0)
    with pytest.raises(ValueError):
        HealthPolicy(promote_after=0)


def test_all_rungs_start_healthy():
    tracker, _ = make_tracker()
    assert tracker.healthy()
    assert tracker.tiers() == {
        name: LADDER[name][0] for name in SUBSYSTEMS
    }


def test_budget_exhaustion_demotes():
    tracker, _ = make_tracker()
    for _ in range(POLICY.budget - 1):
        tracker.record(SUBSYSTEM_VECTORIZED, faults=1)
        assert tracker.state(SUBSYSTEM_VECTORIZED) == STATE_HEALTHY
    tracker.record(SUBSYSTEM_VECTORIZED, faults=1)
    assert tracker.state(SUBSYSTEM_VECTORIZED) == STATE_DEGRADED
    assert tracker.tier(SUBSYSTEM_VECTORIZED) == "tuple"
    assert not tracker.healthy()


def test_faults_outside_the_window_are_forgotten():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_PARALLEL, faults=POLICY.budget - 1)
    clock.advance(POLICY.window + 1.0)  # the old faults age out
    tracker.record(SUBSYSTEM_PARALLEL, faults=POLICY.budget - 1)
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_HEALTHY


def test_demotion_is_sticky_until_the_probation_delay():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_OPTIMIZER, faults=POLICY.budget)
    # Inside the delay: every decision takes the degraded tier.
    decision = grant(tracker, SUBSYSTEM_OPTIMIZER)
    assert decision.use[SUBSYSTEM_OPTIMIZER] is False
    assert tracker.state(SUBSYSTEM_OPTIMIZER) == STATE_DEGRADED
    # After the delay: probation begins.
    clock.advance(POLICY.probation_delay)
    grant(tracker, SUBSYSTEM_OPTIMIZER)
    assert tracker.state(SUBSYSTEM_OPTIMIZER) == STATE_PROBATION


def test_probe_cadence_follows_probe_every():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_PLAN_CACHE, faults=POLICY.budget)
    clock.advance(POLICY.probation_delay)
    # probe_every=2: odd decisions stay degraded, even ones probe.
    first = grant(tracker, SUBSYSTEM_PLAN_CACHE)
    second = grant(tracker, SUBSYSTEM_PLAN_CACHE)
    assert first.use[SUBSYSTEM_PLAN_CACHE] is False
    assert second.use[SUBSYSTEM_PLAN_CACHE] is True
    assert second.probes == {SUBSYSTEM_PLAN_CACHE: True}


def test_clean_probes_repromote_and_reset():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_VECTORIZED, faults=POLICY.budget)
    clock.advance(POLICY.probation_delay)
    promoted = 0
    while tracker.state(SUBSYSTEM_VECTORIZED) != STATE_HEALTHY:
        decision = grant(tracker, SUBSYSTEM_VECTORIZED)
        if decision.use.get(SUBSYSTEM_VECTORIZED):
            tracker.record(SUBSYSTEM_VECTORIZED, ok=True, probe=True)
            promoted += 1
    assert promoted == POLICY.promote_after
    assert tracker.tier(SUBSYSTEM_VECTORIZED) == "vectorized"
    # Promotion cleared the budget: one new fault must not re-demote.
    tracker.record(SUBSYSTEM_VECTORIZED, faults=1)
    assert tracker.state(SUBSYSTEM_VECTORIZED) == STATE_HEALTHY


def test_dirty_probe_redemotes_with_doubled_delay():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_PARALLEL, faults=POLICY.budget)
    clock.advance(POLICY.probation_delay)
    while not grant(tracker, SUBSYSTEM_PARALLEL).use.get(SUBSYSTEM_PARALLEL):
        pass  # reach the probe slot
    tracker.record(SUBSYSTEM_PARALLEL, faults=1, probe=True)
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_DEGRADED
    # The original delay is no longer enough to re-enter probation.
    clock.advance(POLICY.probation_delay)
    grant(tracker, SUBSYSTEM_PARALLEL)
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_DEGRADED
    clock.advance(POLICY.probation_delay)  # 2x total: now it probes
    grant(tracker, SUBSYSTEM_PARALLEL)
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_PROBATION


def test_backoff_is_capped():
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_PARALLEL, faults=POLICY.budget)
    # Fail many probations: delay doubles but must cap.
    for _ in range(10):
        clock.advance(POLICY.max_probation_delay)
        while not grant(tracker, SUBSYSTEM_PARALLEL).use.get(
            SUBSYSTEM_PARALLEL
        ):
            pass
        tracker.record(SUBSYSTEM_PARALLEL, faults=1, probe=True)
    # Capped: max_probation_delay is always enough to probe again.
    clock.advance(POLICY.max_probation_delay)
    grant(tracker, SUBSYSTEM_PARALLEL)
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_PROBATION


def test_irrelevant_subsystems_never_advance_probation():
    """Traffic that cannot exercise a subsystem must not consume its
    probe slots — otherwise tuple-only queries would 'probe' the
    vectorized engine without ever running it."""
    tracker, clock = make_tracker()
    tracker.record(SUBSYSTEM_VECTORIZED, faults=POLICY.budget)
    clock.advance(POLICY.probation_delay)
    for _ in range(20):
        decision = tracker.decide({SUBSYSTEM_VECTORIZED: False})
        assert SUBSYSTEM_VECTORIZED not in decision.use
    # The probe counter never moved: the next relevant query is still
    # the first probation decision.
    first = grant(tracker, SUBSYSTEM_VECTORIZED)
    second = grant(tracker, SUBSYSTEM_VECTORIZED)
    assert [first.use[SUBSYSTEM_VECTORIZED],
            second.use[SUBSYSTEM_VECTORIZED]] == [False, True]


# -- attribution via observe() ------------------------------------------


class FakeStats:
    def __init__(self, **kwargs):
        self.vectorized_fallbacks = 0
        self.vectorized_batches = 0
        self.parallel_morsels = 0
        self.cache_skips = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.__dict__.update(kwargs)


class FakeOutcome:
    def __init__(self, mismatch=False):
        self.mismatch = mismatch


def test_observe_attributes_vectorized_fallbacks():
    tracker, _ = make_tracker()
    decision = grant(tracker, SUBSYSTEM_VECTORIZED)
    tracker.observe(decision, stats=FakeStats(vectorized_fallbacks=POLICY.budget))
    assert tracker.state(SUBSYSTEM_VECTORIZED) == STATE_DEGRADED


def test_observe_attributes_mismatch_to_the_optimizer():
    tracker, _ = make_tracker()
    for _ in range(POLICY.budget):
        decision = grant(tracker, SUBSYSTEM_OPTIMIZER)
        tracker.observe(
            decision, stats=FakeStats(), outcome=FakeOutcome(mismatch=True)
        )
    assert tracker.tier(SUBSYSTEM_OPTIMIZER) == "off"


def test_observe_attributes_cache_skips_to_the_plan_cache():
    tracker, _ = make_tracker()
    decision = grant(tracker, SUBSYSTEM_PLAN_CACHE)
    tracker.observe(decision, stats=FakeStats(cache_skips=POLICY.budget))
    assert tracker.tier(SUBSYSTEM_PLAN_CACHE) == "bypass"


def test_observe_blames_errors_on_parallel_only_when_granted():
    tracker, _ = make_tracker()
    # Not granted (tuple-tier decision): an error is not parallel's fault.
    decision = tracker.decide({SUBSYSTEM_PARALLEL: False})
    tracker.observe(decision, error=RuntimeError("boom"))
    assert tracker.state(SUBSYSTEM_PARALLEL) == STATE_HEALTHY
    for _ in range(POLICY.budget):
        decision = grant(tracker, SUBSYSTEM_PARALLEL)
        tracker.observe(decision, stats=FakeStats(), error=RuntimeError("boom"))
    assert tracker.tier(SUBSYSTEM_PARALLEL) == "serial"


def test_metrics_counters_and_gauges():
    metrics = MetricsRegistry()
    tracker, clock = make_tracker(metrics)
    tracker.record(SUBSYSTEM_VECTORIZED, faults=POLICY.budget)
    assert metrics.value(
        "health_demotions_total", subsystem=SUBSYSTEM_VECTORIZED
    ) == 1
    assert metrics.value(
        "health_degraded", subsystem=SUBSYSTEM_VECTORIZED
    ) == 1.0
    clock.advance(POLICY.probation_delay)
    while tracker.state(SUBSYSTEM_VECTORIZED) != STATE_HEALTHY:
        decision = grant(tracker, SUBSYSTEM_VECTORIZED)
        if decision.use.get(SUBSYSTEM_VECTORIZED):
            tracker.record(SUBSYSTEM_VECTORIZED, ok=True, probe=True)
    assert metrics.value(
        "health_promotions_total", subsystem=SUBSYSTEM_VECTORIZED
    ) == 1
    assert metrics.value(
        "health_degraded", subsystem=SUBSYSTEM_VECTORIZED
    ) == 0.0


def test_snapshot_is_json_ready():
    import json

    tracker, _ = make_tracker()
    tracker.record(SUBSYSTEM_OPTIMIZER, faults=1)
    snapshot = tracker.snapshot()
    assert set(snapshot) == set(SUBSYSTEMS)
    assert snapshot[SUBSYSTEM_OPTIMIZER]["faults_in_window"] == 1
    json.dumps(snapshot)  # must not raise
