"""Fail-closed fingerprints: a broken fingerprint disables caching.

The regression staged here is the dangerous alternative: if fingerprint
failures fell back to some constant key, two *different* database states
would collide on one cache entry and a stale plan or verdict would be
served.  The contract is: no fingerprint, no cache — compute fresh,
serve correct, store nothing.
"""

import pytest

from repro import Stats, clear_all_caches, execute_planned, test_uniqueness
from repro.cache import safe_fingerprint
from repro.core.strategy import StrategySelector
from repro.engine import Database
from repro.errors import QueryTimeout
from repro.resilience import FAULTS, SITE_FINGERPRINT

SQL = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = 2"
DISTINCT_SQL = "SELECT DISTINCT S.SNO FROM SUPPLIER S"


class Broken:
    def fingerprint(self):
        raise RuntimeError("fingerprint storage unreadable")


class Fine:
    def fingerprint(self):
        return ("v", 1)


def test_safe_fingerprint_returns_none_on_failure():
    assert safe_fingerprint(Broken()) is None
    assert safe_fingerprint(Fine()) == ("v", 1)
    assert safe_fingerprint(object()) is None  # no method at all


def test_safe_fingerprint_never_swallows_resource_errors():
    class GuardTripped:
        def fingerprint(self):
            raise QueryTimeout(0.1, 0.2)

    with pytest.raises(QueryTimeout):
        safe_fingerprint(GuardTripped())


def test_execute_planned_skips_cache_when_fingerprint_fails(
    tiny_db, monkeypatch
):
    expected = execute_planned(SQL, tiny_db)

    # Break the schema fingerprint both key shapes build on: the
    # table-scoped key reads it directly, and the whole-database
    # fallback folds it into Database.fingerprint().
    from repro.catalog.schema import Catalog

    monkeypatch.setattr(
        Catalog,
        "fingerprint",
        lambda self: (_ for _ in ()).throw(RuntimeError("broken")),
    )
    for _ in range(2):
        stats = Stats()
        result = execute_planned(SQL, tiny_db, stats=stats)
        assert result.same_rows(expected)
        assert stats.cache_skips == 1
        # Every run replans: nothing was served from or stored in cache.
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits == 0


def test_fingerprint_fault_site_covers_all_consumers(tiny_db):
    expected = execute_planned(SQL, tiny_db)
    clean_verdict = test_uniqueness(DISTINCT_SQL, tiny_db.catalog).unique

    with FAULTS.inject(SITE_FINGERPRINT, times=None):
        stats = Stats()
        result = execute_planned(SQL, tiny_db, stats=stats)
        assert result.same_rows(expected)
        assert stats.cache_skips == 1

        # Algorithm 1 still answers, uncached, and twice identically.
        assert test_uniqueness(DISTINCT_SQL, tiny_db.catalog).unique is clean_verdict
        assert test_uniqueness(DISTINCT_SQL, tiny_db.catalog).unique is clean_verdict

        # Strategy selection still picks a plan.
        choice = StrategySelector(tiny_db).choose(DISTINCT_SQL)
        assert choice.candidates


def test_no_stale_entry_after_fingerprint_outage(tiny_db):
    """Nothing written during the outage may shadow the recovered state."""
    expected = execute_planned(SQL, tiny_db)
    clear_all_caches()  # forget the entry the baseline run stored
    with FAULTS.inject(SITE_FINGERPRINT):
        execute_planned(SQL, tiny_db)

    # Fingerprint works again: first run is a genuine miss (the outage
    # stored nothing), second is a hit — and both are correct.
    miss_stats = Stats()
    assert execute_planned(SQL, tiny_db, stats=miss_stats).same_rows(expected)
    hit_stats = Stats()
    assert execute_planned(SQL, tiny_db, stats=hit_stats).same_rows(expected)
    assert miss_stats.plan_cache_misses == 1
    assert hit_stats.plan_cache_hits == 1
