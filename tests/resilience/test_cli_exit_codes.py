"""The CLI maps the error taxonomy onto distinct exit codes."""

import pytest

from repro.cli import exit_code_for, main
from repro.errors import (
    ExecutionError,
    ImsError,
    ParseError,
    QueryCancelled,
    QueryTimeout,
    RemoteQueryError,
    ReproError,
    ResourceError,
    RewriteMismatchError,
    RowBudgetExceeded,
    TicketWaitTimeout,
    TransientImsError,
    TransientNetworkError,
)


class TestExitCodeMap:
    @pytest.mark.parametrize(
        "error,code",
        [
            (QueryTimeout(1.0, 2.0), 4),
            (RowBudgetExceeded(10, 11), 5),
            (QueryCancelled("operator"), 6),
            (ResourceError("generic budget failure"), 3),
            (TransientImsError("GL"), 7),
            (RewriteMismatchError(["distinct-elimination"], "SELECT 1"), 8),
            (ReproError("anything else"), 2),
            (ParseError("bad token"), 2),
            (ExecutionError("type clash"), 2),
            (ImsError("segment trouble"), 2),
            (TicketWaitTimeout(1.0, "SELECT 1"), 10),
            (TransientNetworkError("conn reset", status=0), 11),
        ],
    )
    def test_mapping(self, error, code):
        assert exit_code_for(error) == code

    def test_remote_error_maps_by_original_type(self):
        """An error relayed over the wire keeps its local exit code."""
        relayed = RemoteQueryError("RowBudgetExceeded", "too many rows", 413)
        assert exit_code_for(relayed) == 5
        unknown = RemoteQueryError("SomethingNovel", "???", 500)
        assert exit_code_for(unknown) == 2


class TestCliIntegration:
    def test_row_budget_exit_code(self, capsys):
        code = main(
            ["run", "--row-budget", "2", "SELECT ALL S.SNO FROM SUPPLIER S"]
        )
        assert code == 5
        assert "exceeding its budget" in capsys.readouterr().err

    def test_parse_error_exit_code(self, capsys):
        assert main(["run", "SELECT FROM FROM"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_param_exit_code(self, capsys):
        code = main(["run", "--param", "JUNK", "SELECT S.SNO FROM SUPPLIER S"])
        assert code == 2

    def test_budgeted_run_succeeds_within_limits(self, capsys):
        code = main(
            [
                "run",
                "--timeout",
                "30",
                "--row-budget",
                "100000",
                "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1",
            ]
        )
        assert code == 0
        assert "1 row(s)" in capsys.readouterr().out

    def test_safe_mode_flag_accepted(self, capsys):
        code = main(
            ["run", "--safe-mode", "SELECT DISTINCT S.SNO FROM SUPPLIER S"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rewritten via distinct-elimination" in out

    def test_no_optimize_respects_budgets(self, capsys):
        code = main(
            [
                "run",
                "--no-optimize",
                "--row-budget",
                "2",
                "SELECT ALL S.SNO FROM SUPPLIER S",
            ]
        )
        assert code == 5


class TestExitCodeSingleSourceOfTruth:
    """The map lives in repro.errors; the CLI help and docs align."""

    def test_map_lives_in_errors_module(self):
        from repro.errors import CLI_EXIT_CODES, DeadlineExpiredError

        codes = dict(CLI_EXIT_CODES)
        assert codes[DeadlineExpiredError] == 12
        # cli.exit_code_for is the same function, re-exported.
        from repro import cli, errors

        assert cli.exit_code_for is errors.exit_code_for

    def test_deadline_expired_maps_to_12(self):
        from repro.errors import DeadlineExpiredError

        assert exit_code_for(DeadlineExpiredError(0.0)) == 12
        assert exit_code_for(
            RemoteQueryError("DeadlineExpiredError", "spent", 504)
        ) == 12

    @pytest.mark.parametrize("command", ["serve", "client"])
    def test_help_epilog_lists_every_exit_code(self, command, capsys):
        from repro.errors import CLI_EXIT_CODES

        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        assert "exit codes:" in text
        for cls, code in CLI_EXIT_CODES:
            assert f"{code:>2}  {cls.__name__}" in text
        assert "12  DeadlineExpiredError" in text

    def test_docs_table_matches_the_map(self):
        """docs/cli.md's exit-code table names every (code, type) pair
        the map defines — including 12/DeadlineExpiredError."""
        from pathlib import Path

        from repro.errors import CLI_EXIT_CODES

        docs = Path(__file__).resolve().parents[2] / "docs" / "cli.md"
        text = docs.read_text()
        for cls, code in CLI_EXIT_CODES:
            assert f"| {code} |" in text, f"docs missing exit code {code}"
            assert f"`{cls.__name__}`" in text, (
                f"docs missing error type {cls.__name__}"
            )
