"""Every fast path degrades to its slow twin with identical results."""

import pytest

from repro import Stats, execute_planned
from repro.errors import InjectedFaultError
from repro.resilience import (
    FAULTS,
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_INDEX_BUILD,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
)

FILTER_SQL = (
    "SELECT P.PNO, P.PNAME FROM PARTS P "
    "WHERE P.COLOR = 'RED' AND P.PNO > 9"
)
KEYED_SQL = "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = 2"
JOIN_SQL = (
    "SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
)


def _clean(sql, db, **kwargs):
    stats = Stats()
    return execute_planned(sql, db, stats=stats, **kwargs), stats


def test_compile_fault_falls_back_to_interpreter(tiny_db):
    expected, clean = _clean(FILTER_SQL, tiny_db)
    assert clean.compiled_evals > 0  # the fast path is normally taken

    stats = Stats()
    with FAULTS.inject(SITE_COMPILE):
        result = execute_planned(FILTER_SQL, tiny_db, stats=stats)

    assert result.same_rows(expected)
    assert stats.compile_fallbacks >= 1
    assert stats.compiled_evals == 0  # nothing ever compiled
    assert stats.predicate_evals == clean.predicate_evals


def test_compiled_predicate_fails_mid_stream(tiny_db):
    # Pinned to the tuple interpreter: this test verifies the per-row
    # demotion arithmetic of the row-at-a-time path.  The vectorized
    # path's demotion has its own site (vectorized_eval) and coverage.
    expected, clean = _clean(FILTER_SQL, tiny_db, engine_mode="tuple")

    stats = Stats()
    # Let the closure evaluate two rows, then blow up once: the operator
    # must re-evaluate THAT row interpretively and finish the stream.
    with FAULTS.inject(SITE_COMPILED_EVAL, after=2, times=1):
        result = execute_planned(
            FILTER_SQL, tiny_db, stats=stats, engine_mode="tuple"
        )

    assert result.same_rows(expected)
    assert stats.compile_fallbacks >= 1
    assert 0 < stats.compiled_evals < stats.predicate_evals
    assert stats.predicate_evals == clean.predicate_evals


def test_join_residual_falls_back_mid_stream(tiny_db):
    expected, _ = _clean(JOIN_SQL, tiny_db)
    stats = Stats()
    with FAULTS.inject(SITE_COMPILED_EVAL, after=1, times=1):
        result = execute_planned(JOIN_SQL, tiny_db, stats=stats)
    assert result.same_rows(expected)


def test_index_build_fault_falls_back_to_scan(tiny_db):
    # Fault first, while the lazy index is still cold — a prior clean
    # run would build it and the build site would never trigger.
    stats = Stats()
    with FAULTS.inject(SITE_INDEX_BUILD):
        result = execute_planned(KEYED_SQL, tiny_db, stats=stats)
    assert stats.index_fallbacks >= 1  # the probe failed and degraded

    expected, clean = _clean(KEYED_SQL, tiny_db)
    assert clean.index_probes > 0 and clean.index_fallbacks == 0
    assert result.same_rows(expected)


def test_plan_cache_fault_replans(tiny_db):
    expected, _ = _clean(KEYED_SQL, tiny_db)

    stats = Stats()
    with FAULTS.inject(SITE_PLAN_CACHE):
        result = execute_planned(KEYED_SQL, tiny_db, stats=stats)

    assert result.same_rows(expected)
    assert stats.cache_skips >= 1
    assert stats.plan_cache_misses == 1
    assert stats.plan_cache_hits == 0


def test_operator_fault_is_typed_not_a_wrong_answer(tiny_db):
    # Tuple-pinned: the after=3 trigger schedule counts per-row ticks.
    with FAULTS.inject(SITE_OPERATOR, after=3):
        with pytest.raises(InjectedFaultError) as info:
            execute_planned(FILTER_SQL, tiny_db, engine_mode="tuple")
    assert info.value.site == "operator_next"


def test_fallbacks_preserve_warm_cache_correctness(tiny_db):
    """A faulted run must not leave anything poisoned behind."""
    expected, _ = _clean(FILTER_SQL, tiny_db)
    with FAULTS.inject(SITE_COMPILE):
        execute_planned(FILTER_SQL, tiny_db)
    # Fault disarmed: the same text must take the fast path again, warm.
    stats = Stats()
    result = execute_planned(FILTER_SQL, tiny_db, stats=stats)
    assert result.same_rows(expected)
    assert stats.compiled_evals > 0
    assert stats.compile_fallbacks == 0
