"""Resource budgets and the cooperative execution guard."""

import pytest

from repro.errors import QueryCancelled, QueryTimeout, RowBudgetExceeded
from repro.resilience import CLOCK_CHECK_INTERVAL, ExecutionGuard, ResourceBudget


class FakeClock:
    """A hand-cranked monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestResourceBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(timeout=0)
        with pytest.raises(ValueError):
            ResourceBudget(row_budget=-1)

    def test_unlimited(self):
        assert ResourceBudget().unlimited
        assert not ResourceBudget(row_budget=10).unlimited

    def test_guard_factory_binds_budget(self):
        budget = ResourceBudget(row_budget=5)
        assert budget.guard().budget is budget


class TestExecutionGuard:
    def test_row_budget_trips_exactly_past_the_limit(self):
        guard = ResourceBudget(row_budget=3).guard()
        for _ in range(3):
            guard.tick()
        with pytest.raises(RowBudgetExceeded) as info:
            guard.tick()
        assert info.value.budget == 3 and info.value.processed == 4

    def test_batched_ticks_count_rows_not_calls(self):
        guard = ResourceBudget(row_budget=10).guard()
        guard.tick(rows=8)
        with pytest.raises(RowBudgetExceeded):
            guard.tick(rows=8)

    def test_timeout_checked_every_interval(self):
        clock = FakeClock()
        guard = ResourceBudget(timeout=1.0).guard(clock=clock)
        clock.now = 5.0  # already past the deadline ...
        for _ in range(CLOCK_CHECK_INTERVAL - 1):
            guard.tick()  # ... but the clock is not re-read between checks
        with pytest.raises(QueryTimeout) as info:
            guard.tick()  # tick #interval re-reads the clock
        assert info.value.limit == 1.0 and info.value.elapsed == 5.0

    def test_check_deadline_is_unconditional(self):
        clock = FakeClock()
        guard = ResourceBudget(timeout=1.0).guard(clock=clock)
        guard.check_deadline()
        clock.now = 1.5
        with pytest.raises(QueryTimeout):
            guard.check_deadline()

    def test_no_timeout_never_reads_past_the_start(self):
        clock = FakeClock()
        guard = ResourceBudget(row_budget=10_000).guard(clock=clock)
        clock.now = 1e9
        for _ in range(CLOCK_CHECK_INTERVAL * 2):
            guard.tick()  # no deadline: huge elapsed time is fine

    def test_cancellation_raises_at_next_tick(self):
        guard = ExecutionGuard()
        guard.tick()
        guard.cancel("user pressed ^C")
        with pytest.raises(QueryCancelled) as info:
            guard.tick()
        assert "user pressed ^C" in str(info.value)

    def test_elapsed_uses_injected_clock(self):
        clock = FakeClock()
        guard = ExecutionGuard(clock=clock)
        clock.now = 2.5
        assert guard.elapsed() == 2.5
